"""Tests for k-means, fuzzy c-means, the elbow method, and clustering metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.elbow import detect_elbow, elbow_curve, select_k_elbow
from repro.clustering.fuzzy import FuzzyCMeans, assignment_certainty, membership_matrix
from repro.clustering.kmeans import KMeans
from repro.clustering.metrics import silhouette_score, within_cluster_ss
from repro.utils.errors import NotFittedError, ValidationError


def _blobs(n_per=50, centers=((0, 0), (10, 10), (-10, 10)), spread=1.0, seed=0):
    rng = np.random.default_rng(seed)
    data = []
    labels = []
    for i, c in enumerate(centers):
        data.append(np.asarray(c) + spread * rng.normal(size=(n_per, len(c))))
        labels.extend([i] * n_per)
    return np.vstack(data), np.array(labels)


# -- KMeans --------------------------------------------------------------------
def test_kmeans_recovers_separated_blobs():
    x, truth = _blobs()
    km = KMeans(n_clusters=3, seed=0).fit(x)
    labels = km.labels_
    # Each true blob should be assigned (almost) entirely to one cluster.
    for t in range(3):
        counts = np.bincount(labels[truth == t], minlength=3)
        assert counts.max() / counts.sum() > 0.98
    assert km.inertia_ is not None and km.inertia_ > 0
    assert km.n_iter_ >= 1


def test_kmeans_predict_matches_fit_labels():
    x, _ = _blobs()
    km = KMeans(n_clusters=3, seed=0).fit(x)
    np.testing.assert_array_equal(km.predict(x), km.labels_)


def test_kmeans_transform_shape_and_nonnegative():
    x, _ = _blobs(n_per=20)
    km = KMeans(n_clusters=3, seed=0).fit(x)
    d = km.transform(x)
    assert d.shape == (60, 3)
    assert np.all(d >= 0)


def test_kmeans_cluster_pdf_sums_to_one():
    x, _ = _blobs(n_per=30)
    km = KMeans(n_clusters=3, seed=0).fit(x)
    pdf = km.cluster_pdf(x)
    assert pdf.shape == (3,)
    assert pdf.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(np.sort(pdf), [1 / 3] * 3, atol=0.05)


def test_kmeans_handles_more_clusters_than_distinct_points():
    x = np.array([[0.0, 0.0]] * 5 + [[1.0, 1.0]] * 5)
    km = KMeans(n_clusters=3, seed=0).fit(x)
    assert km.cluster_centers_.shape == (3, 2)


def test_kmeans_validation():
    with pytest.raises(ValidationError):
        KMeans(n_clusters=0)
    with pytest.raises(ValidationError):
        KMeans(max_iter=0)
    with pytest.raises(ValidationError):
        KMeans(tol=-1)
    with pytest.raises(ValidationError):
        KMeans(n_clusters=5).fit(np.zeros((3, 2)))
    with pytest.raises(ValidationError):
        KMeans().fit(np.zeros(10))
    with pytest.raises(NotFittedError):
        KMeans().predict(np.zeros((2, 2)))
    km = KMeans(n_clusters=2, seed=0).fit(np.random.default_rng(0).normal(size=(10, 3)))
    with pytest.raises(ValidationError):
        km.predict(np.zeros((2, 5)))


def test_kmeans_deterministic_for_seed():
    x, _ = _blobs(n_per=20)
    a = KMeans(n_clusters=3, seed=7).fit(x)
    b = KMeans(n_clusters=3, seed=7).fit(x)
    np.testing.assert_allclose(a.cluster_centers_, b.cluster_centers_)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100))
def test_kmeans_inertia_decreases_with_k_property(seed):
    x = np.random.default_rng(seed).normal(size=(60, 4))
    i2 = KMeans(n_clusters=2, seed=0, n_init=2).fit(x).inertia_
    i6 = KMeans(n_clusters=6, seed=0, n_init=2).fit(x).inertia_
    assert i6 <= i2 + 1e-9


# -- fuzzy c-means -------------------------------------------------------------------
def test_membership_matrix_rows_sum_to_one():
    x, _ = _blobs(n_per=10)
    centers = np.array([[0, 0], [10, 10], [-10, 10]], dtype=float)
    u = membership_matrix(x, centers)
    assert u.shape == (30, 3)
    np.testing.assert_allclose(u.sum(axis=1), 1.0, atol=1e-9)
    assert np.all((u >= 0) & (u <= 1))


def test_membership_at_center_is_one():
    centers = np.array([[0.0, 0.0], [5.0, 5.0]])
    u = membership_matrix(np.array([[0.0, 0.0]]), centers)
    assert u[0, 0] == pytest.approx(1.0)
    assert u[0, 1] == pytest.approx(0.0)


def test_membership_invalid_fuzzifier():
    with pytest.raises(ValidationError):
        membership_matrix(np.zeros((2, 2)), np.zeros((2, 2)), m=1.0)


def test_assignment_certainty_high_for_tight_clusters_low_for_drifted():
    x, _ = _blobs(spread=0.5)
    centers = np.array([[0, 0], [10, 10], [-10, 10]], dtype=float)
    tight = assignment_certainty(x, centers)
    drifted = assignment_certainty(x + 5.0, centers)  # shift all data between centres
    assert tight > 95.0
    assert drifted < tight


def test_assignment_certainty_validation():
    with pytest.raises(ValidationError):
        assignment_certainty(np.zeros((2, 2)), np.zeros((2, 2)), confidence=1.5)


def test_fuzzy_cmeans_fit_and_certainty():
    x, truth = _blobs(n_per=30, spread=0.8)
    fcm = FuzzyCMeans(n_clusters=3, seed=0).fit(x)
    assert fcm.cluster_centers_.shape == (3, 2)
    hard = fcm.predict(x)
    # Cluster labels are arbitrary, but each true blob maps to a single cluster.
    for t in range(3):
        counts = np.bincount(hard[truth == t], minlength=3)
        assert counts.max() / counts.sum() > 0.9
    assert fcm.certainty(x) > 80.0


def test_fuzzy_cmeans_validation():
    with pytest.raises(ValidationError):
        FuzzyCMeans(n_clusters=0)
    with pytest.raises(ValidationError):
        FuzzyCMeans(m=1.0)
    with pytest.raises(NotFittedError):
        FuzzyCMeans().predict(np.zeros((2, 2)))
    with pytest.raises(ValidationError):
        FuzzyCMeans(n_clusters=5).fit(np.zeros((2, 2)))


# -- elbow ---------------------------------------------------------------------------
def test_elbow_curve_monotone_decreasing():
    x, _ = _blobs(n_per=40)
    curve = elbow_curve(x, range(1, 7), seed=0)
    ks = sorted(curve)
    wss = [curve[k] for k in ks]
    assert all(wss[i] >= wss[i + 1] - 1e-6 for i in range(len(wss) - 1))


def test_select_k_elbow_finds_true_cluster_count():
    x, _ = _blobs(n_per=40, spread=0.8)
    best_k, curve = select_k_elbow(x, k_min=1, k_max=8, seed=0)
    assert best_k == 3
    assert set(curve) == set(range(1, 9))


def test_detect_elbow_synthetic_knee():
    # WSS drops sharply until k=4, then flattens.
    curve = {1: 100.0, 2: 60.0, 3: 30.0, 4: 10.0, 5: 9.0, 6: 8.5, 7: 8.2}
    assert detect_elbow(curve) == 4


def test_elbow_validation():
    x = np.random.default_rng(0).normal(size=(10, 2))
    with pytest.raises(ValidationError):
        elbow_curve(x, [])
    with pytest.raises(ValidationError):
        elbow_curve(x, [0, 2])
    with pytest.raises(ValidationError):
        elbow_curve(x, [20])
    with pytest.raises(ValidationError):
        select_k_elbow(x, k_min=5, k_max=2)


# -- metrics -----------------------------------------------------------------------------
def test_within_cluster_ss_matches_kmeans_inertia():
    x, _ = _blobs(n_per=25)
    km = KMeans(n_clusters=3, seed=0).fit(x)
    wss = within_cluster_ss(x, km.labels_, km.cluster_centers_)
    assert wss == pytest.approx(km.inertia_, rel=1e-6)


def test_within_cluster_ss_validation():
    with pytest.raises(ValidationError):
        within_cluster_ss(np.zeros((3, 2)), np.zeros(2, dtype=int), np.zeros((2, 2)))
    with pytest.raises(ValidationError):
        within_cluster_ss(np.zeros((3, 2)), np.array([0, 1, 5]), np.zeros((2, 2)))


def test_silhouette_score_high_for_separated_blobs():
    x, truth = _blobs(n_per=20, spread=0.5)
    assert silhouette_score(x, truth) > 0.8


def test_silhouette_score_low_for_random_labels():
    x, _ = _blobs(n_per=20)
    rng = np.random.default_rng(0)
    random_labels = rng.integers(0, 3, size=x.shape[0])
    assert silhouette_score(x, random_labels) < 0.2


def test_silhouette_requires_two_clusters():
    with pytest.raises(ValidationError):
        silhouette_score(np.zeros((5, 2)), np.zeros(5, dtype=int))
