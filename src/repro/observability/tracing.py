"""Lightweight request tracing: spans, contextvar propagation, sampling.

A **trace** is the tree of timed spans one request (or one workflow run)
produced as it crossed the system's layers: admission → micro-batch flush →
index scan → model predict for a served request, or pipeline-run → step for
a workflow.  The pieces:

* :class:`Span` — one named, timed node with attributes and a parent link;
* :class:`Tracer` — owns the sampling decision, hands out spans, and keeps
  finished ones in a bounded in-memory ring buffer with JSON-lines export;
* :func:`trace_span` — the module-level instrumentation point: a context
  manager that opens a child of the *currently active* span (contextvar
  propagated) and is a **no-op when no trace is active**, so instrumented
  hot paths (index scans, model predicts) cost one contextvar read when
  tracing is off or the request was not sampled.

Sampling is **deterministic per trace**: a rate of ``r`` samples every
``1/r``-th root (error-diffusion accumulator, not a random draw), so tests
and benchmarks see exactly the configured fraction and a trace is either
fully recorded or not at all.

Batch execution fans many requests into one handler call; spans recorded
inside the handler belong to *every* sampled request of the batch.
:meth:`Tracer.capture` runs the handler under a synthetic root collecting
its spans, and :meth:`Tracer.graft` clones the captured tree under each
sampled request's span (fresh span ids, parent links preserved), so every
sampled trace is complete and self-consistent — no cross-wired parents, no
spans shared between traces.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Deque, Dict, Iterator, List, Optional, Union

from repro.utils.errors import ConfigurationError

__all__ = ["Span", "Tracer", "trace_span", "current_span"]


def _new_id() -> str:
    return os.urandom(8).hex()


class Span:
    """One timed node of a trace tree.

    Start/end instants are captured on the monotonic clock (duration is
    exact); the wall-clock ``start_s`` is derived once so exported traces
    can be lined up against logs.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attributes", "status",
        "start_s", "_start_mono", "_end_mono", "_sink", "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_mono: float,
        *,
        tracer: Optional["Tracer"] = None,
        sink: Optional[Deque["Span"]] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.status = "ok"
        self._start_mono = start_mono
        self.start_s = time.time() - (time.monotonic() - start_mono)
        self._end_mono: Optional[float] = None
        self._sink = sink
        self._tracer = tracer

    # -- state -------------------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self._end_mono is not None

    @property
    def duration_s(self) -> Optional[float]:
        if self._end_mono is None:
            return None
        return self._end_mono - self._start_mono

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    # -- export ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dur = f"{self.duration_s * 1e3:.2f}ms" if self.ended else "open"
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {dur})"


class _Capture:
    """Spans recorded during one :meth:`Tracer.capture` block."""

    __slots__ = ("root", "spans")

    def __init__(self, root: Span, spans: Deque[Span]):
        self.root = root
        self.spans = spans


#: The active span of the current thread/context (contextvar: each thread —
#: and each :meth:`Tracer.activate` block — sees its own value).
_current_span: ContextVar[Optional[Span]] = ContextVar("repro_current_span", default=None)


def current_span() -> Optional[Span]:
    """The span instrumentation points would parent on right now, if any."""
    return _current_span.get()


class Tracer:
    """Hands out spans, applies sampling, buffers finished spans.

    Parameters
    ----------
    sample_rate:
        Fraction of roots (:meth:`start_trace` calls without ``force``) that
        are sampled, in ``[0, 1]``.  Deterministic error diffusion: 0.5
        samples every second root, 1.0 every root, 0 none.
    max_spans:
        Ring-buffer bound on finished spans kept in memory; the oldest fall
        out first, so memory stays bounded under sustained traffic.
    enabled:
        ``False`` turns the tracer into a permanent no-op (every
        :meth:`start_trace` returns ``None``).
    """

    def __init__(self, sample_rate: float = 0.1, max_spans: int = 4096, enabled: bool = True):
        if not isinstance(sample_rate, (int, float)) or isinstance(sample_rate, bool) \
                or not 0.0 <= float(sample_rate) <= 1.0:
            raise ConfigurationError("sample_rate must be a number in [0, 1]")
        if not isinstance(max_spans, int) or isinstance(max_spans, bool) or max_spans < 1:
            raise ConfigurationError("max_spans must be an integer >= 1")
        self.sample_rate = float(sample_rate)
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._started = 0
        self._sampled = 0
        self._spans: Deque[Span] = deque(maxlen=max_spans)

    # -- sampling ----------------------------------------------------------------
    def should_sample(self) -> bool:
        """One deterministic per-root sampling decision (consumes a slot)."""
        if not self.enabled or self.sample_rate <= 0.0:
            with self._lock:
                self._started += 1
            return False
        with self._lock:
            self._started += 1
            self._accumulator += self.sample_rate
            if self._accumulator >= 1.0 - 1e-12:
                self._accumulator -= 1.0
                self._sampled += 1
                return True
            return False

    @property
    def stats(self) -> Dict[str, int]:
        """Roots offered vs sampled, and spans currently buffered."""
        with self._lock:
            return {
                "roots_started": self._started,
                "roots_sampled": self._sampled,
                "spans_buffered": len(self._spans),
            }

    # -- span lifecycle ----------------------------------------------------------
    def start_trace(
        self, name: str, force: Optional[bool] = None, **attributes: Any
    ) -> Optional[Span]:
        """Open a new root span, or ``None`` when this root is not sampled.

        ``force=True`` bypasses sampling (still counts in :attr:`stats`);
        ``force=False`` forces the root unsampled.
        """
        sampled = self.should_sample() if force is None else bool(force)
        if force is not None:
            # keep the accounting honest even when the decision was imposed
            with self._lock:
                self._started += 1
                if sampled:
                    self._sampled += 1
        if not sampled or not self.enabled:
            return None
        trace_id = _new_id()
        return Span(
            name, trace_id, _new_id(), None, time.monotonic(),
            tracer=self, sink=self._spans, attributes=attributes,
        )

    def start_span(self, name: str, parent: Span, **attributes: Any) -> Span:
        """Open a child span under ``parent`` (which must be a live span)."""
        return Span(
            name, parent.trace_id, _new_id(), parent.span_id, time.monotonic(),
            tracer=self, sink=parent._sink, attributes=attributes,
        )

    def _commit(self, span: Span) -> None:
        """Append a finished span to its sink; the shared ring buffer is
        lock-guarded so concurrent commits never race a buffer read."""
        sink = span._sink
        if sink is None or sink is self._spans:
            with self._lock:
                self._spans.append(span)
        else:  # a private capture sink: single consumer, no lock needed
            sink.append(span)

    def end(self, span: Span, status: str = "ok") -> Span:
        """Finish a span and commit it to its buffer; idempotent."""
        if span._end_mono is None:
            span._end_mono = time.monotonic()
            span.status = status
            self._commit(span)
        return span

    def record_span(
        self,
        name: str,
        parent: Span,
        start_mono: float,
        end_mono: float,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Record a child span retroactively from two monotonic instants —
        how phases whose boundaries were only timestamps (queue waits)
        become spans after the fact."""
        span = Span(
            name, parent.trace_id, _new_id(), parent.span_id, start_mono,
            tracer=self, sink=parent._sink, attributes=attributes,
        )
        span._end_mono = end_mono
        span.status = status
        self._commit(span)
        return span

    # -- context activation ------------------------------------------------------
    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the current span for :func:`trace_span` within the
        block (this thread/context only)."""
        token = _current_span.set(span)
        try:
            yield span
        finally:
            _current_span.reset(token)

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None, **attributes: Any) -> Iterator[Span]:
        """Open, activate, and (on exit) end a child span.

        Parents on ``parent`` when given, else on the contextvar's current
        span; raises if neither exists — use :meth:`start_trace` for roots.
        """
        parent = parent or _current_span.get()
        if parent is None:
            raise ConfigurationError(
                f"span {name!r} has no parent; start a trace first (start_trace)"
            )
        child = self.start_span(name, parent, **attributes)
        with self.activate(child):
            try:
                yield child
            except BaseException:
                self.end(child, status="error")
                raise
        self.end(child)

    # -- batch fan-in ------------------------------------------------------------
    @contextmanager
    def capture(self, name: str = "capture") -> Iterator[_Capture]:
        """Collect the spans a block produces, detached from any real trace.

        The block runs under a synthetic root whose sink is a private list;
        :func:`trace_span` instrumentation inside it records there instead of
        the tracer's buffer.  Graft the result under one or more real spans
        with :meth:`graft` — the batch-execution fan-in.
        """
        sink: Deque[Span] = deque()
        root = Span(name, _new_id(), _new_id(), None, time.monotonic(),
                    tracer=self, sink=sink)
        capture = _Capture(root, sink)
        with self.activate(root):
            yield capture

    def graft(self, capture: _Capture, parent: Span) -> List[Span]:
        """Clone a captured span tree under ``parent`` (fresh span ids, the
        parent's trace id, internal parent links preserved); returns the
        clones, already committed to the buffer."""
        spans = list(capture.spans)
        mapping = {span.span_id: _new_id() for span in spans}
        mapping[capture.root.span_id] = parent.span_id
        clones: List[Span] = []
        for span in spans:
            clone = Span(
                span.name, parent.trace_id, mapping[span.span_id],
                mapping.get(span.parent_id or "", parent.span_id),
                span._start_mono, tracer=self, sink=parent._sink,
                attributes=span.attributes,
            )
            clone.start_s = span.start_s
            clone._end_mono = span._end_mono if span._end_mono is not None \
                else span._start_mono
            clone.status = span.status
            clone._sink = parent._sink
            self._commit(clone)
            clones.append(clone)
        return clones

    # -- buffer access -----------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        with self._lock:
            return list(self._spans)

    def traces(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by trace id (insertion order within)."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.finished_spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def export_jsonl(self, path_or_file: Union[str, "os.PathLike", Any]) -> int:
        """Write every buffered span as one JSON object per line; returns the
        span count written.  Accepts a path or an open text file."""
        spans = self.finished_spans()
        lines = "".join(json.dumps(s.to_dict(), default=str) + "\n" for s in spans)
        if hasattr(path_or_file, "write"):
            path_or_file.write(lines)
        else:
            with open(path_or_file, "a") as fh:
                fh.write(lines)
        return len(spans)


@contextmanager
def trace_span(name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """Instrumentation point: a child span under the currently active span.

    **No-op when no span is active** — one contextvar read — so library hot
    paths (index scans, model predicts, pipeline steps) stay instrumented
    unconditionally and only pay when the enclosing request was sampled.
    Yields the span, or ``None`` on the no-op path.
    """
    parent = _current_span.get()
    if parent is None or parent._tracer is None:
        yield None
        return
    tracer = parent._tracer
    child = tracer.start_span(name, parent, **attributes)
    token = _current_span.set(child)
    try:
        yield child
    except BaseException:
        _current_span.reset(token)
        tracer.end(child, status="error")
        raise
    _current_span.reset(token)
    tracer.end(child)
