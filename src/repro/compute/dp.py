"""Data-parallel drivers: training and MC-dropout probes over an Executor.

Both drivers follow the same replica discipline:

* The parent serialises the model once per session (``Sequential.to_bytes``);
  each worker rebuilds a private replica and reseeds its Dropout layers with
  a ``derive_seed(seed, ..., worker_id)`` stream, so stochastic draws are
  independent across workers yet reproducible run-to-run.
* Bulk arrays (the training set, probe batch, flat parameter vector, per-shard
  gradient slab) live in session shared arrays — zero-copy views for the
  process backend, plain references for inline/thread.
* Only the parent updates authoritative state.  Training workers write
  per-shard gradients into their slot of a ``(workers, n_params)`` slab; the
  parent reduces them with a single size-weighted ``dot`` into the PR-3 flat
  gradient buffer and runs the ordinary ``optimizer.step()``.  The update
  sequence is therefore identical to serial training — with dropout disabled
  the only deviation is float reassociation in the shard average, which is
  what keeps final-loss parity within fractions of a percent.

Semantic deltas vs the serial paths (documented, asserted by tests):

* Dropout masks differ from serial runs (per-worker streams instead of the
  model's own RNG), so losses match statistically, not bitwise.
* The parallel MC probe leaves the live model's Dropout RNG state untouched
  (replicas draw instead), where the serial path advances it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.compute.executor import Executor
from repro.nn.dtype import cast
from repro.nn.layers import Dropout
from repro.nn.network import Sequential
from repro.nn.optimizers import Optimizer, _ParamPack
from repro.utils.errors import ValidationError
from repro.utils.rng import default_rng, derive_seed

#: Salt namespaces for worker RNG derivation (distinct per plane so a trainer
#: and an MC probe sharing a seed do not correlate).
_TRAIN_SALT = 7001
_MC_SALT = 7101


def reseed_dropout_layers(model: Sequential, seed: Any, worker_id: int, salt: int) -> None:
    for position, layer in enumerate(model.layers):
        if isinstance(layer, Dropout):
            layer.reseed(derive_seed(seed if seed is not None else 0, salt, position, worker_id))


def _single_pack(model: Sequential) -> _ParamPack:
    packs = Optimizer._build_packs(list(model.parameters()))
    if len(packs) != 1:
        raise ValidationError("data-parallel replicas require a single-dtype parameter pack")
    return packs[0]


def supports_data_parallel(model: Sequential, optimizer: Optimizer, executor: Optional[Executor]) -> bool:
    """Whether the DP fit path applies: a genuinely parallel executor, a
    single attached parameter pack (PR-3 fused layout), and no BatchNorm
    (replica running stats would not sync back)."""
    if executor is None or executor.closed or executor.max_workers <= 1:
        return False
    if model.has_batchnorm():
        return False
    packs = optimizer._packs
    return len(packs) == 1 and packs[0].attached()


# -- worker-side functions (module-level: pickled by reference) ----------------
def _dp_setup(ctx, model_blob: bytes, loss: Any, seed: Any) -> Dict[str, Any]:
    model = Sequential.from_bytes(model_blob)
    reseed_dropout_layers(model, seed, ctx.worker_id, _TRAIN_SALT)
    return {"model": model, "loss": loss, "pack": _single_pack(model)}


def _dp_grad_shard(ctx, item: Tuple[int, np.ndarray]) -> Tuple[float, int]:
    """Compute one shard's mean gradient into ``grads[slot]``; return
    ``(shard mean loss, shard rows)`` for the parent's weighted reduce."""
    slot, idx = item
    state = ctx.state
    pack: _ParamPack = state["pack"]
    np.copyto(pack.data, ctx.arrays["params"])
    xb = ctx.arrays["x"][idx]
    yb = ctx.arrays["y"][idx]
    model, loss = state["model"], state["loss"]
    pred = model.forward(xb, training=True)
    shard_loss = loss.forward(pred, yb)
    grad = loss.backward(pred, yb)
    pack.grad.fill(0.0)
    model.backward(grad, need_input_grad=False)
    ctx.arrays["grads"][slot, :] = pack.grad
    return float(shard_loss), int(idx.shape[0])


def _mc_setup(ctx, model_blob: bytes, seed: Any, max_rows: int) -> Dict[str, Any]:
    model = Sequential.from_bytes(model_blob)
    reseed_dropout_layers(model, seed, ctx.worker_id, _MC_SALT)
    return {"model": model, "max_rows": max_rows}


def _mc_moment_chunk(ctx, n_draws: int) -> Tuple[np.ndarray, np.ndarray]:
    """``n_draws`` stochastic passes folded worker-side; only the first two
    moments (float64 sum / sum of squares) cross back to the parent."""
    from repro.nn.mc_dropout import _folded_draws, _looped_draws

    state = ctx.state
    model, max_rows = state["model"], state["max_rows"]
    x = ctx.arrays["x"]
    if max_rows:
        draws = _folded_draws(model, x, n_draws, max_rows)
    else:
        draws = _looped_draws(model, x, n_draws)
    d = np.asarray(draws, dtype=np.float64)
    return d.sum(axis=0), np.square(d).sum(axis=0)


# -- parent-side drivers -------------------------------------------------------
def _shard_batch(batch_idx: np.ndarray, workers: int) -> List[np.ndarray]:
    return [s for s in np.array_split(batch_idx, workers) if s.size]


def fit_data_parallel(trainer, x_train, y_train, val, config, optimizer, history) -> None:
    """The epoch loop of ``Trainer.fit`` with per-batch shard fan-out.

    Mirrors the serial loop's bookkeeping exactly (history, metrics, early
    stopping live in ``Trainer._finish_epoch``); only the gradient computation
    is distributed.  ``optimizer`` is the trainer's freshly built optimizer
    whose single pack holds the authoritative flat parameters.
    """
    executor = trainer.executor
    rng = default_rng(config.seed)
    pack = optimizer._packs[0]
    workers = executor.max_workers
    n = x_train.shape[0]

    session = executor.open_session(
        setup=_dp_setup,
        setup_args=(trainer.model.to_bytes(), trainer.loss, config.seed),
        shared={
            "x": x_train,
            "y": y_train,
            "params": np.zeros_like(pack.data),
            "grads": np.zeros((workers, pack.data.size), dtype=pack.data.dtype),
        },
    )
    try:
        params_arr = session.arrays["params"]
        grads_arr = session.arrays["grads"]
        for epoch in range(config.epochs):
            epoch_start = perf_counter()
            epoch_loss, n_batches = 0.0, 0
            indices = rng.permutation(n) if config.shuffle else np.arange(n)
            for start in range(0, n, config.batch_size):
                batch_idx = indices[start : start + config.batch_size]
                shards = _shard_batch(batch_idx, workers)
                params_arr[...] = pack.data
                results = session.map(_dp_grad_shard, list(enumerate(shards)))
                counts = np.array([rows for _loss, rows in results], dtype=pack.data.dtype)
                weights = counts / counts.sum()
                # The fused allreduce-average: one dot over the gradient slab
                # lands the size-weighted mean straight in the flat buffer.
                np.dot(weights, grads_arr[: len(shards)], out=pack.grad)
                optimizer.step()
                epoch_loss += float(np.dot(weights, [value for value, _rows in results]))
                n_batches += 1
            if n_batches == 0:
                raise ValidationError("training iterable produced no batches")
            if trainer._finish_epoch(
                history, config, epoch, epoch_loss / n_batches, 0.0, epoch_start, val
            ):
                break
    finally:
        session.close()


def mc_dropout_predict_parallel(
    model: Sequential,
    x: np.ndarray,
    n_samples: int,
    max_rows: int,
    executor: Executor,
    seed: Any = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distributed ``(mean, std)`` over ``n_samples`` stochastic passes.

    Draw counts are split near-evenly across workers; workers return float64
    moment sums, the parent combines them — ``std`` uses the same biased
    (population) convention as ``np.ndarray.std``.
    """
    x = cast(np.asarray(x), model.dtype)
    counts = [c.size for c in np.array_split(np.arange(n_samples), executor.max_workers) if c.size]
    session = executor.open_session(
        setup=_mc_setup, setup_args=(model.to_bytes(), seed, max_rows), shared={"x": x}
    )
    try:
        parts = session.map(_mc_moment_chunk, counts)
    finally:
        session.close()
    total = float(n_samples)
    moment1 = sum(part[0] for part in parts) / total
    moment2 = sum(part[1] for part in parts) / total
    variance = np.maximum(moment2 - np.square(moment1), 0.0)
    return moment1.astype(model.dtype), np.sqrt(variance).astype(model.dtype)
