"""Package-wide component registry: every swappable part, constructible by name.

PR 1 introduced a registry for *storage* and *index* backends so the
scalability ablations could swap their stack from configuration.  The
declarative :mod:`repro.api.spec` config plane needs the same discipline for
every component kind the system is assembled from, so this module generalises
that registry package-wide:

========== ============================================== =======================
kind       built-in names                                 built on
========== ============================================== =======================
embedder   ``pca``, ``autoencoder``, ``contrastive``,     :mod:`repro.embedding`
           ``byol``
clustering ``kmeans``                                     :mod:`repro.clustering`
storage    ``documentdb``, ``file``                       :mod:`repro.storage`
index      ``flat``, ``clustered``, ``ivf``, ``mmap``     :mod:`repro.storage`
model      ``braggnn``, ``cookienetae``, ``tomogan``      :mod:`repro.models`
trigger    ``threshold``, ``certainty``                   :mod:`repro.monitoring`
policy     ``batching``, ``update``                       serving / core
executor   ``inline``, ``thread``, ``process``            :mod:`repro.compute`
========== ============================================== =======================

    >>> from repro.api.registry import create_component
    >>> embedder = create_component("embedder", "pca", embedding_dim=8)
    >>> trigger = create_component("trigger", "certainty", threshold_percent=20.0)

Built-ins register lazily on first registry access, so importing this module
stays cheap and free of circular imports (the sub-packages themselves import
it).  :mod:`repro.storage.registry` remains as a back-compat shim delegating
to the ``storage`` and ``index`` kinds here, and
:func:`repro.embedding.base.register_embedder` forwards embedder
registrations, so components registered through either path are visible to
both.

User code plugs in its own components with :func:`register_component`
(usable as a decorator)::

    @register_component("trigger", "ewma")
    class EWMATrigger: ...
"""

from __future__ import annotations

import inspect
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.utils.errors import ConfigurationError

#: Every component kind the registry covers, in presentation order.
COMPONENT_KINDS: Tuple[str, ...] = (
    "embedder",
    "clustering",
    "storage",
    "index",
    "model",
    "trigger",
    "policy",
    "executor",
)

#: Guards mutations of the component table only — never held across imports.
_LOCK = threading.Lock()
_COMPONENTS: Dict[str, Dict[str, Callable[..., Any]]] = {k: {} for k in COMPONENT_KINDS}
#: Builtin-load state machine: "empty" -> "loading" -> "ready" (back to
#: "empty" when a load fails, so a later call retries).
_BUILTIN_STATE = "empty"
_BUILTIN_COND = threading.Condition()
_BUILTIN_LOADER: Optional[int] = None  # thread ident of the in-progress loader


def _registry(kind: str) -> Dict[str, Callable[..., Any]]:
    try:
        return _COMPONENTS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown component kind {kind!r}; expected one of {sorted(_COMPONENTS)}"
        ) from None


def _ensure_builtins() -> None:
    """Load the built-in registrations once, on first registry access.

    Locking discipline: the loader thread runs the builtin imports with **no
    registry lock held** — holding one across ``import`` statements would
    deadlock against a thread that sits inside a module import (holding that
    module's import lock) and registers a component.  Re-entrant calls from
    the loader thread itself (the builtin imports register components, which
    calls back in here) return immediately; other threads block on an event
    until the load settles.
    """
    global _BUILTIN_STATE, _BUILTIN_LOADER
    if _BUILTIN_STATE == "ready":  # benign unlocked fast-path read
        return
    me = threading.get_ident()
    with _BUILTIN_COND:
        while _BUILTIN_STATE == "loading" and _BUILTIN_LOADER != me:
            if not _BUILTIN_COND.wait(timeout=60.0):
                # A wedged loader thread: proceed against whatever is
                # registered so far rather than hanging forever; the
                # caller's own lookup error reports any gap.
                return
        if _BUILTIN_STATE == "ready":
            return
        if _BUILTIN_STATE == "loading":
            return  # re-entrant call from inside _load_builtins itself
        _BUILTIN_STATE = "loading"
        _BUILTIN_LOADER = me
    try:
        _load_builtins()
    except BaseException:
        with _BUILTIN_COND:
            # Reset so a later call retries, and wake waiters immediately
            # (on waking they observe "empty" and take over the load).
            _BUILTIN_STATE = "empty"
            _BUILTIN_LOADER = None
            _BUILTIN_COND.notify_all()
        raise
    with _BUILTIN_COND:
        _BUILTIN_STATE = "ready"
        _BUILTIN_LOADER = None
        _BUILTIN_COND.notify_all()


def _builtin(kind: str, name: str, factory: Callable[..., Any]) -> None:
    """Register a built-in unless the name is already taken (a user may have
    registered a replacement before the lazy load ran)."""
    _COMPONENTS[kind].setdefault(name, factory)


def _load_builtins() -> None:
    # Embedders register themselves through the ``register_embedder`` forward
    # when :mod:`repro.embedding` imports; the explicit sweep below covers the
    # case where the package was imported before this module existed in
    # sys.modules (the forward is a no-op until repro.api.registry loads).
    import repro.embedding  # noqa: F401 — decorators forward-register
    from repro.embedding.base import _EMBEDDERS

    for name, cls in _EMBEDDERS.items():
        _builtin("embedder", name, cls)

    from repro.clustering.kmeans import KMeans

    _builtin("clustering", "kmeans", KMeans)

    from repro.storage.codecs import get_codec
    from repro.storage.documentdb import DocumentDB, NetworkModel
    from repro.storage.file_store import FileStore
    from repro.storage.ivf_index import IVFVectorIndex
    from repro.storage.sharded import ShardedVectorStore
    from repro.storage.vector_index import ClusteredVectorIndex, VectorIndex, open_mmap

    def _make_documentdb(codec=None, network=None, **kwargs: Any) -> DocumentDB:
        """DocumentDB factory accepting codec names and network-model dicts."""
        if isinstance(codec, str):
            codec = get_codec(codec)
        if isinstance(network, Mapping):
            network = NetworkModel(**network)
        return DocumentDB(codec=codec, network=network, **kwargs)

    _builtin("storage", "file", FileStore)
    _builtin("storage", "documentdb", _make_documentdb)
    _builtin("index", "flat", VectorIndex)
    _builtin("index", "clustered", ClusteredVectorIndex)
    _builtin("index", "ivf", IVFVectorIndex)
    _builtin("index", "mmap", open_mmap)
    _builtin("index", "sharded", ShardedVectorStore)

    from repro.models import build_braggnn, build_cookienetae, build_tomogan_denoiser

    _builtin("model", "braggnn", build_braggnn)
    _builtin("model", "cookienetae", build_cookienetae)
    _builtin("model", "tomogan", build_tomogan_denoiser)

    from repro.monitoring.triggers import CertaintyTrigger, ThresholdTrigger

    _builtin("trigger", "threshold", ThresholdTrigger)
    _builtin("trigger", "certainty", CertaintyTrigger)

    from repro.core.fairdms import UpdatePolicy
    from repro.serving.batcher import BatchingPolicy

    _builtin("policy", "batching", BatchingPolicy)
    _builtin("policy", "update", UpdatePolicy)

    from repro.compute.executor import InlineExecutor, ThreadExecutor
    from repro.compute.process import ProcessExecutor

    _builtin("executor", "inline", InlineExecutor)
    _builtin("executor", "thread", ThreadExecutor)
    _builtin("executor", "process", ProcessExecutor)


def _register_direct(kind: str, name: str, factory: Callable[..., Any]) -> None:
    """Unconditionally install ``factory`` without touching the lazy builtin
    load.  Used by sub-package bridges (e.g. ``register_embedder``) that run
    *during* package import, where triggering the builtin import sweep would
    re-enter a partially initialised module."""
    with _LOCK:
        _registry(kind)[name] = factory


# -- public API --------------------------------------------------------------------
def component_kinds() -> List[str]:
    """Every kind the registry covers."""
    return list(COMPONENT_KINDS)


def register_component(
    kind: str,
    name: str,
    factory: Optional[Callable[..., Any]] = None,
    overwrite: bool = False,
):
    """Register ``factory`` (a class or callable) under ``(kind, name)``.

    Usable directly (``register_component("trigger", "ewma", EWMATrigger)``)
    or as a decorator (``@register_component("trigger", "ewma")``).  Duplicate
    names raise unless ``overwrite=True``.
    """
    _ensure_builtins()
    registry = _registry(kind)

    def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
        with _LOCK:
            if name in registry and not overwrite:
                raise ConfigurationError(
                    f"{kind} component {name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            registry[name] = fn
        return fn

    return _register(factory) if factory is not None else _register


def unregister_component(kind: str, name: str) -> bool:
    """Remove a registered component; returns True if it existed.

    Mainly for tests and plugins that add temporary components and must not
    leak them into the process-wide registry.
    """
    _ensure_builtins()
    with _LOCK:
        return _registry(kind).pop(name, None) is not None


def available_components(kind: str) -> List[str]:
    """Names registered for ``kind`` (see :data:`COMPONENT_KINDS`)."""
    _ensure_builtins()
    return sorted(_registry(kind))


def is_registered(kind: str, name: str) -> bool:
    """Whether ``(kind, name)`` is constructible."""
    _ensure_builtins()
    return name in _registry(kind)


def component_factory(kind: str, name: str) -> Callable[..., Any]:
    """The factory registered under ``(kind, name)``."""
    _ensure_builtins()
    registry = _registry(kind)
    try:
        return registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} component {name!r}; available: {sorted(registry)}"
        ) from None


def create_component(kind: str, name: str, **kwargs: Any) -> Any:
    """Instantiate the component registered under ``(kind, name)``."""
    return component_factory(kind, name)(**kwargs)


def filter_supported_kwargs(
    factory: Callable[..., Any], optional: Mapping[str, Any]
) -> Dict[str, Any]:
    """The subset of ``optional`` kwargs that ``factory``'s signature accepts.

    The wiring layer offers components *optional* context — seeds, cluster
    centres, index dtypes — that built-in factories accept but a custom
    registered component may not declare.  Filtering by signature lets a
    component that validated at spec time also construct at materialise time
    without demanding every context parameter.  Factories taking ``**kwargs``
    (and ones whose signatures cannot be inspected) receive everything.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C callables without signatures
        return dict(optional)
    params = signature.parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return dict(optional)
    accepted = {
        p.name
        for p in params
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    }
    return {name: value for name, value in optional.items() if name in accepted}


def create_from_spec(config: Mapping[str, Any]) -> Any:
    """Instantiate a component from ``{"kind": ..., "name": ..., "params": {...}}``."""
    if "kind" not in config or "name" not in config:
        raise ConfigurationError("component config requires 'kind' and 'name' entries")
    params = dict(config.get("params") or {})
    return create_component(config["kind"], config["name"], **params)
