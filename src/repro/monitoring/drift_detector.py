"""Model-degradation detection over a sequence of scans."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.nn.mc_dropout import mc_dropout_predict
from repro.nn.metrics import euclidean_pixel_error, mean_squared_error
from repro.nn.network import Sequential
from repro.utils.errors import ConfigurationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.executor import Executor


@dataclass
class DegradationRecord:
    """Error/uncertainty of one evaluated scan."""

    scan_index: int
    prediction_error: float
    uncertainty: float
    degraded: bool


class DegradationDetector:
    """Tracks prediction error and MC-dropout uncertainty scan by scan.

    The detector establishes a baseline from the first ``baseline_scans``
    evaluations and flags a scan as degraded when its error exceeds
    ``error_factor`` times the baseline mean error (the operational criterion
    for "the ML model is no longer performing appropriately" that kicks off a
    fairDMS model update).
    """

    def __init__(
        self,
        model: Sequential,
        baseline_scans: int = 3,
        error_factor: float = 1.5,
        mc_samples: int = 10,
        error_metric: str = "pixel",
        executor: Optional["Executor"] = None,
    ):
        if baseline_scans < 1:
            raise ConfigurationError("baseline_scans must be >= 1")
        if error_factor <= 1.0:
            raise ConfigurationError("error_factor must be > 1")
        if mc_samples < 2:
            raise ConfigurationError("mc_samples must be >= 2")
        if error_metric not in ("pixel", "mse"):
            raise ConfigurationError("error_metric must be 'pixel' or 'mse'")
        self.model = model
        self.baseline_scans = int(baseline_scans)
        self.error_factor = float(error_factor)
        self.mc_samples = int(mc_samples)
        self.error_metric = error_metric
        #: Optional compute plane for the MC-dropout probe; the serial
        #: in-process path is used when unset.
        self.executor = executor
        self.records: List[DegradationRecord] = []

    def _error(self, pred: np.ndarray, target: np.ndarray) -> float:
        if self.error_metric == "pixel":
            return float(euclidean_pixel_error(pred, target).mean())
        return mean_squared_error(pred, target)

    @property
    def baseline_error(self) -> Optional[float]:
        if len(self.records) < self.baseline_scans:
            return None
        return float(np.mean([r.prediction_error for r in self.records[: self.baseline_scans]]))

    def evaluate_scan(self, scan_index: int, x: np.ndarray, y: np.ndarray) -> DegradationRecord:
        """Evaluate one scan; returns (and stores) its degradation record.

        Inputs pass through uncast — the model casts per batch slice under
        its dtype policy, so no full-array float64 copies are made here.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ValidationError("x and y must be non-empty and the same length")
        mean_pred, std = mc_dropout_predict(
            self.model, x, n_samples=self.mc_samples, executor=self.executor
        )
        error = self._error(mean_pred, y)
        uncertainty = float(std.mean())
        baseline = self.baseline_error
        degraded = baseline is not None and error > self.error_factor * baseline
        record = DegradationRecord(
            scan_index=int(scan_index),
            prediction_error=error,
            uncertainty=uncertainty,
            degraded=degraded,
        )
        self.records.append(record)
        return record

    def degradation_onset(self) -> Optional[int]:
        """Scan index of the first degraded record, if any."""
        for record in self.records:
            if record.degraded:
                return record.scan_index
        return None

    def series(self) -> dict:
        """Error/uncertainty series for plotting (the Fig. 2 curves)."""
        return {
            "scan_index": [r.scan_index for r in self.records],
            "prediction_error": [r.prediction_error for r in self.records],
            "uncertainty": [r.uncertainty for r in self.records],
            "degraded": [r.degraded for r in self.records],
        }
