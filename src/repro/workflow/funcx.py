"""Serverless function executor (funcX stand-in)."""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro.utils.errors import ConfigurationError, ReproError


class FunctionNotRegistered(ReproError):
    """Raised when submitting to an unknown function id."""


class FuncXExecutor:
    """Register functions and submit invocations to a local worker pool.

    Mirrors the funcX usage pattern in the paper: user-plane and system-plane
    functions are registered once and then invoked by id from the workflow.
    ``cold_start_s`` adds a fixed latency to each submission to model the
    serverless dispatch overhead.
    """

    def __init__(self, max_workers: int = 4, cold_start_s: float = 0.0):
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if cold_start_s < 0:
            raise ConfigurationError("cold_start_s must be non-negative")
        self.max_workers = int(max_workers)
        self.cold_start_s = float(cold_start_s)
        self._functions: Dict[str, Callable] = {}
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        self._task_count = 0

    # -- registration -----------------------------------------------------------
    def register_function(self, fn: Callable, function_id: Optional[str] = None) -> str:
        """Register ``fn`` and return its function id."""
        fid = function_id or f"fn-{len(self._functions):04d}-{fn.__name__}"
        if fid in self._functions:
            raise ConfigurationError(f"function id {fid!r} already registered")
        self._functions[fid] = fn
        return fid

    def registered(self) -> list:
        return sorted(self._functions)

    # -- execution -----------------------------------------------------------------
    def submit(self, function_id: str, *args, **kwargs) -> Future:
        """Submit an invocation; returns a future."""
        if function_id not in self._functions:
            raise FunctionNotRegistered(f"unknown function id {function_id!r}")
        fn = self._functions[function_id]
        self._task_count += 1

        def call():
            if self.cold_start_s:
                time.sleep(self.cold_start_s)
            return fn(*args, **kwargs)

        return self._pool.submit(call)

    def run(self, function_id: str, *args, **kwargs) -> Any:
        """Submit and wait for the result."""
        return self.submit(function_id, *args, **kwargs).result()

    def map(self, function_id: str, items) -> list:
        """Invoke the function once per item, in parallel, preserving order."""
        futures = [self.submit(function_id, item) for item in items]
        return [f.result() for f in futures]

    @property
    def tasks_submitted(self) -> int:
        return self._task_count

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "FuncXExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
