"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, default_rng


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int, seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation — good default for tanh/sigmoid nets."""
    rng = default_rng(seed)
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...], fan_in: int, seed: SeedLike = None) -> np.ndarray:
    """He/Kaiming normal initialisation — good default for ReLU nets."""
    rng = default_rng(seed)
    std = np.sqrt(2.0 / max(1, fan_in))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
