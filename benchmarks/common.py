"""Shared helpers for the benchmark harness."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import FairDS, FairMS, ModelZoo
from repro.datasets import BraggPeakDataset, CookieBoxDataset, DriftSchedule, make_two_phase_schedule
from repro.embedding import PCAEmbedder
from repro.models import build_braggnn, build_cookienetae
from repro.nn.metrics import euclidean_pixel_error, mean_squared_error
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer, TrainingConfig


# ---------------------------------------------------------------------------
# pretty-printing
# ---------------------------------------------------------------------------
def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence], sink: Optional[list] = None) -> None:
    """Print a small fixed-width table (and optionally append it to a sink)."""
    lines = [f"\n--- {title} ---"]
    widths = [max(len(str(h)), 10) for h in headers]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        formatted = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                formatted.append(f"{value:.4g}".ljust(width))
            else:
                formatted.append(str(value).ljust(width))
        lines.append("  ".join(formatted))
    text = "\n".join(lines)
    print(text)
    if sink is not None:
        sink.append(text)


# ---------------------------------------------------------------------------
# machine-readable results
# ---------------------------------------------------------------------------
def write_bench_json(
    name: str,
    metrics: Mapping[str, Any],
    params: Optional[Mapping[str, Any]] = None,
    directory: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` so the perf trajectory accumulates over PRs.

    ``metrics`` holds the measured numbers (throughput/latency fields and
    friends); ``params`` the knobs that produced them (store size, client
    count, policy).  Files land in ``$BENCH_RESULTS_DIR`` when set, else the
    current working directory, and are overwritten per run — CI uploads them
    as workflow artifacts.  Every result is also mirrored to the repository
    root, so the perf trajectory lives in one canonical place regardless of
    where a bench was launched from.
    """
    directory_path = Path(directory or os.environ.get("BENCH_RESULTS_DIR", "."))
    directory_path.mkdir(parents=True, exist_ok=True)
    path = directory_path / f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "metrics": dict(metrics),
        "params": dict(params or {}),
    }
    text = json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n"
    path.write_text(text)
    print(f"[bench] wrote {path}")
    repo_root = Path(__file__).resolve().parent.parent
    mirror = repo_root / path.name
    if mirror.resolve() != path.resolve():
        mirror.write_text(text)
        print(f"[bench] mirrored {mirror}")
    return path


# ---------------------------------------------------------------------------
# ANN ground truth + recall
# ---------------------------------------------------------------------------
def exact_nearest_neighbors(
    base: np.ndarray, queries: np.ndarray, k: int, chunk_queries: int = 256
) -> np.ndarray:
    """Indices of the exact ``k`` nearest ``base`` rows per query (L2).

    The brute-force ground truth ANN benchmarks measure recall against.
    Queries are processed in chunks of ``chunk_queries`` so the distance
    matrix stays at ``chunk × n_base`` floats regardless of query count.
    Returns an ``(n_queries, min(k, n_base))`` int64 array, each row sorted
    nearest-first.
    """
    base = np.asarray(base)
    queries = np.asarray(queries)
    n = base.shape[0]
    kk = min(int(k), n)
    if kk <= 0 or queries.shape[0] == 0:
        return np.empty((queries.shape[0], max(kk, 0)), dtype=np.int64)
    base_sq = np.einsum("ij,ij->i", base, base)
    out = np.empty((queries.shape[0], kk), dtype=np.int64)
    for start in range(0, queries.shape[0], int(chunk_queries)):
        q = queries[start:start + int(chunk_queries)]
        # + ||q||^2 is constant per row, so it cannot change the ranking.
        d2 = base_sq[None, :] - 2.0 * (q @ base.T)
        if kk < n:
            top = np.argpartition(d2, kk - 1, axis=1)[:, :kk]
        else:
            top = np.broadcast_to(np.arange(n), (q.shape[0], n)).copy()
        rows = np.arange(q.shape[0])[:, None]
        order = np.argsort(d2[rows, top], axis=1, kind="stable")
        out[start:start + q.shape[0]] = top[rows, order]
    return out


def recall_at_k(retrieved: Sequence[Sequence], ground_truth: Sequence[Sequence], k: int) -> float:
    """Mean per-query recall@k: ``|retrieved@k ∩ truth@k| / |truth@k|``.

    ``retrieved`` and ``ground_truth`` hold one id sequence per query (any
    hashable id type, nearest-first); both are truncated to their first
    ``k`` entries.  Queries whose ground truth is empty (degenerate corpora)
    count as perfect recall — there was nothing to miss.
    """
    if len(retrieved) != len(ground_truth):
        raise ValueError(
            f"retrieved has {len(retrieved)} queries, ground_truth {len(ground_truth)}"
        )
    scores: List[float] = []
    for got, truth in zip(retrieved, ground_truth):
        truth_k = list(truth)[: int(k)]
        if not truth_k:
            scores.append(1.0)
            continue
        got_k = set(list(got)[: int(k)])
        scores.append(sum(1 for t in truth_k if t in got_k) / len(truth_k))
    return float(np.mean(scores)) if scores else 1.0


# ---------------------------------------------------------------------------
# experiment builders (shared across benches)
# ---------------------------------------------------------------------------
def bragg_experiment(n_scans: int = 24, change_at: int = 12, peaks_per_scan: int = 120, seed: int = 0) -> BraggPeakDataset:
    """Two-phase drifting HEDM experiment used by most Bragg benches."""
    schedule = make_two_phase_schedule(n_scans=n_scans, change_at=change_at, seed=seed)
    return BraggPeakDataset(schedule, peaks_per_scan=peaks_per_scan, seed=seed)


def cookiebox_experiment(n_scans: int = 12, samples_per_scan: int = 80, seed: int = 0,
                         n_channels: int = 8, n_bins: int = 32) -> CookieBoxDataset:
    """Slowly drifting CookieBox experiment (monotone spectral drift)."""
    schedule = DriftSchedule(
        n_scans=n_scans,
        drift_per_scan={"energy_shift": 1.5, "noise_level": 0.002},
        jitter=0.02,
        seed=seed,
    )
    return CookieBoxDataset(schedule, samples_per_scan=samples_per_scan,
                            n_channels=n_channels, n_bins=n_bins, seed=seed)


def fitted_bragg_fairds(experiment: BraggPeakDataset, scans: Sequence[int],
                        n_clusters: int = 15, seed: int = 0) -> FairDS:
    """fairDS fitted on the given scans of a Bragg experiment (PCA embedder for speed)."""
    images, labels = experiment.stacked(scans)
    fairds = FairDS(PCAEmbedder(embedding_dim=8), n_clusters=n_clusters, seed=seed)
    fairds.fit(images, labels, metadata=[{"scan": -1}] * images.shape[0])
    return fairds


@dataclass
class ZooEntry:
    model_id: str
    scan_range: Tuple[int, int]
    distance_to_test: float = float("nan")


def build_braggnn_zoo(
    experiment: BraggPeakDataset,
    fairds: FairDS,
    scan_groups: Sequence[Sequence[int]],
    epochs: int = 12,
    width: int = 4,
    seed: int = 0,
) -> Tuple[ModelZoo, FairMS]:
    """Train one BraggNN per scan group and register it with its data distribution."""
    zoo = ModelZoo()
    config = TrainingConfig(epochs=epochs, batch_size=32, lr=3e-3, seed=seed)
    for gi, group in enumerate(scan_groups):
        x, y = experiment.stacked(group)
        model = build_braggnn(width=width, seed=seed + gi)
        Trainer(model).fit((x, y), val=(x, y), config=config)
        dist = fairds.dataset_distribution(x, label=f"scans{group[0]}-{group[-1]}")
        zoo.add(model, dist, name=f"braggnn-scans{group[0]}-{group[-1]}", scans=list(group))
    return zoo, FairMS(zoo, distance_threshold=0.9)


def build_cookienetae_zoo(
    experiment: CookieBoxDataset,
    fairds: FairDS,
    scan_groups: Sequence[Sequence[int]],
    epochs: int = 10,
    seed: int = 0,
) -> Tuple[ModelZoo, FairMS]:
    """Train one CookieNetAE per scan group and register it in a Zoo."""
    zoo = ModelZoo()
    config = TrainingConfig(epochs=epochs, batch_size=32, lr=2e-3, seed=seed)
    n_channels, n_bins = experiment.n_channels, experiment.n_bins
    for gi, group in enumerate(scan_groups):
        x, y = experiment.stacked(group)
        model = build_cookienetae(n_channels=n_channels, n_bins=n_bins, hidden=64, latent=16,
                                  seed=seed + gi)
        Trainer(model).fit((x, y), val=(x, y), config=config)
        dist = fairds.dataset_distribution(x, label=f"scans{group[0]}-{group[-1]}")
        zoo.add(model, dist, name=f"cookienetae-scans{group[0]}-{group[-1]}", scans=list(group))
    return zoo, FairMS(zoo, distance_threshold=0.9)


def braggnn_error(model: Sequential, images: np.ndarray, centers_px: np.ndarray) -> float:
    """Mean Euclidean pixel error of a BraggNN on ground-truth centres (in pixels)."""
    pred = model.predict(images) * images.shape[-1]
    return float(euclidean_pixel_error(pred, centers_px).mean())


def cookienetae_error(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Mean squared error of a CookieNetAE on ground-truth densities."""
    return mean_squared_error(model.predict(x), y)


def epochs_to_target(history, target: float, max_epochs: int) -> int:
    """Epochs needed to reach ``target`` validation loss (max_epochs+1 when never reached)."""
    reached = history.epochs_to_converge(target)
    return reached if reached is not None else max_epochs + 1
