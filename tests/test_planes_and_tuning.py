"""Tests for the user/system plane service and embedder hyper-parameter tuning."""

import numpy as np
import pytest

from repro.core import FairDMS, FairDMSService, FairDS, UpdatePolicy
from repro.datasets.bragg import generate_bragg_scan
from repro.datasets.drift import ExperimentCondition
from repro.embedding import PCAEmbedder, grid_search_embedder
from repro.embedding.tuning import TuningReport, clustering_quality_score
from repro.models.braggnn import build_braggnn
from repro.nn.trainer import TrainingConfig
from repro.utils.errors import ConfigurationError, ValidationError


def _scan(phase: int, n=60, seed=0):
    cond = (
        ExperimentCondition(0, peak_width=1.2, center_spread=1.0)
        if phase == 0
        else ExperimentCondition(1, peak_width=3.4, center_spread=3.5, noise_level=0.05)
    )
    return generate_bragg_scan(cond, n_peaks=n, seed=seed)


def _service(seed=0):
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=seed)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=4, seed=seed),
        training_config=TrainingConfig(epochs=6, batch_size=32, lr=3e-3, seed=seed),
        policy=UpdatePolicy(distance_threshold=0.7, certainty_threshold=20.0),
    )
    scan = _scan(0, n=80, seed=seed)
    dms.bootstrap(scan.images, scan.normalized_centers)
    return FairDMSService(dms)


# -- FairDMSService ----------------------------------------------------------------
def test_service_registers_both_planes():
    with _service() as service:
        names = service.registered_functions()
        assert "update_model" in names and "lookup_labeled_data" in names
        assert "refresh_representations" in names and "ingest_labeled_data" in names


def test_service_query_distribution_and_lookup():
    with _service() as service:
        new = _scan(0, n=20, seed=5)
        dist = service.query_distribution(new.images, label="q")
        assert pytest.approx(sum(dist["pdf"]), abs=1e-9) == 1.0
        lookup = service.lookup_labeled_data(new.images, n_samples=10)
        assert lookup["images"].shape[0] == 10
        assert lookup["labels"].shape == (10, 2)
        summary = service.activity_summary()
        assert summary["user:query_distribution"] == 1
        assert summary["user:lookup_labeled_data"] == 1


def test_service_request_model_update_runs_flow():
    with _service() as service:
        new = _scan(0, n=40, seed=7)
        report = service.request_model_update(new.images, label="scan-x")
        assert report.strategy in ("fine-tune", "scratch")
        assert service.activity_summary()["user:update_model"] == 1


def test_service_system_plane_ingest_and_refresh():
    with _service() as service:
        before = service.dms.fairds.store_size()
        new = _scan(1, n=20, seed=8)
        added = service.ingest_labeled_data(new.images, new.normalized_centers)
        assert added == 20
        assert service.dms.fairds.store_size() == before + 20
        size = service.refresh_representations()
        assert size == before + 20
        summary = service.activity_summary()
        assert summary["system:ingest_labeled_data"] == 1
        assert summary["system:refresh_representations"] == 1


def test_service_records_failed_invocations():
    with _service() as service:
        with pytest.raises(Exception):
            # Too few samples for an update -> ValidationError inside the plane fn.
            service.request_model_update(_scan(0, n=2, seed=9).images)
        assert any(not a.succeeded for a in service.activity)


def test_service_auto_system_plane_records_triggered_refresh():
    service = _service()
    try:
        # Force the trigger to fire on any certainty value.
        service.dms.certainty_trigger = type(service.dms.certainty_trigger)(100.0)
        new = _scan(1, n=40, seed=11)
        report = service.request_model_update(new.images, label="drifted")
        assert report.triggered_refresh
        assert service.activity_summary().get("system:refresh_representations", 0) >= 1
    finally:
        service.shutdown()


# -- tuning ------------------------------------------------------------------------------
def _two_phase_images(n_per=50, seed=0):
    a = _scan(0, n=n_per, seed=seed).images
    b = _scan(1, n=n_per, seed=seed + 1).images
    return np.concatenate([a, b])


def test_clustering_quality_score_prefers_structured_embedding():
    images = _two_phase_images()
    good = PCAEmbedder(embedding_dim=6).fit(images)
    # An "embedder" that returns pure noise should score worse.
    class NoiseEmbedder(PCAEmbedder):
        def transform(self, x):
            rng = np.random.default_rng(0)
            return rng.normal(size=(np.asarray(x).shape[0], self.embedding_dim))

    bad = NoiseEmbedder(embedding_dim=6).fit(images)
    assert clustering_quality_score(good, images, n_clusters=4) > clustering_quality_score(
        bad, images, n_clusters=4
    )


def test_clustering_quality_score_validation():
    images = _two_phase_images(10)
    emb = PCAEmbedder(embedding_dim=4).fit(images)
    with pytest.raises(ConfigurationError):
        clustering_quality_score(emb, images, n_clusters=1)
    with pytest.raises(ValidationError):
        clustering_quality_score(emb, images[:3], n_clusters=4)


def test_grid_search_embedder_ranks_candidates():
    images = _two_phase_images(40)
    report = grid_search_embedder(
        "pca",
        images,
        param_grid={"embedding_dim": [2, 6], "whiten": [False, True]},
        n_clusters=4,
        seed=0,
    )
    assert isinstance(report, TuningReport)
    assert len(report.results) == 4
    scores = [r.score for r in report.results]
    assert scores == sorted(scores, reverse=True)
    assert set(report.best.params) == {"embedding_dim", "whiten"}
    # The best embedder is fitted and usable immediately.
    z = report.best.embedder.transform(images)
    assert z.shape[0] == images.shape[0]
    assert len(report.as_rows()) == 4


def test_grid_search_embedder_validation():
    images = _two_phase_images(20)
    with pytest.raises(ConfigurationError):
        grid_search_embedder("pca", images, param_grid={})
    with pytest.raises(ConfigurationError):
        grid_search_embedder("pca", images, param_grid={"embedding_dim": []})
    with pytest.raises(ValidationError):
        TuningReport().best
