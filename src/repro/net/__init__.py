"""Network serving plane: asyncio transport, replica sets, autoscaling.

The serving runtime (:mod:`repro.serving`) is embedded — callers must share
its process.  This package puts the same serving plane behind a TCP
endpoint and turns one runtime into an operable *fleet*:

* :mod:`~repro.net.protocol` — the wire format: length-prefixed JSON frames
  with a reversible value codec (numpy arrays, tuples, bytes,
  version-stamped results) and typed error frames.
* :class:`~repro.net.server.NetworkServer` — an asyncio TCP server hosted
  on its own thread; the event loop only parses, dispatches, and writes —
  model work happens on runtime worker threads and completions are bridged
  back with ``call_soon_threadsafe``.  Edge protection: max frame size,
  per-connection in-flight caps, fast-fail on expired deadlines.
* :class:`~repro.net.client.NetworkClient` /
  :class:`~repro.net.client.AsyncNetworkClient` — pooled blocking client
  and id-multiplexing asyncio client, both with per-request end-to-end
  deadlines and jittered-backoff retries on transient faults.
* :class:`~repro.net.replica.ReplicaSet` — R replica runtimes (sharing the
  read-only data plane) behind a power-of-two-choices balancer, with
  health-check ejection/recovery, live resizing, and zero-downtime
  :meth:`~repro.net.replica.ReplicaSet.rolling_swap` model deploys.
* :class:`~repro.net.autoscaler.Autoscaler` /
  :class:`~repro.net.autoscaler.AutoscalePolicy` — a telemetry-driven
  control loop scaling workers and replicas with hysteresis and cooldowns.
* :class:`~repro.net.server.NetworkService` — the operator bundle
  ``Deployment.serve_network`` returns (server + replicas + autoscaler).

Quick example::

    from repro.api import Deployment

    dep = Deployment.from_preset("networked")
    service = dep.serve_network()          # binds an ephemeral port
    host, port = service.address

    from repro.net import NetworkClient
    with NetworkClient(host, port) as client:
        print(client.call("query_distribution", None))
    service.close(); dep.close()
"""

from repro.net.autoscaler import AutoscalePolicy, Autoscaler
from repro.net.client import AsyncNetworkClient, NetworkClient, RETRIABLE_ERROR_TYPES
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ERROR_TYPES,
    decode,
    encode,
    encode_frame,
    error_body,
    read_frame,
    write_frame,
)
from repro.net.replica import Replica, ReplicaSet
from repro.net.server import NetworkServer, NetworkService
from repro.utils.errors import (
    DeadlineExceededError,
    FrameTooLargeError,
    NetworkError,
    RemoteError,
)

__all__ = [
    "AsyncNetworkClient",
    "AutoscalePolicy",
    "Autoscaler",
    "DEFAULT_MAX_FRAME_BYTES",
    "DeadlineExceededError",
    "ERROR_TYPES",
    "FrameTooLargeError",
    "NetworkClient",
    "NetworkError",
    "NetworkServer",
    "NetworkService",
    "RETRIABLE_ERROR_TYPES",
    "RemoteError",
    "Replica",
    "ReplicaSet",
    "decode",
    "encode",
    "encode_frame",
    "error_body",
    "read_frame",
    "write_frame",
]
