"""Shared-memory ndarray handoff for the process executor.

The parent process owns every segment: it creates them through a
:class:`ShmArena`, hands workers only an :class:`ArraySpec` (segment name +
shape + dtype — a few dozen bytes of picklable metadata), and unlinks the
segments when the arena closes.  Workers attach read/write views with
:func:`attach_array`; the payload itself never crosses a pipe.

Ownership discipline (this is what the leak tests pin down):

* ``create`` → parent maps the segment and registers an ``atexit`` fallback,
  so even an exception path that skips ``close()`` cannot leak ``/dev/shm``
  entries past interpreter exit.
* workers only ever *attach*; on Python < 3.13 attaching would register the
  segment with the resource tracker a second time, which would make the
  tracker unlink it behind the parent's back (and, with several workers
  sharing one forked tracker, leave its bookkeeping unbalanced) —
  :func:`attach_array` suppresses that duplicate registration.
* ``close`` is idempotent and unlinks unconditionally, so a SIGKILLed worker
  (which cannot run its own cleanup) still cannot leak: the parent holds the
  only unlink responsibility.
"""

from __future__ import annotations

import atexit
import sys
from multiprocessing import shared_memory
from typing import Dict, Iterator, Mapping, NamedTuple, Tuple

import numpy as np

from repro.utils.errors import ComputeError


class ArraySpec(NamedTuple):
    """Picklable descriptor of one shared ndarray (what crosses the pipe)."""

    name: str  # OS-level segment name (``/dev/shm/<name>`` on Linux)
    shape: Tuple[int, ...]
    dtype: str  # numpy dtype string, e.g. ``"<f4"``


def attach_array(spec: ArraySpec) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Worker-side: map an existing segment and view it as an ndarray.

    Returns the ``SharedMemory`` handle (keep it alive as long as the array
    is used, then ``close()`` it — never ``unlink()``) and the view.
    """
    try:
        if sys.version_info >= (3, 13):
            shm = shared_memory.SharedMemory(name=spec.name, track=False)
        else:
            # Python < 3.13 has no ``track=False``: attaching registers the
            # segment with the resource tracker as if this process owned it.
            # Sending a matching UNREGISTER is racy when several forked
            # workers share the parent's tracker (its per-name bookkeeping is
            # a set, so interleaved attach/detach pairs leave it unbalanced
            # and the tracker logs KeyErrors), so suppress the registration
            # itself for the duration of the attach instead.  Worker attach
            # is single-threaded, making the swap safe.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
            try:
                shm = shared_memory.SharedMemory(name=spec.name)
            finally:
                resource_tracker.register = original_register  # type: ignore[assignment]
    except FileNotFoundError as exc:
        raise ComputeError(f"shared-memory segment {spec.name!r} is gone") from exc
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, array


class ShmArena:
    """Parent-side owner of a set of named shared-memory ndarrays."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[shared_memory.SharedMemory, np.ndarray, ArraySpec]] = {}
        self._closed = False
        atexit.register(self.close)

    def create(self, name: str, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Allocate a zero-filled shared ndarray under logical ``name``."""
        if self._closed:
            raise ComputeError("arena is closed")
        if name in self._entries:
            raise ComputeError(f"arena already holds an array named {name!r}")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        array = np.ndarray(tuple(shape), dtype=dt, buffer=shm.buf)
        array.fill(0)
        self._entries[name] = (shm, array, ArraySpec(shm.name, tuple(shape), dt.str))
        return array

    def array(self, name: str) -> np.ndarray:
        return self._entries[name][1]

    def specs(self) -> Dict[str, ArraySpec]:
        """The picklable metadata handed to workers."""
        return {name: entry[2] for name, entry in self._entries.items()}

    def arrays(self) -> Dict[str, np.ndarray]:
        return {name: entry[1] for name, entry in self._entries.items()}

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unmap and unlink every segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        entries, self._entries = self._entries, {}
        for shm, _array, _spec in entries.values():
            try:
                shm.close()
            finally:
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def arena_from_arrays(arrays: Mapping[str, np.ndarray]) -> ShmArena:
    """Copy ``arrays`` into a fresh arena (one segment per entry)."""
    arena = ShmArena()
    try:
        for name, value in arrays.items():
            value = np.ascontiguousarray(value)
            arena.create(name, value.shape, value.dtype)[...] = value
    except BaseException:
        arena.close()
        raise
    return arena
