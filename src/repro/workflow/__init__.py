"""Orchestration substrate standing in for Globus Flows, funcX, and Globus Transfer.

The paper's end-to-end deployment uses Globus Flows to define the workflow,
funcX as a serverless function-execution fabric, and Globus Transfer to move
data and models between the experimental facility and the compute cluster.
Locally we reproduce the same structure:

* :class:`~repro.workflow.pipeline.Pipeline` — an async DAG of named steps
  with dependencies, per-step retries and timeouts, thread-pool execution of
  ready steps, and checkpointed resume through a
  :class:`~repro.workflow.pipeline.CheckpointStore` persisted in the document
  database.
* :class:`~repro.workflow.flows.Flow` — the legacy linear step list, now a
  thin adapter over the DAG engine.
* :class:`~repro.workflow.continual.ContinualLearningPipeline` — the closed
  monitor → pseudo-label → train → validate → promote → hot-swap loop built
  on the engine (imported lazily; also available as
  ``repro.workflow.continual``).
* :class:`~repro.workflow.funcx.FuncXExecutor` — register functions, submit
  invocations to a thread pool, await futures (optionally with a simulated
  cold-start latency per task).
* :class:`~repro.workflow.transfer.TransferService` — models a WAN link with
  latency + bandwidth and "transfers" byte payloads, recording the simulated
  durations that feed the end-to-end timing breakdown of Fig. 15.
"""

from repro.workflow.flows import Flow, FlowResult, FlowStep
from repro.workflow.funcx import FuncXExecutor, FunctionNotRegistered
from repro.workflow.pipeline import (
    Checkpoint,
    CheckpointStore,
    Pipeline,
    PipelineResult,
    PipelineStep,
)
from repro.workflow.transfer import TransferService, TransferRecord

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "ContinualLearningPipeline",
    "CycleReport",
    "Flow",
    "FlowResult",
    "FlowStep",
    "FuncXExecutor",
    "FunctionNotRegistered",
    "Pipeline",
    "PipelineResult",
    "PipelineStep",
    "TransferService",
    "TransferRecord",
]


def __getattr__(name):
    # Lazy: repro.workflow.continual imports repro.core (which itself imports
    # repro.workflow.transfer), so an eager import here would be circular.
    if name in ("ContinualLearningPipeline", "CycleReport"):
        from repro.workflow import continual

        return getattr(continual, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
