"""Replica sets: R serving runtimes behind one client-side load balancer.

A :class:`ReplicaSet` owns ``R`` :class:`Replica` objects, each wrapping one
started :class:`~repro.serving.runtime.ServingRuntime` (and, on model
deployments, that replica's own hot-swappable
:class:`~repro.serving.hot_swap.ModelHandle` — per-replica handles are what
make **rolling** deploys possible: one replica swaps at a time while the
balancer routes around it).  Replicas share the deployment's read-only data
plane (embedder, store, index — including the PR-8 ``mmap`` codec when the
spec uses it), so adding a replica adds scheduling and execution capacity,
not data copies.

Balancing is round-robin seeded **power-of-two-choices**: each submit takes
the next two replicas in rotation and picks the one with the lower observed
load (:meth:`ServingRuntime.load` — admitted-but-unresolved requests).  P2C
keeps the tail of queue-depth imbalance exponentially smaller than random or
pure round-robin placement under bursty load, while the rotating first
choice keeps a drained set perfectly fair.

Health: a background loop probes every replica each ``health_interval_s``
(default probe: the runtime accepts traffic) and **ejects** a replica after
``eject_after`` consecutive failures — it stops receiving traffic until a
probe succeeds again.  A submit that fails with a runtime lifecycle error
also counts as a probe failure and transparently fails over to the next
healthy replica, so a killed replica loses no accepted request: requests it
accepted before dying are drained by its own shutdown, later ones are routed
elsewhere.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry, default_registry
from repro.serving.hot_swap import ModelHandle
from repro.serving.runtime import ServingRuntime
from repro.utils.errors import (
    ConfigurationError,
    NetworkError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)
from repro.utils.logging import get_logger

logger = get_logger("repro.net.replica")

#: A replica factory: ``factory(replica_id) -> (started runtime, handle|None)``.
ReplicaFactory = Callable[[int], Tuple[ServingRuntime, Optional[ModelHandle]]]


class Replica:
    """One serving runtime inside a :class:`ReplicaSet`."""

    def __init__(self, replica_id: int, runtime: ServingRuntime,
                 handle: Optional[ModelHandle] = None):
        self.id = replica_id
        self.runtime = runtime
        #: This replica's own hot-swappable model handle (``None`` on
        #: data-plane-only deployments).
        self.handle = handle
        self._lock = threading.Lock()
        self._accepting = True
        self._healthy = True
        self._consecutive_failures = 0

    # -- routing state -----------------------------------------------------------
    @property
    def accepting(self) -> bool:
        """True when the balancer may route new requests here (healthy and
        not administratively draining)."""
        with self._lock:
            return self._accepting and self._healthy

    @property
    def healthy(self) -> bool:
        with self._lock:
            return self._healthy

    def set_draining(self, draining: bool) -> None:
        """Administratively remove/restore this replica from rotation
        (rolling deploys drain one replica at a time)."""
        with self._lock:
            self._accepting = not draining

    def load(self) -> int:
        """Observed queue depth: requests admitted but not yet resolved."""
        return self.runtime.load()

    # -- health accounting -------------------------------------------------------
    def note_failure(self, eject_after: int) -> bool:
        """Record a probe/submit failure; returns True when this one ejected
        the replica (crossed ``eject_after`` consecutive failures)."""
        with self._lock:
            self._consecutive_failures += 1
            if self._healthy and self._consecutive_failures >= eject_after:
                self._healthy = False
                return True
            return False

    def note_success(self) -> bool:
        """Record a successful probe; returns True when it revived an
        ejected replica."""
        with self._lock:
            self._consecutive_failures = 0
            revived = not self._healthy
            self._healthy = True
            return revived

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "accepting" if self.accepting else "out-of-rotation"
        return f"Replica(id={self.id}, {state}, load={self.load()})"


class ReplicaSet:
    """R replica runtimes, balanced, health-checked, and live-resizable.

    Parameters
    ----------
    factory:
        ``factory(replica_id) -> (runtime, handle)`` builds one **started**
        replica runtime (and its own model handle, or ``None``).  Called at
        construction for the initial ``replicas`` and again by
        :meth:`scale_to` when growing.
    replicas:
        Initial replica count (>= 1).
    probe:
        Health probe ``probe(replica) -> bool``; the default reports whether
        the runtime still accepts traffic.  Exceptions count as failures.
    eject_after:
        Consecutive probe/submit failures before a replica is ejected.
    health_interval_s:
        Probe period of the background health loop; ``None`` disables the
        loop (probes then only happen at submit failures and via
        :meth:`check_health`).
    """

    def __init__(
        self,
        factory: ReplicaFactory,
        replicas: int = 2,
        probe: Optional[Callable[[Replica], bool]] = None,
        eject_after: int = 3,
        health_interval_s: Optional[float] = 0.5,
        registry: Optional[MetricsRegistry] = None,
    ):
        if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
            raise ConfigurationError("ReplicaSet requires replicas >= 1")
        if not isinstance(eject_after, int) or isinstance(eject_after, bool) or eject_after < 1:
            raise ConfigurationError("ReplicaSet requires eject_after >= 1")
        self._factory = factory
        self._probe = probe or (lambda replica: replica.runtime.is_running)
        self._eject_after = eject_after
        self._lock = threading.Lock()
        self._replicas: List[Replica] = []
        self._next_id = 0
        self._rotation = 0
        self._closed = False
        registry = registry or default_registry()
        self._m_replicas = registry.gauge(
            "repro_replica_count", "Replicas currently in the replica set"
        )
        self._m_healthy = registry.gauge(
            "repro_replica_healthy", "1 when the replica is healthy and in rotation",
            ("replica",),
        )
        self._m_depth = registry.gauge(
            "repro_replica_queue_depth", "Observed per-replica load at pick time",
            ("replica",),
        )
        self._m_requests = registry.counter(
            "repro_replica_requests_total",
            "Requests routed to each replica (by submit outcome)",
            ("replica", "status"),
        )
        self._m_ejections = registry.counter(
            "repro_replica_ejections_total", "Replicas ejected by health accounting"
        )
        for _ in range(replicas):
            self._add_replica_locked()
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        if health_interval_s is not None:
            if health_interval_s <= 0:
                raise ConfigurationError("health_interval_s must be positive (or None)")
            self._health_thread = threading.Thread(
                target=self._health_loop, args=(float(health_interval_s),),
                name="replica-health", daemon=True,
            )
            self._health_thread.start()

    # -- construction helpers ----------------------------------------------------
    def _add_replica_locked(self) -> Replica:
        replica_id = self._next_id
        self._next_id += 1
        runtime, handle = self._factory(replica_id)
        if not isinstance(runtime, ServingRuntime) or not runtime.is_running:
            raise ConfigurationError(
                "replica factory must return a started ServingRuntime"
            )
        replica = Replica(replica_id, runtime, handle)
        with self._lock:
            self._replicas.append(replica)
            count = len(self._replicas)
        self._m_replicas.set(count)
        self._m_healthy.labels(replica=str(replica_id)).set(1)
        logger.info("replica %d added (now %d)", replica_id, count)
        return replica

    # -- introspection -----------------------------------------------------------
    @property
    def replicas(self) -> List[Replica]:
        with self._lock:
            return list(self._replicas)

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    @property
    def operations(self) -> List[str]:
        with self._lock:
            if not self._replicas:
                return []
            return self._replicas[0].runtime.operations

    def total_load(self) -> int:
        return sum(replica.load() for replica in self.replicas)

    def snapshot(self) -> Dict[str, Any]:
        """Per-replica health/load plus each runtime's telemetry snapshot."""
        replicas = self.replicas
        return {
            "replicas": len(replicas),
            "healthy": sum(1 for r in replicas if r.healthy),
            "per_replica": {
                str(r.id): {
                    "healthy": r.healthy,
                    "accepting": r.accepting,
                    "load": r.load(),
                    "version": r.handle.version if r.handle is not None else None,
                    "telemetry": r.runtime.telemetry_snapshot(),
                }
                for r in replicas
            },
        }

    # -- balancing ---------------------------------------------------------------
    def _pick(self) -> List[Replica]:
        """Candidate replicas, best first: P2C over the rotating pair, then
        every other accepting replica as failover, then (last resort) the
        non-accepting ones so a fully ejected set still surfaces the real
        runtime error rather than a bare 'unavailable'."""
        with self._lock:
            if self._closed:
                raise ServiceClosedError("replica set is closed")
            replicas = list(self._replicas)
            rotation = self._rotation
            self._rotation += 1
        accepting = [r for r in replicas if r.accepting]
        if not accepting:
            return replicas
        if len(accepting) == 1:
            ordered = accepting
        else:
            first = accepting[rotation % len(accepting)]
            second = accepting[(rotation + 1) % len(accepting)]
            pair = sorted({first.id: first, second.id: second}.values(),
                          key=lambda r: r.load())
            rest = [r for r in accepting if r is not pair[0] and r not in pair]
            ordered = pair + rest
        for replica in ordered:
            self._m_depth.labels(replica=str(replica.id)).set(replica.load())
        return ordered

    def submit(self, op: str, payload: Any, tenant: Optional[str] = None,
               trace: Optional[Any] = None) -> Future:
        """Route one request to the best replica; fails over on lifecycle
        errors (closed/crashed replicas count against their health).

        Raises :class:`ServiceOverloadedError` when every candidate rejected
        for depth, and :class:`NetworkError` when no replica could accept at
        all.
        """
        last_exc: Optional[BaseException] = None
        overloaded = False
        for replica in self._pick():
            try:
                future = replica.runtime.submit(op, payload, tenant=tenant, trace=trace)
            except ConfigurationError:
                raise  # unknown op: identical on every replica, not a health event
            except ServiceOverloadedError as exc:
                # Full queue is backpressure, not ill health.
                self._m_requests.labels(replica=str(replica.id), status="overloaded").inc()
                overloaded = True
                last_exc = exc
                continue
            except ServingError as exc:
                self._m_requests.labels(replica=str(replica.id), status="failed").inc()
                self._note_probe(replica, ok=False)
                last_exc = exc
                continue
            self._m_requests.labels(replica=str(replica.id), status="accepted").inc()
            return future
        if overloaded and isinstance(last_exc, ServiceOverloadedError):
            raise last_exc
        raise NetworkError(
            f"no healthy replica could accept operation {op!r}"
        ) from last_exc

    def call(self, op: str, payload: Any, timeout: Optional[float] = None,
             tenant: Optional[str] = None) -> Any:
        return self.submit(op, payload, tenant=tenant).result(timeout=timeout)

    # -- health ------------------------------------------------------------------
    def _note_probe(self, replica: Replica, ok: bool) -> None:
        if ok:
            if replica.note_success():
                self._m_healthy.labels(replica=str(replica.id)).set(1)
                logger.info("replica %d recovered", replica.id)
        else:
            if replica.note_failure(self._eject_after):
                self._m_healthy.labels(replica=str(replica.id)).set(0)
                self._m_ejections.inc()
                logger.warning("replica %d ejected after repeated failures", replica.id)

    def check_health(self) -> Dict[int, bool]:
        """Probe every replica once; returns ``{replica_id: healthy_now}``."""
        results: Dict[int, bool] = {}
        for replica in self.replicas:
            try:
                ok = bool(self._probe(replica))
            except Exception:
                ok = False
            self._note_probe(replica, ok=ok)
            results[replica.id] = replica.healthy
        return results

    def _health_loop(self, interval_s: float) -> None:
        while not self._health_stop.wait(interval_s):
            if self._closed:
                return
            try:
                self.check_health()
            except Exception:  # the loop must survive any probe bug
                logger.exception("health check pass failed")

    # -- scaling -----------------------------------------------------------------
    def scale_to(self, n: int) -> int:
        """Grow or shrink to ``n`` replicas; returns the new count.

        Shrinking removes the newest replicas first, each drained (every
        accepted request resolves) and then shut down — scaling down never
        drops a request.
        """
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise ConfigurationError("scale_to requires an integer n >= 1")
        while True:
            with self._lock:
                if self._closed:
                    raise ServiceClosedError("replica set is closed")
                current = len(self._replicas)
                victim: Optional[Replica] = None
                if current > n:
                    victim = self._replicas.pop()
                    count = len(self._replicas)
            if victim is not None:
                self._m_replicas.set(count)
                self._retire(victim)
                continue
            if current < n:
                self._add_replica_locked()
                continue
            return current

    def _retire(self, replica: Replica) -> None:
        replica.set_draining(True)
        replica.runtime.drain(timeout=30.0)
        replica.runtime.shutdown()
        self._m_healthy.labels(replica=str(replica.id)).set(0)
        logger.info("replica %d retired", replica.id)

    # -- rolling deploys ---------------------------------------------------------
    def rolling_swap(
        self, model: Any, version: str, drain_timeout_s: float = 30.0
    ) -> List[int]:
        """Deploy ``model`` as ``version`` across all replicas, one at a time.

        For each replica in turn: take it out of rotation (the balancer
        routes around it), drain its in-flight requests (they finish on the
        old model, stamped with the old version), hot-swap its handle, and
        put it back.  At every instant at least the other replicas serve
        traffic, every response is stamped with exactly the version that
        produced it, and no accepted request is dropped or errored.  Returns
        the replica ids swapped, in order.
        """
        swapped: List[int] = []
        for replica in self.replicas:
            if replica.handle is None:
                raise ConfigurationError(
                    f"replica {replica.id} has no model handle; rolling_swap "
                    "requires a model-serving replica set"
                )
            replica.set_draining(True)
            try:
                if not replica.runtime.drain(timeout=drain_timeout_s):
                    raise NetworkError(
                        f"replica {replica.id} did not drain within "
                        f"{drain_timeout_s}s; rolling swap aborted after "
                        f"{swapped or 'no'} replicas"
                    )
                replica.runtime.flush()
                replica.handle.swap(model, version)
            finally:
                replica.set_draining(False)
            swapped.append(replica.id)
            logger.info("rolling deploy: replica %d now serving %s", replica.id, version)
        return swapped

    @property
    def versions(self) -> Dict[int, Optional[str]]:
        """Live model version per replica (``None`` for data-plane replicas)."""
        return {
            r.id: (r.handle.version if r.handle is not None else None)
            for r in self.replicas
        }

    # -- lifecycle ---------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Quiescence barrier over every replica."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        for replica in self.replicas:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if not replica.runtime.drain(timeout=remaining):
                return False
        return True

    def close(self) -> None:
        """Stop the health loop and shut every replica down (drain-on-shutdown
        semantics of each runtime apply).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            replicas = list(self._replicas)
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        for replica in replicas:
            replica.runtime.shutdown()
        self._m_replicas.set(0)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
