"""Model Zoo: trained models indexed by their training-dataset distribution.

Every model that has ever been trained for an application is kept here
together with the cluster PDF of the dataset it was trained on.  That PDF is
the *index*: fairMS never has to run inference with a Zoo model to rank it —
it only compares distributions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.distribution import DatasetDistribution
from repro.nn.network import Sequential
from repro.storage.documentdb import Collection, DocumentDB
from repro.utils.errors import StorageError, ValidationError


@dataclass
class ModelRecord:
    """A Zoo entry: model identity + training-data distribution + metrics."""

    model_id: str
    name: str
    distribution: DatasetDistribution
    metrics: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)


class ModelZoo:
    """Stores serialised models and their training-dataset distributions.

    Backed by a document collection so the Zoo shares the persistence,
    indexing, and concurrency behaviour of the rest of the data service.
    """

    def __init__(self, db: Optional[DocumentDB] = None, collection: str = "model_zoo"):
        self.db = db or DocumentDB()
        self.collection_name = collection

    @property
    def collection(self) -> Collection:
        return self.db.collection(self.collection_name)

    @property
    def tag_collection(self) -> Collection:
        """The collection holding promotion tags (one document per tag)."""
        return self.db.collection(f"{self.collection_name}.tags")

    def __len__(self) -> int:
        return self.collection.count()

    # -- writes --------------------------------------------------------------------
    def add(
        self,
        model: Sequential,
        distribution: DatasetDistribution,
        name: Optional[str] = None,
        metrics: Optional[Dict[str, float]] = None,
        **metadata,
    ) -> ModelRecord:
        """Serialise ``model`` into the Zoo; returns its record."""
        if distribution.n_clusters < 1:
            raise ValidationError("distribution must have at least one cluster")
        doc_meta = {
            "name": name or model.name,
            "distribution": distribution.as_dict(),
            "metrics": dict(metrics or {}),
            "metadata": dict(metadata),
            "created_at": time.time(),
            "n_parameters": model.num_parameters(),
        }
        model_id = self.collection.insert_one(doc_meta, payload=model.to_bytes())
        return ModelRecord(
            model_id=model_id,
            name=doc_meta["name"],
            distribution=distribution,
            metrics=doc_meta["metrics"],
            metadata=doc_meta["metadata"],
            created_at=doc_meta["created_at"],
        )

    # -- reads -----------------------------------------------------------------------
    def record(self, model_id: str) -> ModelRecord:
        """The metadata record of a model — a metadata-only read: unlike
        :meth:`load_model`, no model-payload transfer is charged."""
        doc = self.collection.snapshot_one({"_id": model_id})
        if doc is None:
            raise StorageError(f"document {model_id!r} not found in {self.collection_name!r}")
        return ModelRecord(
            model_id=doc["_id"],
            name=doc["name"],
            distribution=DatasetDistribution.from_dict(doc["distribution"]),
            metrics=dict(doc.get("metrics", {})),
            metadata=dict(doc.get("metadata", {})),
            created_at=float(doc.get("created_at", 0.0)),
        )

    def records(self) -> List[ModelRecord]:
        return [self.record(doc_id) for doc_id in self.collection.ids()]

    def load_model(self, model_id: str) -> Sequential:
        """Deserialise a Zoo model ready for fine-tuning or inference."""
        doc = self.collection.get(model_id, decode_payload=True)
        if "payload" not in doc:
            raise StorageError(f"model {model_id!r} has no serialised payload")
        return Sequential.from_bytes(doc["payload"])

    def find(self, name_contains: Optional[str] = None, **metadata) -> List[ModelRecord]:
        """FAIR-style discovery: find Zoo models by name substring and/or metadata.

        ``metadata`` keys are matched against the ``metadata`` dict stored with
        each model (e.g. ``origin="bootstrap"``, ``scans=[0, 1]``).
        """
        matches: List[ModelRecord] = []
        for record in self.records():
            if name_contains is not None and name_contains not in record.name:
                continue
            if any(record.metadata.get(k) != v for k, v in metadata.items()):
                continue
            matches.append(record)
        return matches

    # -- promotion tags ---------------------------------------------------------------
    #
    # A *tag* (e.g. ``"latest"``) names the live model for an application.
    # ``promote`` moves the tag to a new model, pushing the previous holder
    # onto a persisted history stack so ``rollback`` can restore it exactly.
    # Tags live in their own collection (plain documents, no payload) and
    # therefore survive :meth:`DocumentDB.save`/:meth:`DocumentDB.load`.
    # Every read-modify-write goes through ``Collection.transform_one``, i.e.
    # is serialized by the *collection's* write lock — concurrent promotions
    # through different ModelZoo wrappers over the same database cannot lose
    # updates or hand out duplicate version labels.

    def _tag_snapshot(self, tag: str) -> Optional[Dict]:
        """A consistent copy of a tag document (or ``None``).

        Read-locked, not write-locked: tag reads never contend with each
        other, only with an in-flight promote/rollback.
        """
        return self.tag_collection.snapshot_one({"tag": tag})

    def promote(self, model_id: str, tag: str = "latest") -> str:
        """Make ``model_id`` the tagged (live) model; returns its version label.

        Version labels are ``"v0"``, ``"v1"``, ... in promotion order per tag
        and are never reused, even after a rollback.
        """
        if not tag:
            raise ValidationError("tag must be non-empty")
        # Existence check via ids(): no payload transfer charged, unlike get().
        if model_id not in self.collection.ids():
            raise StorageError(f"model {model_id!r} not found in {self.collection_name!r}")
        assigned: Dict[str, str] = {}

        def do_promote(doc: Optional[Dict]) -> Dict:
            if doc is None:
                assigned["version"] = "v0"
                return {"model_id": model_id, "version": "v0",
                        "history": [], "history_versions": [], "promotions": 1}
            history = list(doc.get("history", [])) + [doc["model_id"]]
            history_versions = list(doc.get("history_versions", [])) + [doc.get("version", "")]
            promotions = int(doc.get("promotions", len(history))) + 1
            assigned["version"] = f"v{promotions - 1}"
            return {"model_id": model_id, "version": assigned["version"],
                    "history": history, "history_versions": history_versions,
                    "promotions": promotions}

        self.tag_collection.transform_one({"tag": tag}, do_promote)
        return assigned["version"]

    def promoted(self, tag: str = "latest") -> Tuple[str, str]:
        """Atomic ``(model_id, version)`` snapshot of a tag.

        Taken in one locked read, so a concurrent promote/rollback can never
        produce a torn pair (one promotion's model with another's label).
        """
        doc = self._tag_snapshot(tag)
        if doc is None:
            raise StorageError(f"tag {tag!r} has never been promoted")
        return doc["model_id"], str(
            doc.get("version", f"v{int(doc.get('promotions', 1)) - 1}")
        )

    def resolve(self, tag: str = "latest") -> str:
        """The model id currently holding ``tag``."""
        return self.promoted(tag)[0]

    def load_tag(self, tag: str = "latest") -> Sequential:
        """Deserialise the tagged model (the invariant the continual loop
        relies on: a promoted tag is always loadable)."""
        return self.load_model(self.resolve(tag))

    def rollback(self, tag: str = "latest") -> str:
        """Revert ``tag`` to the previously promoted model; returns its id.

        The rolled-back-to model is byte-identical to what was promoted —
        promotion never mutates the stored payload.
        """
        restored: Dict[str, str] = {}

        def do_rollback(doc: Optional[Dict]) -> Optional[Dict]:
            if doc is None:
                return None
            history = list(doc.get("history", []))
            if not history:
                return None
            restored["model_id"] = history.pop()
            history_versions = list(doc.get("history_versions", []))
            previous_version = history_versions.pop() if history_versions else ""
            # Tombstone the withdrawn promotion: the lineage must remember it
            # happened (promoted_version_of relies on this) even though the
            # model no longer serves — otherwise a crashed cycle resumed after
            # an operator rollback would re-promote the rolled-back model.
            rolled_back = list(doc.get("rolled_back", []))
            rolled_back.append([doc["model_id"], doc.get("version", "")])
            return {"model_id": restored["model_id"], "version": previous_version,
                    "history": history, "history_versions": history_versions,
                    "rolled_back": rolled_back}

        found = self.tag_collection.transform_one({"tag": tag}, do_rollback)
        if found is None:
            raise StorageError(f"tag {tag!r} has never been promoted")
        if "model_id" not in restored:
            raise StorageError(f"tag {tag!r} has no earlier promotion to roll back to")
        return restored["model_id"]

    def promoted_version_of(self, model_id: str, tag: str = "latest") -> Optional[str]:
        """The version label ``model_id`` was promoted under, or ``None``.

        Searches the current holder, the promotion history, and rollback
        tombstones (most recent occurrence wins), so a model promoted and
        later superseded — or withdrawn by a rollback — still reports the
        label it was promoted under.
        """
        doc = self._tag_snapshot(tag)
        if doc is None:
            return None
        if doc["model_id"] == model_id:
            return str(doc.get("version", ""))
        # Live lineage outranks tombstones: a model rolled back and later
        # re-promoted reports its newest label, not the withdrawn one.
        history_pairs = list(zip(doc.get("history", []), doc.get("history_versions", [])))
        tombstones = [(mid, v) for mid, v in doc.get("rolled_back", [])]
        for past_id, past_version in [*reversed(history_pairs), *reversed(tombstones)]:
            if past_id == model_id:
                return str(past_version)
        return None

    def promoted_version(self, tag: str = "latest") -> str:
        """The version label of the model currently holding ``tag``.

        Rollback-aware: after ``promote -> promote -> rollback`` this is
        ``"v0"`` again (the label the serving model was originally promoted
        under), while :meth:`promotion_count` keeps counting promote calls.
        """
        return self.promoted(tag)[1]

    def promotion_history(self, tag: str = "latest") -> List[str]:
        """Past holders of ``tag`` (oldest first), excluding the current one."""
        doc = self._tag_snapshot(tag)
        return list(doc.get("history", [])) if doc is not None else []

    def promotion_count(self, tag: str = "latest") -> int:
        """How many times ``promote`` has been called for ``tag``."""
        doc = self._tag_snapshot(tag)
        return int(doc.get("promotions", 0)) if doc is not None else 0

    def tags(self) -> Dict[str, str]:
        """All tags and the model ids they currently point at."""
        return {doc["tag"]: doc["model_id"] for doc in self.tag_collection.find()}

    def model_bytes(self, model_id: str) -> int:
        """Serialised size of a model (used to charge the transfer service).

        Itself a metadata read — it reports the size without transferring."""
        doc = self.collection.snapshot_one({"_id": model_id})
        if doc is None:
            raise StorageError(f"document {model_id!r} not found in {self.collection_name!r}")
        return int(doc.get("payload_bytes", 0))

    def delete(self, model_id: str) -> bool:
        return self.collection.delete_many({"_id": model_id}) > 0
