"""Conventional (physics-based) data labeling.

In the paper the baseline for data annotation is pseudo-Voigt profile fitting
with the MIDAS package — a compute-intensive procedure run on an 80-core
workstation ("Voigt-80") or a 1440-core cluster ("Voigt-1440").  This package
implements that substrate from scratch:

* :mod:`repro.labeling.pseudo_voigt` — 1-D / 2-D pseudo-Voigt profiles used
  both to *generate* synthetic Bragg peaks and to *fit* them.
* :mod:`repro.labeling.peak_fitting` — per-patch centre-of-mass labeling via
  non-linear least squares (the expensive conventional method) plus a cheap
  intensity-weighted centroid used for sanity checks.
* :mod:`repro.labeling.parallel` — a labeling engine that fans fits across
  worker threads and scales measured wall-clock by a simulated core count so
  the Fig. 15 comparison (fairDMS vs Voigt-80 vs Voigt-1440) can be
  reproduced on a laptop.
"""

from repro.labeling.pseudo_voigt import pseudo_voigt_1d, pseudo_voigt_2d, PeakParameters
from repro.labeling.peak_fitting import (
    fit_peak_center,
    intensity_centroid,
    FitResult,
    label_patches,
)
from repro.labeling.parallel import (
    LabelingEngine,
    LabelingReport,
    CostModel,
    VOIGT_80,
    VOIGT_1440,
)

__all__ = [
    "VOIGT_80",
    "VOIGT_1440",
    "pseudo_voigt_1d",
    "pseudo_voigt_2d",
    "PeakParameters",
    "fit_peak_center",
    "intensity_centroid",
    "FitResult",
    "label_patches",
    "LabelingEngine",
    "LabelingReport",
    "CostModel",
]
