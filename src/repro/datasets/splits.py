"""Dataset splitting helpers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike, default_rng


def train_val_test_split(
    n: int,
    val_fraction: float = 0.15,
    test_fraction: float = 0.15,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return shuffled index arrays ``(train, val, test)`` for ``n`` samples."""
    if n < 3:
        raise ValidationError("need at least 3 samples to split")
    if val_fraction < 0 or test_fraction < 0 or val_fraction + test_fraction >= 1.0:
        raise ValidationError("fractions must be non-negative and sum to < 1")
    perm = default_rng(seed).permutation(n)
    n_val = int(round(n * val_fraction))
    n_test = int(round(n * test_fraction))
    test = perm[:n_test]
    val = perm[n_test : n_test + n_val]
    train = perm[n_test + n_val :]
    if train.size == 0:
        raise ValidationError("train split is empty; reduce val/test fractions")
    return train, val, test


def holdout_split(n: int, holdout_fraction: float = 0.2, seed: SeedLike = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(rest, holdout)`` index arrays.

    Mirrors the paper's Fig. 9 protocol: a holdout set ``BH`` is carved out of
    a new experimental dataset ``BR`` and never used for labeling or training,
    only for the final error comparison.
    """
    if n < 2:
        raise ValidationError("need at least 2 samples for a holdout split")
    if not 0.0 < holdout_fraction < 1.0:
        raise ValidationError("holdout_fraction must be in (0, 1)")
    perm = default_rng(seed).permutation(n)
    n_holdout = max(1, int(round(n * holdout_fraction)))
    if n_holdout >= n:
        n_holdout = n - 1
    return perm[n_holdout:], perm[:n_holdout]
