"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils import rng as rng_mod
from repro.utils.rng import (
    bootstrap_indices,
    default_rng,
    derive_seed,
    get_global_seed,
    set_global_seed,
    shuffled_indices,
    spawn_rngs,
    weighted_choice,
)


def test_default_rng_is_deterministic_for_seed():
    a = default_rng(42).random(5)
    b = default_rng(42).random(5)
    np.testing.assert_array_equal(a, b)


def test_default_rng_passthrough_generator():
    gen = np.random.default_rng(7)
    assert default_rng(gen) is gen


def test_global_seed_roundtrip():
    old = get_global_seed()
    try:
        set_global_seed(99)
        assert get_global_seed() == 99
        a = default_rng(None).random(3)
        b = default_rng(99).random(3)
        np.testing.assert_array_equal(a, b)
    finally:
        set_global_seed(old)


def test_spawn_rngs_independent_streams():
    rngs = spawn_rngs(5, 3)
    assert len(rngs) == 3
    draws = [r.random(4) for r in rngs]
    assert not np.allclose(draws[0], draws[1])
    assert not np.allclose(draws[1], draws[2])


def test_spawn_rngs_deterministic():
    a = [r.random(2) for r in spawn_rngs(11, 2)]
    b = [r.random(2) for r in spawn_rngs(11, 2)]
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(1, -1)


def test_spawn_rngs_from_generator():
    gen = np.random.default_rng(3)
    rngs = spawn_rngs(gen, 2)
    assert len(rngs) == 2


def test_derive_seed_deterministic_and_salted():
    assert derive_seed(10, 1, 2) == derive_seed(10, 1, 2)
    assert derive_seed(10, 1, 2) != derive_seed(10, 2, 1)


def test_shuffled_indices_is_permutation():
    idx = shuffled_indices(20, seed=1)
    assert sorted(idx.tolist()) == list(range(20))


def test_bootstrap_indices_shape_and_range():
    idx = bootstrap_indices(10, size=25, seed=2)
    assert idx.shape == (25,)
    assert idx.min() >= 0 and idx.max() < 10


def test_weighted_choice_respects_zero_weights():
    idx = weighted_choice([0.0, 1.0, 0.0], size=50, seed=3)
    assert set(idx.tolist()) == {1}


def test_weighted_choice_uniform_fallback_for_zero_sum():
    idx = weighted_choice([0.0, 0.0, 0.0], size=100, seed=4)
    assert set(idx.tolist()) <= {0, 1, 2}
    assert len(set(idx.tolist())) > 1


def test_weighted_choice_rejects_negative():
    with pytest.raises(ValueError):
        weighted_choice([-1.0, 2.0], size=3)


def test_weighted_choice_rejects_empty():
    with pytest.raises(ValueError):
        weighted_choice([], size=3)
