"""Tests for the training / fine-tuning loops and MC dropout."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, ReLU
from repro.nn.mc_dropout import mc_dropout_predict, prediction_interval_width
from repro.nn.metrics import (
    euclidean_pixel_error,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
)
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.utils.errors import ConfigurationError, ValidationError


def _regression_data(n=200, seed=0, w_seed=0):
    """Linear-regression data; ``w_seed`` fixes the underlying mapping so two
    datasets with the same ``w_seed`` come from the same distribution."""
    w = np.random.default_rng(w_seed).normal(size=(5, 2))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    y = x @ w + 0.01 * rng.normal(size=(n, 2))
    return x, y


def _model(seed=0, dropout=0.0):
    layers = [Dense(5, 16, seed=seed), ReLU()]
    if dropout:
        layers.append(Dropout(dropout, seed=seed))
    layers.append(Dense(16, 2, seed=seed + 1))
    return Sequential(layers)


# -- TrainingConfig -----------------------------------------------------------
def test_training_config_validation():
    with pytest.raises(ConfigurationError):
        TrainingConfig(epochs=0)
    with pytest.raises(ConfigurationError):
        TrainingConfig(batch_size=0)
    with pytest.raises(ConfigurationError):
        TrainingConfig(lr=0)
    with pytest.raises(ConfigurationError):
        TrainingConfig(patience=0)


# -- fit -------------------------------------------------------------------------
def test_fit_reduces_validation_loss():
    x, y = _regression_data()
    model = _model()
    trainer = Trainer(model)
    history = trainer.fit((x[:150], y[:150]), val=(x[150:], y[150:]),
                          config=TrainingConfig(epochs=30, batch_size=32, lr=0.01, seed=0))
    assert history.epochs_run == 30
    assert history.val_loss[-1] < history.val_loss[0]
    assert history.best_val_loss <= history.val_loss[0]
    assert history.total_time > 0


def test_fit_records_history_lengths():
    x, y = _regression_data(80)
    history = Trainer(_model()).fit((x, y), config=TrainingConfig(epochs=5, seed=1))
    assert len(history.train_loss) == len(history.val_loss) == len(history.epoch_time) == 5


def test_fit_early_stopping_with_patience():
    x, y = _regression_data(100)
    history = Trainer(_model()).fit(
        (x, y), val=(x, y),
        config=TrainingConfig(epochs=200, batch_size=32, lr=0.01, patience=3, seed=0),
    )
    assert history.stopped_early
    assert history.epochs_run < 200


def test_fit_stops_at_target_loss():
    x, y = _regression_data(200)
    history = Trainer(_model()).fit(
        (x, y), val=(x, y),
        config=TrainingConfig(epochs=300, batch_size=32, lr=0.02, target_loss=0.05, seed=0),
    )
    assert history.converged_epoch is not None
    assert history.val_loss[history.converged_epoch - 1] <= 0.05


def test_fit_with_callable_batch_source():
    x, y = _regression_data(64)

    def loader():
        for i in range(0, 64, 16):
            yield x[i : i + 16], y[i : i + 16]

    history = Trainer(_model()).fit(loader, val=(x, y), config=TrainingConfig(epochs=3, seed=0))
    assert history.epochs_run == 3


def test_fit_rejects_mismatched_shapes():
    x, y = _regression_data(20)
    with pytest.raises(ValidationError):
        Trainer(_model()).fit((x, y[:10]), config=TrainingConfig(epochs=1))


def test_fit_rejects_empty_dataset():
    with pytest.raises(ValidationError):
        Trainer(_model()).fit((np.zeros((0, 5)), np.zeros((0, 2))), config=TrainingConfig(epochs=1))


def test_evaluate_matches_loss():
    x, y = _regression_data(50)
    model = _model()
    trainer = Trainer(model)
    loss_val = trainer.evaluate(x, y)
    pred = model.predict(x)
    assert loss_val == pytest.approx(mean_squared_error(pred, y), rel=1e-6)


# -- fine-tuning ---------------------------------------------------------------------
def test_fine_tune_converges_faster_than_scratch():
    """Core fairMS premise: fine-tuning a well-matched checkpoint needs fewer epochs."""
    x, y = _regression_data(300, seed=0)
    target = 0.05

    # Pre-train a model on the same distribution (the "best Zoo model").
    pretrained = _model(seed=0)
    Trainer(pretrained).fit((x, y), val=(x, y),
                            config=TrainingConfig(epochs=60, batch_size=32, lr=0.01, seed=0))

    # New data from the same distribution.
    x_new, y_new = _regression_data(150, seed=5)

    scratch = _model(seed=42)
    hist_scratch = Trainer(scratch).fit(
        (x_new, y_new), val=(x_new, y_new),
        config=TrainingConfig(epochs=100, batch_size=32, lr=0.01, target_loss=target, seed=1),
    )
    ft_model = pretrained.clone()
    hist_ft = Trainer(ft_model).fine_tune(
        (x_new, y_new), val=(x_new, y_new),
        config=TrainingConfig(epochs=100, batch_size=32, lr=0.01, target_loss=target, seed=1),
        lr_scale=0.5,
    )
    e_scratch = hist_scratch.converged_epoch or 101
    e_ft = hist_ft.converged_epoch or 101
    assert e_ft < e_scratch


def test_fine_tune_freeze_keeps_frozen_weights():
    x, y = _regression_data(100)
    model = _model(seed=0)
    before = model.layers[0].parameters()[0].data.copy()
    Trainer(model).fine_tune((x, y), config=TrainingConfig(epochs=3, seed=0), freeze_layers=1)
    after = model.layers[0].parameters()[0].data
    np.testing.assert_array_equal(before, after)
    # And the model is unfrozen again afterwards.
    assert all(p.trainable for p in model.parameters())


def test_fine_tune_invalid_lr_scale():
    x, y = _regression_data(20)
    with pytest.raises(ConfigurationError):
        Trainer(_model()).fine_tune((x, y), config=TrainingConfig(epochs=1), lr_scale=0.0)


# -- TrainingHistory -------------------------------------------------------------------
def test_history_epochs_to_converge():
    h = TrainingHistory(val_loss=[0.5, 0.3, 0.1, 0.05])
    assert h.epochs_to_converge(0.3) == 2
    assert h.epochs_to_converge(0.01) is None
    assert h.as_dict()["val_loss"] == [0.5, 0.3, 0.1, 0.05]


# -- MC dropout -----------------------------------------------------------------------
def test_mc_dropout_predict_shapes_and_spread():
    x, y = _regression_data(50)
    model = _model(dropout=0.3)
    mean, std = mc_dropout_predict(model, x, n_samples=10)
    assert mean.shape == (50, 2)
    assert std.shape == (50, 2)
    assert np.all(std >= 0)
    assert std.mean() > 0  # dropout induces spread


def test_mc_dropout_requires_dropout_layer():
    x, _ = _regression_data(10)
    with pytest.raises(ConfigurationError):
        mc_dropout_predict(_model(dropout=0.0), x)


def test_mc_dropout_requires_multiple_samples():
    x, _ = _regression_data(10)
    with pytest.raises(ConfigurationError):
        mc_dropout_predict(_model(dropout=0.3), x, n_samples=1)


def test_prediction_interval_width_positive_and_monotone_in_confidence():
    x, _ = _regression_data(30)
    model = _model(dropout=0.3)
    w95 = prediction_interval_width(model, x, n_samples=10, confidence=0.95)
    w50 = prediction_interval_width(model, x, n_samples=10, confidence=0.50)
    assert w95 > 0
    assert w95 > w50 * 0.5  # same order of magnitude; wider for higher confidence on average


def test_prediction_interval_invalid_confidence():
    x, _ = _regression_data(5)
    with pytest.raises(ConfigurationError):
        prediction_interval_width(_model(dropout=0.2), x, confidence=1.5)


# -- metrics ---------------------------------------------------------------------------
def test_metrics_basic_values():
    pred = np.array([[1.0, 1.0], [2.0, 2.0]])
    target = np.array([[1.0, 1.0], [2.0, 4.0]])
    assert mean_squared_error(pred, target) == pytest.approx(1.0)
    assert mean_absolute_error(pred, target) == pytest.approx(0.5)
    assert r2_score(target, target) == 1.0


def test_metrics_shape_mismatch():
    with pytest.raises(ValueError):
        mean_squared_error(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        euclidean_pixel_error(np.zeros((3, 3)), np.zeros((3, 3)))


def test_euclidean_pixel_error():
    pred = np.array([[0.0, 0.0], [3.0, 4.0]])
    target = np.zeros((2, 2))
    np.testing.assert_allclose(euclidean_pixel_error(pred, target), [0.0, 5.0])
