"""Command-line entry point: ``python -m repro`` (or the ``repro`` script).

Drives the declarative API plane from a shell::

    python -m repro presets --write examples/specs   # list / export presets
    python -m repro validate examples/specs/serving.json
    python -m repro run examples/specs/continual.json --scans 10
    python -m repro serve examples/specs/serving.json --requests 64

``validate`` parses and eagerly validates a spec (exit code 1 on any
configuration error) and prints its content digest.  ``run`` and ``serve``
materialise the spec with :class:`~repro.api.deployment.Deployment` against
the synthetic drifting Bragg-peak experiment shipped in
:mod:`repro.datasets`, so any spec can be exercised end to end without real
beamline data: ``run`` processes scans through the continual-learning loop
(or a one-shot model update when the spec has no ``continual`` section),
``serve`` answers a burst of requests through the micro-batching runtime and
prints its telemetry.  With ``--port`` (and optionally ``--replicas``),
``serve`` instead stands up the TCP network plane (:mod:`repro.net`) and
serves until SIGINT/SIGTERM, then drains every accepted request and exits 0
with a final telemetry line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.utils.errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative fairDMS deployments: validate and run SystemSpec JSON files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_presets = sub.add_parser("presets", help="list the named presets (optionally export them)")
    p_presets.add_argument("--write", metavar="DIR", default=None,
                           help="write each preset as <DIR>/<name>.json")

    p_validate = sub.add_parser("validate", help="validate spec file(s); exit 1 on any error")
    p_validate.add_argument("specs", nargs="+", metavar="SPEC", help="spec JSON file(s)")

    p_run = sub.add_parser("run", help="run a spec against the synthetic drifting experiment")
    p_run.add_argument("spec", metavar="SPEC", help="spec JSON file")
    p_run.add_argument("--scans", type=int, default=10,
                       help="total scans in the synthetic experiment (default 10)")
    p_run.add_argument("--change-at", type=int, default=None,
                       help="scan index of the phase change (default: 60%% through)")
    p_run.add_argument("--peaks", type=int, default=60,
                       help="Bragg peaks per scan (default 60)")
    p_run.add_argument("--json", action="store_true", dest="as_json",
                       help="print the final deployment snapshot as JSON")

    p_serve = sub.add_parser(
        "serve",
        help="serve a burst in-process and print telemetry, or (with --port) "
             "serve over TCP until SIGINT/SIGTERM",
    )
    p_serve.add_argument("spec", metavar="SPEC", help="spec JSON file")
    p_serve.add_argument("--requests", type=int, default=64,
                         help="requests to serve before exiting (default 64; "
                              "in-process mode only)")
    p_serve.add_argument("--peaks", type=int, default=60,
                         help="Bragg peaks per bootstrap scan (default 60)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="serve over TCP on this port (0 = ephemeral) until "
                              "SIGINT/SIGTERM, then drain and exit 0")
    p_serve.add_argument("--host", default=None,
                         help="bind address for --port (default: spec's network.host)")
    p_serve.add_argument("--replicas", type=int, default=None,
                         help="replica runtimes behind the network endpoint "
                              "(default: spec's network.replicas)")

    p_observe = sub.add_parser(
        "observe",
        help="serve a burst with the observability plane on; dump metrics and traces",
    )
    p_observe.add_argument("spec", metavar="SPEC", help="spec JSON file")
    p_observe.add_argument("--requests", type=int, default=64,
                           help="requests to serve (default 64)")
    p_observe.add_argument("--peaks", type=int, default=60,
                           help="Bragg peaks per bootstrap scan (default 60)")
    p_observe.add_argument("--metrics-out", metavar="FILE", default=None,
                           help="write the Prometheus text exposition to FILE "
                                "(default: print it)")
    p_observe.add_argument("--traces-out", metavar="FILE", default=None,
                           help="append sampled trace spans to FILE as JSON lines")
    p_observe.add_argument("--http", action="store_true",
                           help="also stand up the /metrics+/traces HTTP endpoint "
                                "and print its URL (serves until interrupted)")
    p_observe.add_argument("--port", type=int, default=0,
                           help="port for --http (default: an ephemeral port)")
    return parser


def _cmd_presets(args: argparse.Namespace) -> int:
    from repro.api.spec import preset, preset_names

    for name in preset_names():
        spec = preset(name)
        sections = [
            kind for kind in ("model", "serving", "continual", "network")
            if getattr(spec, kind) is not None
        ]
        extras = f" (+ {', '.join(sections)})" if sections else ""
        print(f"{name:10s} digest={spec.digest()[:12]}  embedder={spec.embedder.name} "
              f"clustering={spec.clustering.algorithm} storage={spec.storage.backend} "
              f"index={spec.index.backend}{extras}")
        if args.write:
            directory = Path(args.write)
            directory.mkdir(parents=True, exist_ok=True)
            path = spec.save(directory / f"{name}.json")
            print(f"{'':10s} wrote {path}")
    return 0


def _load_spec(path: str):
    """Load a spec file, mapping I/O failures onto the CLI's error channel."""
    from repro.api.spec import SystemSpec

    try:
        return SystemSpec.load(path)
    except FileNotFoundError:
        raise ReproError(f"{path}: file not found") from None
    except OSError as exc:
        raise ReproError(f"{path}: {exc}") from exc
    except ReproError as exc:  # invalid JSON / failed spec validation
        raise ReproError(f"{path}: {exc}") from exc


def _cmd_validate(args: argparse.Namespace) -> int:
    failures = 0
    for spec_path in args.specs:
        try:
            spec = _load_spec(spec_path)
        except ReproError as exc:
            print(f"INVALID  {exc}")
            failures += 1
            continue
        print(f"ok       {spec_path}: spec {spec.name!r} digest={spec.digest()}")
    return 1 if failures else 0


def _experiment(n_scans: int, change_at: Optional[int], peaks: int, seed: int):
    from repro.datasets import BraggPeakDataset, make_two_phase_schedule

    if n_scans < 5:
        raise ReproError("--scans must be at least 5 (3 bootstrap scans + 2 arriving)")
    if change_at is None:
        change_at = max(4, int(n_scans * 0.6))
    if not 3 < change_at < n_scans:
        raise ReproError(f"--change-at must lie in (3, --scans); got {change_at}")
    schedule = make_two_phase_schedule(n_scans=n_scans, change_at=change_at, seed=seed)
    return BraggPeakDataset(schedule, peaks_per_scan=peaks, seed=seed), change_at


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.deployment import Deployment

    spec = _load_spec(args.spec)
    experiment, change_at = _experiment(args.scans, args.change_at, args.peaks, spec.seed)
    with Deployment.from_spec(spec) as dep:
        hist_x, hist_y = experiment.stacked(range(3))
        print(f"[{spec.name}] bootstrapping on {hist_x.shape[0]} labeled samples "
              f"(3 scans; phase change at scan {change_at})...")
        record = dep.fit(hist_x, hist_y)
        if record is not None:
            print(f"[{spec.name}] initial model {record.model_id} promoted as "
                  f"{dep.zoo.promoted_version(dep.tag)}")

        if spec.continual is not None:
            for scan_index in range(3, args.scans):
                report = dep.process_scan(experiment.scan(scan_index).images,
                                          run_id=f"scan-{scan_index:02d}")
                line = (f"scan {scan_index:2d}: signal={report.signal:6.1f}  "
                        f"{'TRIGGERED' if report.triggered else 'ok'}")
                if report.swapped:
                    line += (f"  -> {report.strategy} retrain, "
                             f"val_loss={report.val_loss:.4f}, promoted "
                             f"{report.promoted_version}, hot-swapped")
                elif report.gate_passed is False:
                    line += f"  -> retrain rejected by validation gate ({report.val_loss:.4f})"
                print(line)
        elif spec.model is not None:
            scan = experiment.scan(args.scans - 1)
            print(f"[{spec.name}] scan {args.scans - 1} arrives unlabeled; updating model...")
            report = dep.update_model(scan.images, label="cli-run")
            print(f"  strategy={report.strategy} certainty={report.certainty:.1f}% "
                  f"val_loss={report.history.best_val_loss:.4f} "
                  f"end_to_end={report.end_to_end_time:.2f}s")
        else:
            scan = experiment.scan(args.scans - 1)
            lookup = dep.lookup(scan.images, label="cli-run")
            print(f"[{spec.name}] data plane only: certainty={dep.certainty(scan.images):.1f}%, "
                  f"lookup returned {len(lookup)} labeled samples (JSD="
                  f"{lookup.input_distribution.distance(lookup.retrieved_distribution):.4f})")

        snapshot = dep.snapshot()
        if args.as_json:
            print(json.dumps(snapshot, indent=2, default=str))
        else:
            store, zoo = snapshot["store"], snapshot["zoo"]
            line = f"[{spec.name}] done: {store['samples']} stored samples in {store['clusters']} clusters"
            if zoo is not None:
                line += f"; zoo holds {zoo['models']} model(s), serving {zoo['promoted_version']}"
            print(line)
    return 0


def _cmd_serve_network(args: argparse.Namespace, spec, experiment) -> int:
    """TCP serving mode: bind, announce, serve until SIGINT/SIGTERM, then
    drain every accepted request and exit 0 with a final telemetry line."""
    import signal
    import threading

    from repro.api.deployment import Deployment

    stop = threading.Event()

    def _on_signal(signum, frame):  # drain on SIGINT and SIGTERM alike
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        with Deployment.from_spec(spec) as dep:
            hist_x, hist_y = experiment.stacked(range(3))
            dep.fit(hist_x, hist_y)
            service = dep.serve_network(
                host=args.host, port=args.port, replicas=args.replicas
            )
            host, port = service.address
            fleet = service.replica_set
            print(f"[{spec.name}] network serving on {host}:{port} "
                  f"replicas={len(fleet)} ops={fleet.operations}"
                  f"{' autoscaler=on' if service.autoscaler is not None else ''}",
                  flush=True)
            stop.wait()
            print(f"[{spec.name}] signal received; draining...", flush=True)
            drained = service.drain(timeout=60.0)
            totals = {"completed": 0, "rejected": 0, "rejected_total": 0}
            for replica in fleet.replicas:
                snap = replica.runtime.telemetry_snapshot()
                totals["completed"] += snap["completed"]
                totals["rejected"] += snap["rejected"]
                totals["rejected_total"] += snap["rejected_total"]
            service.close()
            print(f"[{spec.name}] drained{'' if drained else ' (timed out)'}: "
                  f"served {totals['completed']} requests across "
                  f"{len(fleet.replicas)} replica(s), rejected "
                  f"{totals['rejected_total']} lifetime", flush=True)
        return 0
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api.deployment import Deployment

    spec = _load_spec(args.spec)
    experiment, _ = _experiment(10, None, args.peaks, spec.seed)
    if args.port is not None or args.replicas is not None:
        if args.port is None:
            args.port = 0  # --replicas alone still means network mode
        return _cmd_serve_network(args, spec, experiment)
    with Deployment.from_spec(spec) as dep:
        hist_x, hist_y = experiment.stacked(range(3))
        dep.fit(hist_x, hist_y)
        runtime = dep.serve()
        ops = runtime.operations
        print(f"[{spec.name}] serving started: ops={ops}")
        probes = experiment.scan(4).images
        futures = []
        for i in range(args.requests):
            if "predict" in ops:
                futures.append(runtime.submit("predict", probes[i % len(probes)]))
            else:
                futures.append(runtime.submit("certainty", probes[: 8 + i % 8]))
        for future in futures:
            future.result(timeout=60.0)
        runtime.drain(timeout=60.0)
        snap = runtime.telemetry_snapshot()
        print(f"[{spec.name}] served {snap['completed']} requests: "
              f"p95 latency {snap['latency_ms']['p95_ms']:.2f} ms, "
              f"mean batch size {snap['batch_size']['mean']:.1f}, "
              f"throughput {snap['throughput_rps']:.1f} req/s")
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.api.deployment import Deployment
    from repro.api.spec import ObservabilitySpec

    spec = _load_spec(args.spec)
    if spec.observability is None or not spec.observability.enabled:
        # Observing an unobserved spec is an explicit ask for instrumentation:
        # switch the plane on (full sampling: a smoke burst is tiny) rather
        # than silently producing an empty trace buffer.
        spec = dataclasses.replace(
            spec, observability=ObservabilitySpec(enabled=True, sample_rate=1.0)
        )
    experiment, _ = _experiment(10, None, args.peaks, spec.seed)
    with Deployment.from_spec(spec) as dep:
        hist_x, hist_y = experiment.stacked(range(3))
        dep.fit(hist_x, hist_y)
        runtime = dep.serve()
        ops = runtime.operations
        print(f"[{spec.name}] observed serving started: ops={ops} "
              f"sample_rate={dep.tracer.sample_rate}")
        probes = experiment.scan(4).images
        futures = []
        for i in range(args.requests):
            # First half of the burst goes to the index-scanning lookup op
            # (nearest_labeled drives the repro_index_* series and the
            # index.scan trace span), the rest to whatever else the spec
            # serves, so one burst lights up the whole metric scheme.  Blocks,
            # not alternation: interleaving aliases against the deterministic
            # trace sampler and can starve one op of sampled traces entirely.
            if "nearest_labeled" in ops and i < max(1, args.requests // 2):
                futures.append(runtime.submit("nearest_labeled", probes[i % len(probes)]))
            elif "predict" in ops:
                futures.append(runtime.submit("predict", probes[i % len(probes)]))
            elif "lookup_labeled_data" in ops:
                futures.append(runtime.submit("lookup_labeled_data", probes[: 8 + i % 8]))
            else:
                futures.append(runtime.submit("certainty", probes[: 8 + i % 8]))
        for future in futures:
            future.result(timeout=60.0)
        runtime.drain(timeout=60.0)

        snap = runtime.telemetry_snapshot()
        stats = dep.tracer.stats
        print(f"[{spec.name}] served {snap['completed']} requests: "
              f"p95 latency {snap['latency_ms']['p95_ms']:.2f} ms, "
              f"rejected {snap['rejected']} "
              f"(lifetime {snap['rejected_total']}), "
              f"{stats['roots_sampled']}/{stats['roots_started']} traces sampled "
              f"({stats['spans_buffered']} spans buffered)")
        if args.traces_out:
            count = dep.export_traces(args.traces_out)
            print(f"[{spec.name}] wrote {count} spans to {args.traces_out}")
        metrics_text = dep.metrics_text()
        if args.metrics_out:
            Path(args.metrics_out).write_text(metrics_text)
            print(f"[{spec.name}] wrote metrics exposition to {args.metrics_out}")
        else:
            print(metrics_text, end="")
        if args.http:
            from repro.observability.exporters import ObservabilityHTTPServer

            with ObservabilityHTTPServer(
                dep.registry, dep.tracer, port=args.port
            ) as server:
                print(f"[{spec.name}] scrape {server.url} (Ctrl-C to stop)")
                try:
                    import threading

                    threading.Event().wait()
                except KeyboardInterrupt:
                    print(f"[{spec.name}] stopping")
    return 0


_COMMANDS = {
    "presets": _cmd_presets,
    "validate": _cmd_validate,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "observe": _cmd_observe,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
