"""Ablation — the fairMS distance threshold for the retrain-from-scratch decision.

fairDMS applies a user-defined JSD threshold: when no Zoo model's training
dataset is within the threshold of the new data, the model is trained from
scratch instead of fine-tuned (paper Section II-C).  This ablation sweeps the
threshold and reports, for same-phase and cross-phase query datasets, whether
fine-tuning would be chosen — showing the operating range in which the policy
reuses models for similar data while refusing foundation models trained on a
different configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairMS

from common import bragg_experiment, build_braggnn_zoo, fitted_bragg_fairds, print_table

THRESHOLDS = (0.05, 0.1, 0.2, 0.4, 0.8)


@pytest.mark.figure("ablation-threshold")
def test_ablation_distance_threshold(benchmark, report_sink):
    seed = 0
    experiment = bragg_experiment(n_scans=22, change_at=11, peaks_per_scan=100, seed=seed)
    fairds = fitted_bragg_fairds(experiment, scans=[0, 1, 2], n_clusters=10, seed=seed)
    # Zoo trained on phase-0 data only.
    zoo, _ = build_braggnn_zoo(experiment, fairds, scan_groups=[(0, 1), (2, 3), (4, 5)],
                               epochs=8, seed=seed)

    same_phase = fairds.dataset_distribution(experiment.scan(7).images, label="same-phase")
    cross_phase = fairds.dataset_distribution(experiment.scan(15).images, label="cross-phase")

    rows = []
    decisions = {}
    for threshold in THRESHOLDS:
        fairms = FairMS(zoo, distance_threshold=threshold)
        same = not fairms.should_train_from_scratch(same_phase)
        cross = not fairms.should_train_from_scratch(cross_phase)
        decisions[threshold] = (same, cross)
        rows.append((
            threshold,
            fairms.recommend(same_phase).distance,
            "fine-tune" if same else "scratch",
            fairms.recommend(cross_phase).distance,
            "fine-tune" if cross else "scratch",
        ))

    print_table(
        "Ablation — retrain-from-scratch decision vs JSD distance threshold",
        ["threshold", "same_phase_jsd", "same_phase_decision",
         "cross_phase_jsd", "cross_phase_decision"],
        rows, sink=report_sink,
    )

    # Shape checks: a permissive threshold reuses models for everything, a very
    # strict one reuses nothing, and intermediate thresholds separate the phases.
    assert decisions[THRESHOLDS[-1]] == (True, True)
    assert decisions[THRESHOLDS[0]][1] is False
    assert any(same and not cross for same, cross in decisions.values()), (
        "expected some threshold to accept same-phase data but reject cross-phase data"
    )

    fairms = FairMS(zoo, distance_threshold=0.2)
    benchmark(lambda: fairms.should_train_from_scratch(cross_phase))
