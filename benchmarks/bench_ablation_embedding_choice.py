"""Ablation — embedding choice for Bragg peaks (Section IV, "An example of failure").

The paper initially used an autoencoder embedding for Bragg peaks and found it
over-sensitive to pixel-wise differences: a peak and its rotation are
physically identical but land far apart in reconstruction space, which breaks
model indexing.  BYOL, trained with physics-inspired augmentations (rotations,
flips, noise), is largely invariant to them.

This ablation measures, for each embedder, the ratio between (a) the embedding
distance from a peak to its rotated copy and (b) the typical distance between
distinct peaks.  Lower is better; BYOL should achieve a smaller ratio than the
autoencoder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import AutoencoderEmbedder, BYOLEmbedder, PCAEmbedder
from repro.labeling import PeakParameters, pseudo_voigt_2d
from repro.utils.rng import default_rng

from common import print_table


def _anisotropic_peaks(n: int, patch: int = 15, seed: int = 0) -> np.ndarray:
    """Bragg peaks with strongly unequal widths along the two axes.

    Rotating such a peak by 90 degrees changes its pixel values substantially
    while leaving the physics (the centre of mass) unchanged — exactly the
    case where a reconstruction-based embedding separates physically identical
    peaks and an augmentation-invariant one should not.
    """
    rng = default_rng(seed)
    images = np.empty((n, 1, patch, patch))
    for i in range(n):
        params = PeakParameters(
            center_row=float(rng.uniform(5, 9)),
            center_col=float(rng.uniform(5, 9)),
            amplitude=float(rng.uniform(0.6, 1.0)),
            sigma_row=float(rng.uniform(0.8, 1.2)),
            sigma_col=float(rng.uniform(3.0, 4.0)),
            eta=float(rng.uniform(0.2, 0.8)),
        )
        clean = pseudo_voigt_2d((patch, patch), params)
        images[i, 0] = clean + 0.01 * rng.standard_normal((patch, patch))
    return images


def _rotation_sensitivity(embedder, images: np.ndarray) -> float:
    """Mean distance(peak, rot90(peak)) / mean distance(peak, other peaks)."""
    z = embedder.transform(images)
    rotated = np.rot90(images, k=1, axes=(-2, -1)).copy()
    z_rot = embedder.transform(rotated)
    d_rot = np.linalg.norm(z - z_rot, axis=1).mean()
    centroid = z.mean(axis=0)
    d_spread = np.linalg.norm(z - centroid, axis=1).mean()
    return float(d_rot / max(d_spread, 1e-12))


@pytest.mark.figure("ablation-embedding")
def test_ablation_embedding_choice_for_bragg_peaks(benchmark, report_sink):
    seed = 0
    images = _anisotropic_peaks(240, seed=seed)

    embedders = {
        "autoencoder": AutoencoderEmbedder(embedding_dim=8, hidden=64, epochs=15, seed=seed),
        # BYOL needs enough optimisation to learn the augmentation invariance;
        # a faster EMA (0.95) and a few more epochs keep this CPU-cheap.
        "byol": BYOLEmbedder(embedding_dim=8, hidden=64, epochs=40, lr=3e-3,
                             ema_decay=0.95, seed=seed),
        "pca": PCAEmbedder(embedding_dim=8),
    }
    rows = []
    sensitivities = {}
    for name, embedder in embedders.items():
        embedder.fit(images)
        sens = _rotation_sensitivity(embedder, images)
        sensitivities[name] = sens
        rows.append((name, sens))

    print_table(
        "Ablation — rotation sensitivity of Bragg-peak embeddings "
        "(distance to rotated copy / spread between peaks; lower is better)",
        ["embedder", "rotation_sensitivity"],
        rows, sink=report_sink,
    )

    # The paper's conclusion: the augmentation-invariant BYOL embedding is less
    # sensitive to physically meaningless rotations than the autoencoder.
    assert sensitivities["byol"] < sensitivities["autoencoder"]

    benchmark(lambda: embedders["byol"].transform(images[:64]))
