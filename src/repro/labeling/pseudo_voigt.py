"""Pseudo-Voigt peak profiles.

The pseudo-Voigt function is the standard analytic approximation to the Voigt
profile (a Gaussian convolved with a Lorentzian) used to model diffraction
peaks: a linear mixture ``eta * Lorentzian + (1 - eta) * Gaussian``.  MIDAS
fits this profile to every peak in a HEDM frame to obtain sub-pixel centre of
mass coordinates — the labels the paper's BraggNN learns to predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.errors import ValidationError


@dataclass(frozen=True)
class PeakParameters:
    """Parameters of a single 2-D pseudo-Voigt peak inside a patch.

    Attributes
    ----------
    center_row, center_col:
        Peak centre in pixel coordinates (sub-pixel precision), relative to
        the patch origin.
    amplitude:
        Peak height above background.
    sigma_row, sigma_col:
        Gaussian widths along the two axes (pixels).
    eta:
        Lorentzian mixing fraction in [0, 1].
    background:
        Constant background level.
    """

    center_row: float
    center_col: float
    amplitude: float = 1.0
    sigma_row: float = 2.0
    sigma_col: float = 2.0
    eta: float = 0.5
    background: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitude <= 0:
            raise ValidationError("amplitude must be positive")
        if self.sigma_row <= 0 or self.sigma_col <= 0:
            raise ValidationError("sigma values must be positive")
        if not 0.0 <= self.eta <= 1.0:
            raise ValidationError("eta must lie in [0, 1]")

    @property
    def center(self) -> Tuple[float, float]:
        return (self.center_row, self.center_col)

    def as_vector(self) -> np.ndarray:
        return np.array(
            [
                self.center_row,
                self.center_col,
                self.amplitude,
                self.sigma_row,
                self.sigma_col,
                self.eta,
                self.background,
            ]
        )

    @staticmethod
    def from_vector(v: np.ndarray) -> "PeakParameters":
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.size != 7:
            raise ValidationError("parameter vector must have 7 entries")
        return PeakParameters(*[float(x) for x in v])


def pseudo_voigt_1d(x: np.ndarray, center: float, amplitude: float, sigma: float, eta: float) -> np.ndarray:
    """1-D pseudo-Voigt profile evaluated at positions ``x``."""
    if sigma <= 0:
        raise ValidationError("sigma must be positive")
    if not 0.0 <= eta <= 1.0:
        raise ValidationError("eta must lie in [0, 1]")
    x = np.asarray(x, dtype=np.float64)
    d = (x - center) / sigma
    gauss = np.exp(-0.5 * d**2)
    lorentz = 1.0 / (1.0 + d**2)
    return amplitude * (eta * lorentz + (1.0 - eta) * gauss)


def pseudo_voigt_2d(shape: Tuple[int, int], params: PeakParameters) -> np.ndarray:
    """Render a 2-D pseudo-Voigt peak on a ``shape = (rows, cols)`` grid.

    The profile is separable-like in the squared normalised distance
    ``d2 = ((r - r0)/sr)^2 + ((c - c0)/sc)^2`` with the same Gaussian/
    Lorentzian mixture as the 1-D form, plus a constant background — the
    functional form MIDAS fits to HEDM peaks.
    """
    rows, cols = shape
    if rows <= 0 or cols <= 0:
        raise ValidationError("shape must be positive")
    r = np.arange(rows, dtype=np.float64)[:, None]
    c = np.arange(cols, dtype=np.float64)[None, :]
    d2 = ((r - params.center_row) / params.sigma_row) ** 2 + (
        (c - params.center_col) / params.sigma_col
    ) ** 2
    gauss = np.exp(-0.5 * d2)
    lorentz = 1.0 / (1.0 + d2)
    return params.background + params.amplitude * (
        params.eta * lorentz + (1.0 - params.eta) * gauss
    )
