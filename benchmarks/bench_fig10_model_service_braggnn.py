"""Fig. 10 — prediction error vs dataset distance (JSD), BraggNN.

For each of several test datasets, every Zoo model is applied to the test data
and its prediction error plotted against the JSD between the test dataset's
cluster distribution and the model's training-data distribution.  The paper's
claim: error and distance are positively correlated, so ranking by JSD finds
low-error foundation models without running any inference.

The BraggNN variation is bimodal (two experiment phases), which is why the
scatter is not perfectly monotone in the paper — the same structure appears
here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.stats import correlation

from common import bragg_experiment, braggnn_error, build_braggnn_zoo, fitted_bragg_fairds, print_table

TEST_SCANS = (4, 9, 14, 19)


@pytest.mark.figure("fig10")
def test_fig10_error_vs_distance_braggnn(benchmark, report_sink):
    seed = 0
    experiment = bragg_experiment(n_scans=22, change_at=11, peaks_per_scan=100, seed=seed)
    fairds = fitted_bragg_fairds(experiment, scans=[0, 1, 2, 11, 12, 13], n_clusters=15, seed=seed)
    # Zoo models trained on scan groups spanning both phases.
    zoo, fairms = build_braggnn_zoo(
        experiment, fairds,
        scan_groups=[(0, 1), (2, 3), (5, 6), (11, 12), (13, 14), (16, 17)],
        epochs=10, seed=seed,
    )

    rows = []
    correlations = []
    for test_scan in TEST_SCANS:
        scan = experiment.scan(test_scan)
        test_dist = fairds.dataset_distribution(scan.images, label=f"scan{test_scan}")
        distances, errors = [], []
        for rec in fairms.rank(test_dist):
            model = fairms.load(rec)
            err = braggnn_error(model, scan.images, scan.centers)
            distances.append(rec.distance)
            errors.append(err)
            rows.append((test_scan, rec.record.name, rec.distance, err))
        correlations.append(correlation(distances, errors))

    print_table("Fig. 10 — BraggNN: prediction error vs JSD distance (4 test datasets)",
                ["test_scan", "zoo_model", "jsd_distance", "error_px"], rows, sink=report_sink)
    print(f"per-dataset correlation(error, distance): {[round(c, 3) for c in correlations]}")

    # Shape check: on average the correlation is positive (smaller distance ->
    # smaller error), as the paper argues despite the bimodal variation.
    assert np.mean(correlations) > 0.2

    # Benchmark target: ranking the Zoo for one test dataset (no inference needed).
    scan = experiment.scan(TEST_SCANS[0])
    dist = fairds.dataset_distribution(scan.images)
    benchmark(lambda: fairms.rank(dist))
