"""Light-weight caching primitives.

The fairDS user plane sees the same samples over and over — repeated lookups
on a drifting stream, re-submitted datasets, monitoring probes — and the
embedding model is by far the most expensive part of answering them.  An LRU
cache keyed on *content digests* of the raw sample bytes lets every service
layer skip the embedder for samples it has already seen, without trusting
object identity or array ids.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

from repro.utils.errors import ConfigurationError


def array_digest(array: np.ndarray) -> bytes:
    """Content digest of one array — dtype- and shape-aware.

    Two arrays get the same digest iff they have equal dtype, shape and
    C-order bytes, so a float32 copy or a reshaped view never aliases the
    original's cache entry.
    """
    arr = np.ascontiguousarray(array)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
    h.update(arr.tobytes())
    return h.digest()


def row_digests(batch: np.ndarray) -> List[bytes]:
    """Per-sample digests of a batch: one digest per leading-axis slice.

    Equivalent to ``[array_digest(row) for row in batch]`` but hot-path
    cheap: the dtype/shape preamble is encoded once for the whole batch and
    each row is hashed in a single one-shot call over its contiguous bytes.
    """
    batch = np.asarray(batch)
    if batch.ndim == 0:
        raise ConfigurationError("cannot digest a 0-d array as a batch")
    batch = np.ascontiguousarray(batch)
    # Matches array_digest's update stream: dtype bytes, then the per-row
    # shape, then the row's C-order bytes (blake2b streams concatenate).
    prefix = str(batch.dtype).encode() + np.asarray(batch.shape[1:], dtype=np.int64).tobytes()
    return [
        hashlib.blake2b(prefix + row.tobytes(), digest_size=16).digest() for row in batch
    ]


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    ``maxsize == 0`` is a valid always-empty cache (every ``get`` misses and
    ``put`` is a no-op), which callers use as the "caching disabled" setting.
    Thread-safe: plane functions run on an executor's worker threads, so
    concurrent lookups share one cache.
    """

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ConfigurationError("maxsize must be non-negative")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Optional[Any] = None) -> Optional[Any]:
        """Return the cached value (marking it most-recently-used) or ``default``."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the least-recently-used overflow."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def info(self) -> Dict[str, float]:
        """Counters snapshot: size, maxsize, hits, misses, hit_rate."""
        with self._lock:
            size = len(self._data)
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
