"""K-means clustering with k-means++ initialisation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.rng import SeedLike, default_rng
from repro.utils.stats import pairwise_squared_distances


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K``.
    max_iter:
        Maximum Lloyd iterations.
    tol:
        Convergence threshold on the change of total within-cluster sum of
        squares between iterations.
    n_init:
        Number of independent restarts; the best (lowest inertia) is kept.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        n_init: int = 3,
        seed: SeedLike = 0,
    ):
        if n_clusters < 1:
            raise ValidationError("n_clusters must be >= 1")
        if max_iter < 1 or n_init < 1:
            raise ValidationError("max_iter and n_init must be >= 1")
        if tol < 0:
            raise ValidationError("tol must be non-negative")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.n_init = int(n_init)
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: int = 0

    # -- initialisation --------------------------------------------------------
    @staticmethod
    def _kmeanspp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        n = x.shape[0]
        centers = np.empty((k, x.shape[1]), dtype=np.float64)
        centers[0] = x[rng.integers(0, n)]
        closest_d2 = pairwise_squared_distances(x, centers[:1])[:, 0]
        for i in range(1, k):
            total = closest_d2.sum()
            if total <= 0:
                centers[i] = x[rng.integers(0, n)]
            else:
                probs = closest_d2 / total
                centers[i] = x[rng.choice(n, p=probs)]
            d2_new = pairwise_squared_distances(x, centers[i : i + 1])[:, 0]
            np.minimum(closest_d2, d2_new, out=closest_d2)
        return centers

    def _single_run(self, x: np.ndarray, rng: np.random.Generator):
        centers = self._kmeanspp_init(x, self.n_clusters, rng)
        prev_inertia = np.inf
        labels = np.zeros(x.shape[0], dtype=int)
        for iteration in range(1, self.max_iter + 1):
            d2 = pairwise_squared_distances(x, centers)
            labels = np.argmin(d2, axis=1)
            inertia = float(d2[np.arange(x.shape[0]), labels].sum())
            # Update step (vectorised accumulate per cluster).
            for k in range(self.n_clusters):
                members = x[labels == k]
                if members.size:
                    centers[k] = members.mean(axis=0)
                else:
                    # Re-seed empty clusters at the point farthest from its centre.
                    farthest = np.argmax(d2.min(axis=1))
                    centers[k] = x[farthest]
            if abs(prev_inertia - inertia) <= self.tol:
                return centers, labels, inertia, iteration
            prev_inertia = inertia
        return centers, labels, prev_inertia, self.max_iter

    # -- public API ---------------------------------------------------------------
    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValidationError("expected 2-D input (n_samples, n_features)")
        if x.shape[0] < self.n_clusters:
            raise ValidationError(
                f"need at least n_clusters={self.n_clusters} samples, got {x.shape[0]}"
            )
        rng = default_rng(self.seed)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(x, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia, n_iter)
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign each sample to its nearest cluster centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.cluster_centers_.shape[1]:
            raise ValidationError(
                f"expected {self.cluster_centers_.shape[1]} features, got {x.shape[1]}"
            )
        return np.argmin(pairwise_squared_distances(x, self.cluster_centers_), axis=1)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).labels_

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Distances from each sample to every cluster centre."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.transform() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return np.sqrt(pairwise_squared_distances(x, self.cluster_centers_))

    def cluster_pdf(self, x: np.ndarray) -> np.ndarray:
        """Cluster probability distribution of a dataset (fraction per cluster).

        This is the dataset fingerprint fairDS computes for an input dataset
        and fairMS stores for every model's training dataset.
        """
        labels = self.predict(x)
        counts = np.bincount(labels, minlength=self.n_clusters).astype(np.float64)
        return counts / counts.sum()
