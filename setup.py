"""Packaging for the fairDMS reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so legacy editable
installs (``python setup.py develop``) keep working in offline environments
where the ``wheel`` package (needed for PEP 660 editable wheels) is
unavailable.  The library itself only needs ``numpy``; ``src/`` on
``PYTHONPATH`` works without installing at all.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "From-scratch reproduction of fairDMS: rapid model training by data "
        "and model reuse (IEEE CLUSTER 2022)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # The py.typed marker opts downstream type-checkers into the package's
    # inline annotations (PEP 561).
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.__main__:main"]},
)
