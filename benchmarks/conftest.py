"""Shared configuration for the benchmark harness.

Every ``bench_figXX_*.py`` module regenerates the rows/series of one figure of
the paper and prints them with the helpers below, so running

    pytest benchmarks/ --benchmark-only -s

produces a textual version of the paper's evaluation section.  Wall-clock
numbers differ from the paper (CPU NumPy here vs V100 + clusters there); the
*shape* of each comparison is what is reproduced.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): which paper figure a bench reproduces")


@pytest.fixture(scope="session")
def report_sink():
    """Collects printed tables so a summary can be emitted at the end of the session."""
    lines = []
    yield lines
    if lines:
        print("\n" + "=" * 78)
        print("Benchmark harness summary (one block per reproduced figure)")
        print("=" * 78)
        for line in lines:
            print(line)
