"""Tests for the LRU cache and array content digests."""

import numpy as np
import pytest

from repro.utils.cache import LRUCache, array_digest, row_digests
from repro.utils.errors import ConfigurationError


def test_lru_eviction_order():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a" -> "b" is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert len(cache) == 2


def test_lru_counters_and_clear():
    cache = LRUCache(4)
    assert cache.get("missing") is None
    cache.put("x", 42)
    assert cache.get("x") == 42
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == pytest.approx(0.5)
    info = cache.info()
    assert info["size"] == 1 and info["maxsize"] == 4
    cache.clear()
    assert len(cache) == 0 and "x" not in cache


def test_lru_maxsize_zero_disables_storage():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None


def test_lru_negative_maxsize_rejected():
    with pytest.raises(ConfigurationError):
        LRUCache(-1)


def test_lru_safe_under_concurrent_get_put():
    import threading

    cache = LRUCache(16)  # small enough that evictions race with gets
    errors = []

    def hammer(offset):
        try:
            for i in range(2000):
                key = (i + offset) % 48
                cache.put(key, i)
                cache.get(key)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(o,)) for o in (0, 7, 19, 31)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(20)
    assert not errors
    assert len(cache) <= 16


def test_array_digest_sensitive_to_content_shape_dtype(rng):
    a = rng.normal(size=(4, 4))
    assert array_digest(a) == array_digest(a.copy())
    assert array_digest(a) != array_digest(a.reshape(2, 8))
    assert array_digest(a) != array_digest(a.astype(np.float32))
    b = a.copy()
    b[0, 0] += 1e-12
    assert array_digest(a) != array_digest(b)


def test_row_digests_match_per_row_digest(rng):
    batch = rng.normal(size=(5, 3, 3))
    digests = row_digests(batch)
    assert len(digests) == 5
    assert digests == [array_digest(row) for row in batch]
    assert len(set(digests)) == 5
    with pytest.raises(ConfigurationError):
        row_digests(np.float64(3.0))
