#!/usr/bin/env python
"""Storage-backend study: document DB (Blosc/Pickle codecs) vs direct file reads.

Miniature version of the paper's Figs. 6-8: train a small denoiser on
tomography slices whose samples are served from three different storage
configurations, and report per-epoch times and per-batch I/O latency as the
number of DataLoader workers varies.

Run with:  python examples/storage_backends.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.dataio import ArrayDataset, DataLoader, DocumentDBDataset, FileStoreDataset
from repro.datasets import DriftSchedule, TomographyDataset
from repro.storage import create_storage_backend


def _build_backends(noisy, clean):
    """Return {name: Dataset} for the three storage configurations.

    Backends are selected by name through the storage registry — the same
    mechanism a deployment would use to pick its stack from configuration.
    """
    flat_labels = clean.reshape(clean.shape[0], -1)

    backends = {}
    for codec_name in ("blosc", "pickle"):
        db = create_storage_backend(
            "documentdb",
            codec=codec_name,
            network={"latency_s": 0.0005, "bandwidth_bytes_per_s": 1.25e9},
        )
        coll = db.collection("tomo")
        coll.insert_many(
            [{"label": flat_labels[i].tolist()} for i in range(noisy.shape[0])],
            [noisy[i] for i in range(noisy.shape[0])],
        )
        backends[codec_name] = DocumentDBDataset(coll)

    store = create_storage_backend("file")
    store.write_many([noisy[i] for i in range(noisy.shape[0])])
    backends["nfs"] = FileStoreDataset(store, flat_labels)
    return backends, store


def main() -> None:
    schedule = DriftSchedule(n_scans=2)
    data = TomographyDataset(schedule, slices_per_scan=48, image_size=64, seed=0)
    noisy, clean = data.stacked([0, 1])
    print(f"dataset: {noisy.shape[0]} slices of {noisy.shape[-1]}x{noisy.shape[-1]}")

    backends, store = _build_backends(noisy, clean)
    try:
        print("\nPer-batch fetch latency vs number of DataLoader workers (batch=16):")
        print("backend   " + "".join(f"  w={w:<3d}" for w in (0, 2, 4, 8)))
        for name, dataset in backends.items():
            row = []
            for workers in (0, 2, 4, 8):
                loader = DataLoader(dataset, batch_size=16, num_workers=workers)
                start = time.perf_counter()
                n_batches = sum(1 for _ in loader)
                elapsed = time.perf_counter() - start
                row.append(1e3 * elapsed / n_batches)
            print(f"{name:9s} " + "".join(f" {ms:6.1f}" for ms in row) + "   [ms/batch]")

        print("\nEpoch time vs batch size (4 workers), including a dummy compute step:")
        print("backend   " + "".join(f"  b={b:<4d}" for b in (8, 16, 32)))
        for name, dataset in backends.items():
            row = []
            for batch in (8, 16, 32):
                loader = DataLoader(dataset, batch_size=batch, num_workers=4)
                start = time.perf_counter()
                for bx, _ in loader:
                    # Stand-in for the forward/backward pass: one big reduction.
                    np.square(bx).mean()
                row.append(time.perf_counter() - start)
            print(f"{name:9s} " + "".join(f" {s:6.2f}" for s in row) + "   [s/epoch]")
    finally:
        store.cleanup()


if __name__ == "__main__":
    main()
