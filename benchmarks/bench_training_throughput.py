"""Training + MC-dropout throughput — vectorized float32 engine vs pre-PR path.

The paper's monitor → trigger → retrain loop spends its compute budget in two
places: (re)training application models and probing their certainty with MC
dropout.  This benchmark pits the vectorized float32 compute plane against
the frozen pre-optimisation reference path
(:mod:`repro.nn._reference`: float64 everywhere, index-gather im2col,
``np.add.at`` col2im, per-parameter dict-keyed Adam, one forward pass per MC
sample) on a BraggNN-scale convolutional model.

Acceptance bars (asserted in full mode):

* **>= 3x** epoch throughput for training,
* **>= 4x** certainty-probe throughput for MC dropout,
* the float32 final training loss matches the float64 baseline within
  ``LOSS_RTOL`` (both runs share seeds, so shuffle order and dropout masks
  are identical draws).

Timings are interleaved best-of-``repeats`` pairs so CPU frequency drift
hits both variants equally.  Results land in
``BENCH_training_throughput.json`` (see ``common.write_bench_json``).

Run standalone:  python benchmarks/bench_training_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict

import numpy as np

from repro.models import build_braggnn
from repro.nn import Trainer, TrainingConfig, mc_dropout_predict
from repro.nn._reference import LoopedAdam, legacy_variant, looped_mc_dropout_predict
from repro.utils.rng import default_rng

from common import print_table, write_bench_json

#: Documented tolerance for float32-vs-float64 final-train-loss agreement.
LOSS_RTOL = 0.02

FULL = dict(
    n_train=1024, width=8, epochs=3, batch_size=64, repeats=3,
    probe_batch=256, mc_samples=32, probe_repeats=3,
    assert_train_speedup=3.0, assert_mc_speedup=4.0,
)
SMOKE = dict(
    n_train=256, width=4, epochs=2, batch_size=64, repeats=2,
    probe_batch=64, mc_samples=16, probe_repeats=2,
    assert_train_speedup=None, assert_mc_speedup=None,
)


def _bragg_like_data(n: int, seed: int = 0):
    """Synthetic Bragg-peak patches: a noisy Gaussian blob per 15x15 patch."""
    rng = default_rng(seed)
    centers = rng.uniform(4.0, 10.0, size=(n, 2))
    yy, xx = np.mgrid[0:15, 0:15]
    blobs = np.exp(
        -((yy[None] - centers[:, 0, None, None]) ** 2 + (xx[None] - centers[:, 1, None, None]) ** 2)
        / 4.0
    )
    x = (blobs + 0.05 * rng.normal(size=(n, 15, 15)))[:, None, :, :]
    y = centers / 15.0
    return x, y


def _build_fast(cfg, seed=0):
    return build_braggnn(width=cfg["width"], seed=seed)


def _build_legacy(cfg, seed=0):
    return legacy_variant(build_braggnn(width=cfg["width"], seed=seed))


def _fit_once(model, data, cfg, legacy: bool):
    factory = (lambda p, lr: LoopedAdam(p, lr=lr)) if legacy else None
    trainer = Trainer(model, optimizer_factory=factory)
    config = TrainingConfig(
        epochs=cfg["epochs"], batch_size=cfg["batch_size"], lr=2e-3, seed=0
    )
    history = trainer.fit(data, config=config)
    # Steady-state epoch time: drop the first epoch, which pays one-off
    # costs (workspace allocation for the fast engine, cache warm-up).
    steady = history.epoch_time[1:] or history.epoch_time
    return history, sum(steady) / len(steady)


def _bench_training(cfg, data) -> Dict[str, float]:
    """Interleaved best-of-N steady-state epoch time, fresh models per rep."""
    best_legacy, best_fast = float("inf"), float("inf")
    final_loss_legacy = final_loss_fast = float("nan")
    for rep in range(cfg["repeats"]):
        hist_l, t_l = _fit_once(_build_legacy(cfg), data, cfg, legacy=True)
        hist_f, t_f = _fit_once(_build_fast(cfg), data, cfg, legacy=False)
        best_legacy, best_fast = min(best_legacy, t_l), min(best_fast, t_f)
        if rep == 0:
            final_loss_legacy = hist_l.train_loss[-1]
            final_loss_fast = hist_f.train_loss[-1]
    return {
        "train_epochs_per_s_legacy": 1.0 / best_legacy,
        "train_epochs_per_s_fast": 1.0 / best_fast,
        "train_speedup": best_legacy / best_fast,
        "final_train_loss_legacy_float64": final_loss_legacy,
        "final_train_loss_fast_float32": final_loss_fast,
        "final_train_loss_rel_diff": abs(final_loss_fast - final_loss_legacy)
        / max(abs(final_loss_legacy), 1e-12),
    }


def _time_probe(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_mc_dropout(cfg, data) -> Dict[str, float]:
    x_probe = data[0][: cfg["probe_batch"]]
    fast = _build_fast(cfg, seed=1)
    legacy = _build_legacy(cfg, seed=1)
    n = cfg["mc_samples"]
    best_legacy = _time_probe(
        lambda: looped_mc_dropout_predict(legacy, x_probe, n_samples=n), cfg["probe_repeats"]
    )
    best_fast = _time_probe(
        lambda: mc_dropout_predict(fast, x_probe, n_samples=n), cfg["probe_repeats"]
    )
    return {
        "mc_probes_per_s_legacy": 1.0 / best_legacy,
        "mc_probes_per_s_fast": 1.0 / best_fast,
        "mc_speedup": best_legacy / best_fast,
    }


def run(smoke: bool = False, report_sink=None) -> Dict[str, float]:
    cfg = SMOKE if smoke else FULL
    data = _bragg_like_data(cfg["n_train"])

    train_metrics = _bench_training(cfg, data)
    mc_metrics = _bench_mc_dropout(cfg, data)
    metrics = {**train_metrics, **mc_metrics}

    print_table(
        "Training throughput: float32 engine vs pre-PR float64 path",
        ["metric", "legacy", "fast", "speedup"],
        [
            [
                "epochs/s",
                train_metrics["train_epochs_per_s_legacy"],
                train_metrics["train_epochs_per_s_fast"],
                train_metrics["train_speedup"],
            ],
            [
                "MC probes/s",
                mc_metrics["mc_probes_per_s_legacy"],
                mc_metrics["mc_probes_per_s_fast"],
                mc_metrics["mc_speedup"],
            ],
            [
                "final loss",
                train_metrics["final_train_loss_legacy_float64"],
                train_metrics["final_train_loss_fast_float32"],
                train_metrics["final_train_loss_rel_diff"],
            ],
        ],
        sink=report_sink,
    )

    write_bench_json(
        "training_throughput",
        metrics,
        params={**cfg, "loss_rtol": LOSS_RTOL, "smoke": smoke},
    )

    # Numerical equivalence holds at every scale, smoke included.
    assert metrics["final_train_loss_rel_diff"] < LOSS_RTOL, (
        f"float32 final loss diverged from float64 baseline: "
        f"rel diff {metrics['final_train_loss_rel_diff']:.4f} >= {LOSS_RTOL}"
    )
    if cfg["assert_train_speedup"] is not None:
        assert metrics["train_speedup"] >= cfg["assert_train_speedup"], (
            f"training speedup {metrics['train_speedup']:.2f}x below "
            f"{cfg['assert_train_speedup']}x bar"
        )
        assert metrics["mc_speedup"] >= cfg["assert_mc_speedup"], (
            f"MC-dropout speedup {metrics['mc_speedup']:.2f}x below "
            f"{cfg['assert_mc_speedup']}x bar"
        )
    else:
        assert metrics["train_speedup"] > 0.5, "smoke sanity: training speedup collapsed"
        assert metrics["mc_speedup"] > 0.5, "smoke sanity: MC speedup collapsed"
    return metrics


def test_training_throughput(report_sink):
    run(smoke=False, report_sink=report_sink)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI smoke runs (no 3x/4x assertions)")
    args = parser.parse_args()
    run(smoke=args.smoke)
