"""A small typed flow engine (Globus Flows stand-in)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.utils.errors import ConfigurationError


@dataclass
class FlowStep:
    """A named step of a flow.

    ``fn`` receives the shared flow context dict and returns a value stored
    under ``output_key`` (when given).  ``retries`` re-runs a failed step
    before giving up.
    """

    name: str
    fn: Callable[[Dict[str, Any]], Any]
    output_key: Optional[str] = None
    retries: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("flow steps must be named")
        if self.retries < 0:
            raise ConfigurationError("retries must be non-negative")


@dataclass
class FlowResult:
    """Outcome of a flow run: final context, per-step timings, and status."""

    context: Dict[str, Any]
    step_times: Dict[str, float] = field(default_factory=dict)
    step_attempts: Dict[str, int] = field(default_factory=dict)
    succeeded: bool = True
    failed_step: Optional[str] = None
    error: Optional[BaseException] = None

    @property
    def total_time(self) -> float:
        return float(sum(self.step_times.values()))


class Flow:
    """An ordered sequence of :class:`FlowStep` executed with a shared context."""

    def __init__(self, name: str, steps: Optional[List[FlowStep]] = None):
        if not name:
            raise ConfigurationError("flow must have a name")
        self.name = name
        self.steps: List[FlowStep] = list(steps or [])

    def add_step(
        self,
        name: str,
        fn: Callable[[Dict[str, Any]], Any],
        output_key: Optional[str] = None,
        retries: int = 0,
    ) -> "Flow":
        """Append a step; returns ``self`` for chaining."""
        self.steps.append(FlowStep(name=name, fn=fn, output_key=output_key, retries=retries))
        return self

    def run(self, initial_context: Optional[Dict[str, Any]] = None, raise_on_error: bool = False) -> FlowResult:
        """Execute all steps in order.

        On failure the flow stops; the partial context and the failing step are
        recorded in the result (or the exception re-raised when
        ``raise_on_error`` is set).
        """
        context: Dict[str, Any] = dict(initial_context or {})
        result = FlowResult(context=context)
        for step in self.steps:
            attempts = 0
            start = time.perf_counter()
            while True:
                attempts += 1
                try:
                    value = step.fn(context)
                    break
                except Exception as exc:
                    if attempts > step.retries:
                        result.step_times[step.name] = time.perf_counter() - start
                        result.step_attempts[step.name] = attempts
                        result.succeeded = False
                        result.failed_step = step.name
                        result.error = exc
                        if raise_on_error:
                            raise
                        return result
            result.step_times[step.name] = time.perf_counter() - start
            result.step_attempts[step.name] = attempts
            if step.output_key is not None:
                context[step.output_key] = value
        return result
