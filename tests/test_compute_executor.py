"""Tests for the repro.compute Executor seam (inline / thread / process).

Covers the satellite checklist explicitly: map parity across backends,
chunking semantics, typed error propagation out of workers, worker crashes
mid-dispatch surfacing as ``WorkerCrashError`` without deadlocking, and
shared-memory segments never outliving the executor — under normal exit,
exception unwinding, and SIGKILLed workers.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.api.registry import create_component
from repro.compute import (
    ArraySpec,
    InlineExecutor,
    ProcessExecutor,
    ShmArena,
    ThreadExecutor,
    arena_from_arrays,
    attach_array,
    chunk_items,
)
from repro.observability.metrics import default_registry
from repro.utils.errors import ComputeError, ConfigurationError, WorkerCrashError

ALL_KINDS = ["inline", "thread", "process"]

_has_dev_shm = Path("/dev/shm").is_dir()


def _shm_count() -> int:
    return len(list(Path("/dev/shm").iterdir()))


def _make(kind: str, workers: int = 2):
    return create_component("executor", kind, max_workers=workers)


# -- module-level task functions (the process backend pickles by reference) ---
def _double(x):
    return 2 * x


def _sum_chunk(chunk):
    return sum(chunk)


def _boom_on_three(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


def _exit_hard(x):
    if x == 1:
        os._exit(13)
    return x


def _setup_state(ctx, base):
    return base + ctx.worker_id


def _ctx_echo(ctx, item):
    return (ctx.worker_id, ctx.state, item)


def _read_cell(ctx, i):
    return float(ctx.arrays["data"][i])


def _write_slot(ctx, slot):
    ctx.arrays["out"][slot] = slot + 1.0
    return slot


def _session_exit_hard(ctx, item):
    os._exit(13)


# ---------------------------------------------------------------------------------
# map parity across backends
# ---------------------------------------------------------------------------------
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_map_preserves_order_across_backends(kind):
    with _make(kind) as ex:
        assert ex.map(_double, list(range(17))) == [2 * i for i in range(17)]


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_map_chunked_matches_thread_map_rule(kind):
    items = list(range(9))
    with _make(kind, workers=4) as ex:
        results = ex.map(_sum_chunk, items, chunk=True)
    # ceil(9/4) = 3 per chunk -> [0+1+2, 3+4+5, 6+7+8]
    assert results == [3, 12, 21]


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_map_empty_items(kind):
    with _make(kind) as ex:
        assert ex.map(_double, []) == []


def test_chunk_items_ceil_division():
    assert chunk_items(list(range(9)), 4) == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
    assert chunk_items([1], 4) == [[1]]


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_task_errors_propagate_with_original_type(kind):
    with _make(kind) as ex:
        with pytest.raises(ValueError, match="boom on 3"):
            ex.map(_boom_on_three, list(range(6)))
        # The executor survives a task error; the next fan-out is clean.
        assert ex.map(_double, [1, 2]) == [2, 4]


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_closed_executor_rejects_work(kind):
    ex = _make(kind)
    ex.map(_double, [1])
    ex.close()
    ex.close()  # idempotent
    with pytest.raises(ComputeError, match="closed"):
        ex.map(_double, [1])


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_stats_and_metrics_accumulate(kind):
    counter = default_registry().counter(
        "repro_executor_tasks_total", "Tasks completed by the compute plane", ("kind",)
    ).labels(kind=kind)
    before = counter.value
    with _make(kind) as ex:
        ex.map(_double, list(range(5)))
        stats = ex.stats
    assert stats["kind"] == kind and stats["max_workers"] == 2
    assert stats["tasks_completed"] == 5
    assert stats["busy_seconds"] >= 0.0
    assert counter.value == before + 5


def test_max_workers_validated():
    with pytest.raises(ConfigurationError, match="max_workers"):
        InlineExecutor(max_workers=0)
    with pytest.raises(ConfigurationError, match="max_workers"):
        ThreadExecutor(max_workers=-2)


def test_registry_lists_executor_backends():
    from repro.api.registry import available_components

    assert set(available_components("executor")) == {"inline", "thread", "process"}


# ---------------------------------------------------------------------------------
# sessions: per-worker state + shared arrays
# ---------------------------------------------------------------------------------
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_session_state_is_per_worker(kind):
    with _make(kind, workers=2) as ex:
        with ex.open_session(setup=_setup_state, setup_args=(100,)) as session:
            results = session.map(_ctx_echo, list(range(8)))
    assert [item for _w, _s, item in results] == list(range(8))
    for worker_id, state, _item in results:
        assert state == 100 + worker_id


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_session_workers_see_shared_arrays(kind):
    data = np.arange(10, dtype=np.float64) * 1.5
    with _make(kind, workers=2) as ex:
        with ex.open_session(shared={"data": data}) as session:
            got = session.map(_read_cell, list(range(10)))
    assert got == list(data)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_session_worker_writes_land_in_parent_view(kind):
    out = np.zeros(6, dtype=np.float64)
    with _make(kind, workers=2) as ex:
        with ex.open_session(shared={"out": out}) as session:
            session.map(_write_slot, list(range(6)))
            # the parent reads through session.arrays: shm-backed for the
            # process backend, the very same ndarray for inline/thread.
            np.testing.assert_array_equal(
                session.arrays["out"], np.arange(1.0, 7.0)
            )


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_closed_session_rejects_map(kind):
    with _make(kind) as ex:
        session = ex.open_session()
        session.close()
        with pytest.raises(ComputeError, match="session is closed"):
            session.map(_ctx_echo, [1])


# ---------------------------------------------------------------------------------
# worker crashes: typed error, no deadlock, no leaked shm
# ---------------------------------------------------------------------------------
def test_worker_hard_exit_raises_worker_crash_error():
    with ProcessExecutor(max_workers=2) as ex:
        with pytest.raises(WorkerCrashError, match="exit code 13"):
            ex.map(_exit_hard, [0, 1])
        # the pool is torn down and unusable; close() is still clean.
        with pytest.raises(ComputeError, match="broken"):
            ex.map(_double, [1])


def test_sigkilled_worker_raises_worker_crash_error():
    ex = ProcessExecutor(max_workers=2)
    try:
        ex.map(_double, [1, 2])  # forces pool start
        os.kill(ex._procs[0].pid, signal.SIGKILL)
        with pytest.raises(WorkerCrashError):
            ex.map(_double, list(range(4)))
    finally:
        ex.close()


@pytest.mark.skipif(not _has_dev_shm, reason="requires /dev/shm")
def test_shm_released_on_normal_session_exit():
    before = _shm_count()
    with ProcessExecutor(max_workers=2) as ex:
        with ex.open_session(shared={"data": np.ones(128)}) as session:
            session.map(_read_cell, [0, 1])
        assert _shm_count() == before  # released at session close already
    assert _shm_count() == before


@pytest.mark.skipif(not _has_dev_shm, reason="requires /dev/shm")
def test_shm_released_when_exception_unwinds_session():
    before = _shm_count()
    with pytest.raises(RuntimeError, match="mid-session"):
        with ProcessExecutor(max_workers=2) as ex:
            with ex.open_session(shared={"data": np.ones(128)}):
                raise RuntimeError("mid-session")
    assert _shm_count() == before


@pytest.mark.skipif(not _has_dev_shm, reason="requires /dev/shm")
def test_shm_released_after_worker_sigkill():
    before = _shm_count()
    ex = ProcessExecutor(max_workers=2)
    try:
        session = ex.open_session(shared={"data": np.ones(128)})
        with pytest.raises(WorkerCrashError):
            session.map(_session_exit_hard, [0, 1])
    finally:
        ex.close()
    assert _shm_count() == before


def test_unpicklable_task_function_is_a_typed_error():
    with ProcessExecutor(max_workers=2) as ex:
        with pytest.raises(ComputeError, match="not picklable"):
            ex.map(lambda x: x, [1, 2])
        # decode-side failure does not kill the pool either
        assert ex.map(_double, [3]) == [6]


# ---------------------------------------------------------------------------------
# shm arena primitives
# ---------------------------------------------------------------------------------
@pytest.mark.skipif(not _has_dev_shm, reason="requires /dev/shm")
def test_arena_create_attach_and_close():
    before = _shm_count()
    arena = arena_from_arrays({"v": np.arange(4, dtype=np.float32)})
    try:
        spec = arena.specs()["v"]
        assert isinstance(spec, ArraySpec)
        shm, view = attach_array(spec)
        np.testing.assert_array_equal(view, np.arange(4, dtype=np.float32))
        view[0] = 9.0
        assert arena.array("v")[0] == 9.0
        shm.close()
    finally:
        arena.close()
        arena.close()  # idempotent
    assert _shm_count() == before
    with pytest.raises(ComputeError, match="is gone"):
        attach_array(spec)


def test_arena_rejects_use_after_close_and_duplicates():
    arena = ShmArena()
    try:
        arena.create("a", (2,), np.float64)
        with pytest.raises(ComputeError, match="already holds"):
            arena.create("a", (2,), np.float64)
    finally:
        arena.close()
    with pytest.raises(ComputeError, match="closed"):
        arena.create("b", (2,), np.float64)
