"""Unified observability plane: metrics registry, request tracing, exporters.

PRs 2–6 each grew a telemetry island — serving snapshots, trainer histories,
IVF scan counters, workflow step timings — with no shared vocabulary and no
way to follow one request across layers.  This package is the substrate they
all emit into:

* :mod:`repro.observability.metrics` — a thread-safe
  :class:`~repro.observability.metrics.MetricsRegistry` of ``Counter`` /
  ``Gauge`` / ``Histogram`` families with label sets; a process-global
  default (:func:`~repro.observability.metrics.default_registry`) plus
  injectable instances; Prometheus text exposition via
  :meth:`~repro.observability.metrics.MetricsRegistry.expose_text`.
* :mod:`repro.observability.tracing` — :class:`~repro.observability.tracing.Tracer`
  / :class:`~repro.observability.tracing.Span` with contextvar propagation,
  deterministic per-trace sampling, a bounded in-memory buffer, and the
  :func:`~repro.observability.tracing.trace_span` instrumentation point that
  is a no-op outside a sampled trace.
* :mod:`repro.observability.exporters` — the strict exposition parser used
  by the round-trip tests, JSON-lines dumps, and a stdlib HTTP endpoint
  (``repro observe --http``).

Metric naming scheme (all series the library emits):

====================================  =========  ======================================
series                                kind       emitted by
====================================  =========  ======================================
``repro_requests_total``              counter    serving telemetry (op, status labels)
``repro_request_latency_seconds``     histogram  serving telemetry (op)
``repro_batch_size``                  histogram  serving telemetry (op)
``repro_batch_wait_seconds``          histogram  serving telemetry (op)
``repro_queue_depth``                 gauge      serving telemetry (op)
``repro_serving_knob``                gauge      serving telemetry (knob)
``repro_index_scans_total``           counter    IVF index (queries answered)
``repro_index_partitions_probed_total``  counter IVF index
``repro_index_candidates_scanned_total`` counter IVF index
``repro_train_epochs_total``          counter    nn trainer
``repro_train_epoch_seconds``         histogram  nn trainer
``repro_train_loss``                  gauge      nn trainer (split label)
``repro_pipeline_steps_total``        counter    workflow pipeline (pipeline, status)
``repro_pipeline_step_seconds``       histogram  workflow pipeline (pipeline, step)
====================================  =========  ======================================
"""

from repro.observability.exporters import (
    ObservabilityHTTPServer,
    parse_prometheus_text,
    write_metrics_jsonl,
    write_metrics_text,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.observability.tracing import Span, Tracer, current_span, trace_span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityHTTPServer",
    "Span",
    "Tracer",
    "current_span",
    "default_registry",
    "parse_prometheus_text",
    "set_default_registry",
    "trace_span",
    "write_metrics_jsonl",
    "write_metrics_text",
]
