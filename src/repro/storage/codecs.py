"""Serialisation codecs for storing array samples in the document database.

The paper compares two MongoDB serialisation libraries — Pickle and Blosc —
against raw file reads from NFS.  Blosc is a multi-threaded compressing
serialiser; without the C library available offline we reproduce its cost
structure (compression on write, decompression on read, smaller payloads)
with zlib-compressed pickles.  The codec interface is deliberately tiny so
users can plug in their own.

Beyond the byte codecs, this module also hosts the lossy *vector* codec used
by the ANN fast path: :class:`ProductQuantizer` compresses residual vectors
to a few bytes each and supports asymmetric distance computation (ADC), the
scan kernel of :class:`repro.storage.ivf_index.IVFVectorIndex`'s compressed
inverted lists.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Dict, Tuple, Type

import numpy as np

from repro.utils.errors import ConfigurationError, NotFittedError, StorageError, ValidationError


class Codec:
    """Serialise/deserialise a Python object (usually an ndarray) to bytes."""

    #: Registry name.
    name: str = "base"

    def encode(self, obj: Any) -> bytes:
        raise NotImplementedError

    def decode(self, payload: bytes) -> Any:
        raise NotImplementedError


class PickleCodec(Codec):
    """Plain pickle: fast encode, moderate payload size."""

    name = "pickle"

    def encode(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, payload: bytes) -> Any:
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("PickleCodec.decode expects bytes")
        return pickle.loads(payload)


class CompressedCodec(Codec):
    """zlib-compressed pickle, standing in for Blosc.

    Compression shrinks the stored payload (and therefore simulated network
    transfer time) at the cost of extra CPU time on both encode and decode —
    exactly the trade-off the paper observes for Blosc vs Pickle vs NFS.
    """

    name = "blosc"

    def __init__(self, level: int = 3):
        if not 0 <= level <= 9:
            raise ConfigurationError("compression level must be in [0, 9]")
        self.level = int(level)

    def encode(self, obj: Any) -> bytes:
        return zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), self.level)

    def decode(self, payload: bytes) -> Any:
        if not isinstance(payload, (bytes, bytearray)):
            raise StorageError("CompressedCodec.decode expects bytes")
        try:
            return pickle.loads(zlib.decompress(payload))
        except zlib.error as exc:  # pragma: no cover - defensive
            raise StorageError(f"failed to decompress payload: {exc}") from exc


class RawArrayCodec(Codec):
    """Raw ndarray bytes + dtype/shape header; no pickling overhead.

    Only supports NumPy arrays; used for the "NFS" style path where samples
    are stored as flat binary.
    """

    name = "raw"

    def encode(self, obj: Any) -> bytes:
        arr = np.ascontiguousarray(obj)
        header = pickle.dumps((str(arr.dtype), arr.shape), protocol=pickle.HIGHEST_PROTOCOL)
        return len(header).to_bytes(4, "little") + header + arr.tobytes()

    def decode(self, payload: bytes) -> np.ndarray:
        if not isinstance(payload, (bytes, bytearray)) or len(payload) < 4:
            raise StorageError("RawArrayCodec.decode expects a framed byte payload")
        header_len = int.from_bytes(payload[:4], "little")
        dtype_str, shape = pickle.loads(payload[4 : 4 + header_len])
        data = np.frombuffer(payload[4 + header_len :], dtype=np.dtype(dtype_str))
        return data.reshape(shape).copy()


class ProductQuantizer:
    """Product quantisation of ``dim``-dimensional vectors into ``m`` bytes.

    The vector space is split into ``m`` contiguous subspaces of
    ``dim / m`` dimensions; each subspace gets its own codebook of
    ``2**bits`` centroids fitted with k-means, and a vector is encoded as the
    per-subspace centroid ids — ``m`` uint8 codes replacing ``dim`` floats.

    Queries never decode: :meth:`distance_tables` precomputes, per query, the
    squared distance from the query's sub-vector to every codebook centroid,
    and :meth:`adc` (asymmetric distance computation) scores a whole code
    matrix with ``m`` table gathers per query — no per-vector arithmetic.
    ADC distances are approximate (codebook quantisation error), which is why
    the IVF scan path re-ranks the top ADC candidates exactly.

    Unlike the byte codecs above, this codec maps vectors to code *arrays*
    (not byte strings), so it is not part of the ``get_codec`` registry.
    """

    def __init__(self, dim: int, m: int = 8, bits: int = 8, max_iter: int = 25,
                 seed: int = 0):
        if dim < 1:
            raise ConfigurationError("ProductQuantizer: dim must be >= 1")
        if m < 1 or dim % m != 0:
            raise ConfigurationError(
                f"ProductQuantizer: m must divide dim (got dim={dim}, m={m})"
            )
        if not 1 <= bits <= 8:
            raise ConfigurationError("ProductQuantizer: bits must be in [1, 8]")
        if max_iter < 1:
            raise ConfigurationError("ProductQuantizer: max_iter must be >= 1")
        self.dim = int(dim)
        self.m = int(m)
        self.bits = int(bits)
        self.ksub = 2 ** int(bits)
        self.dsub = self.dim // self.m
        self.max_iter = int(max_iter)
        self.seed = seed
        #: ``(m, k_eff, dsub)`` codebooks after :meth:`fit` (``k_eff <= ksub``
        #: when the training set is smaller than the codebook).
        self.codebooks: "np.ndarray | None" = None

    @property
    def is_fitted(self) -> bool:
        return self.codebooks is not None

    def _require_fitted(self, op: str) -> np.ndarray:
        if self.codebooks is None:
            raise NotFittedError(f"ProductQuantizer.{op}() requires fit() first")
        return self.codebooks

    def _check_vectors(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        return vectors

    def fit(self, vectors: np.ndarray) -> "ProductQuantizer":
        """Fit one k-means codebook per subspace on the training vectors."""
        from repro.clustering.kmeans import KMeans
        from repro.utils.rng import derive_seed

        vectors = self._check_vectors(vectors)
        n = vectors.shape[0]
        if n < 1:
            raise ValidationError("ProductQuantizer.fit() needs at least one vector")
        k_eff = min(self.ksub, n)
        codebooks = np.empty((self.m, k_eff, self.dsub), dtype=np.float64)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            km = KMeans(n_clusters=k_eff, max_iter=self.max_iter, n_init=1,
                        seed=derive_seed(self.seed, 7001, j))
            codebooks[j] = km.fit(sub).cluster_centers_
        self.codebooks = codebooks
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantise vectors to their ``(n, m)`` uint8 code matrix."""
        from repro.utils.stats import pairwise_squared_distances

        codebooks = self._require_fitted("encode")
        vectors = self._check_vectors(vectors)
        codes = np.empty((vectors.shape[0], self.m), dtype=np.uint8)
        for j in range(self.m):
            sub = vectors[:, j * self.dsub : (j + 1) * self.dsub]
            codes[:, j] = np.argmin(pairwise_squared_distances(sub, codebooks[j]), axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct the (lossy) vectors of a code matrix."""
        codebooks = self._require_fitted("decode")
        codes = np.atleast_2d(np.asarray(codes))
        if codes.shape[1] != self.m:
            raise ValidationError(f"expected {self.m} codes per vector, got {codes.shape[1]}")
        out = np.empty((codes.shape[0], self.dim), dtype=np.float64)
        for j in range(self.m):
            out[:, j * self.dsub : (j + 1) * self.dsub] = codebooks[j][codes[:, j]]
        return out

    def distance_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC lookup tables, shape ``(n_queries, m, k_eff)``.

        Entry ``[q, j, c]`` is the squared distance from query ``q``'s ``j``-th
        sub-vector to centroid ``c`` of subspace ``j``.
        """
        from repro.utils.stats import pairwise_squared_distances

        codebooks = self._require_fitted("distance_tables")
        queries = self._check_vectors(queries)
        tables = np.empty((queries.shape[0], self.m, codebooks.shape[1]), dtype=np.float64)
        for j in range(self.m):
            sub = queries[:, j * self.dsub : (j + 1) * self.dsub]
            tables[:, j, :] = pairwise_squared_distances(sub, codebooks[j])
        return tables

    def adc(self, tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances, shape ``(n_queries, n_codes)``.

        Sums, per query and stored code row, the per-subspace table entries —
        ``m`` gathers over the code matrix instead of any float arithmetic on
        the original vectors.
        """
        self._require_fitted("adc")
        tables = np.asarray(tables, dtype=np.float64)
        codes = np.atleast_2d(np.asarray(codes))
        if tables.ndim != 3 or tables.shape[1] != self.m:
            raise ValidationError("tables must come from distance_tables()")
        if codes.shape[1] != self.m:
            raise ValidationError(f"expected {self.m} codes per vector, got {codes.shape[1]}")
        out = np.zeros((tables.shape[0], codes.shape[0]), dtype=np.float64)
        for j in range(self.m):
            out += tables[:, j, codes[:, j]]
        return out


_CODECS: Dict[str, Type[Codec]] = {
    PickleCodec.name: PickleCodec,
    CompressedCodec.name: CompressedCodec,
    RawArrayCodec.name: RawArrayCodec,
}


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a codec by registry name (``pickle``, ``blosc``, ``raw``)."""
    try:
        cls = _CODECS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        ) from None
    return cls(**kwargs)


def register_codec(cls: Type[Codec]) -> Type[Codec]:
    """Register a user-defined codec class (usable as a decorator)."""
    if not getattr(cls, "name", None):
        raise ConfigurationError("codec classes must define a non-empty 'name'")
    _CODECS[cls.name] = cls
    return cls
