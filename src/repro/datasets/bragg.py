"""Synthetic BraggPeaks dataset.

Each sample is a ``patch_size x patch_size`` patch containing a single Bragg
diffraction peak rendered with the 2-D pseudo-Voigt profile from
:mod:`repro.labeling.pseudo_voigt`, plus detector noise.  The ground-truth
label is the peak centre (row, col) in pixels — exactly what BraggNN predicts
and what the MIDAS-style fitter in :mod:`repro.labeling` recovers.

The generation parameters of a scan come from an
:class:`~repro.datasets.drift.ExperimentCondition`, so a drifting
:class:`~repro.datasets.drift.DriftSchedule` yields a sequence of scans whose
distribution changes over experiment time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.drift import DriftSchedule, ExperimentCondition
from repro.labeling.pseudo_voigt import PeakParameters, pseudo_voigt_2d
from repro.models.braggnn import BRAGG_PATCH_SIZE
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, default_rng, derive_seed


@dataclass
class BraggScan:
    """One scan's worth of Bragg peak patches.

    Attributes
    ----------
    images:
        ``(n, 1, patch, patch)`` float array in [0, ~1.2].
    centers:
        ``(n, 2)`` ground-truth (row, col) peak centres in pixels.
    condition:
        The experiment condition the scan was generated under.
    """

    images: np.ndarray
    centers: np.ndarray
    condition: ExperimentCondition

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def normalized_centers(self) -> np.ndarray:
        """Centres scaled to [0, 1] patch coordinates (the BraggNN target)."""
        patch = self.images.shape[-1]
        return self.centers / float(patch)

    def flat_images(self) -> np.ndarray:
        return self.images.reshape(self.images.shape[0], -1)


def generate_bragg_scan(
    condition: ExperimentCondition,
    n_peaks: int = 256,
    patch_size: int = BRAGG_PATCH_SIZE,
    seed: SeedLike = None,
) -> BraggScan:
    """Generate one scan of Bragg peak patches under ``condition``."""
    if n_peaks < 1:
        raise ConfigurationError("n_peaks must be >= 1")
    if patch_size < 5:
        raise ConfigurationError("patch_size must be >= 5")
    rng = default_rng(derive_seed(seed, condition.scan_index, 11) if seed is not None
                      else derive_seed(0, condition.scan_index, 11))
    center = (patch_size - 1) / 2.0
    spread = min(condition.center_spread, patch_size / 2.0 - 1.5)

    rows = center + rng.uniform(-spread, spread, size=n_peaks)
    cols = center + rng.uniform(-spread, spread, size=n_peaks)
    widths_r = condition.peak_width * rng.uniform(0.8, 1.2, size=n_peaks)
    widths_c = condition.peak_width * rng.uniform(0.8, 1.2, size=n_peaks)
    amps = condition.intensity * rng.uniform(0.6, 1.0, size=n_peaks)
    etas = np.clip(condition.peak_eta + rng.uniform(-0.1, 0.1, size=n_peaks), 0.0, 1.0)
    backgrounds = rng.uniform(0.0, 0.05, size=n_peaks)

    images = np.empty((n_peaks, 1, patch_size, patch_size), dtype=np.float64)
    centers = np.empty((n_peaks, 2), dtype=np.float64)
    for i in range(n_peaks):
        params = PeakParameters(
            center_row=float(rows[i]),
            center_col=float(cols[i]),
            amplitude=float(amps[i]),
            sigma_row=float(widths_r[i]),
            sigma_col=float(widths_c[i]),
            eta=float(etas[i]),
            background=float(backgrounds[i]),
        )
        clean = pseudo_voigt_2d((patch_size, patch_size), params)
        noise = condition.noise_level * rng.standard_normal((patch_size, patch_size))
        images[i, 0] = np.clip(clean + noise, 0.0, None)
        centers[i] = (params.center_row, params.center_col)
    return BraggScan(images=images, centers=centers, condition=condition)


class BraggPeakDataset:
    """A multi-scan synthetic HEDM experiment.

    Wraps a :class:`DriftSchedule` and lazily generates (and caches) each
    scan.  This is the object the fairDS/fairMS evaluation drives: early scans
    populate the historical data store and model Zoo, later scans arrive as
    "new" data whose distribution has drifted.
    """

    def __init__(
        self,
        schedule: DriftSchedule,
        peaks_per_scan: int = 256,
        patch_size: int = BRAGG_PATCH_SIZE,
        seed: SeedLike = 0,
    ):
        if peaks_per_scan < 1:
            raise ConfigurationError("peaks_per_scan must be >= 1")
        self.schedule = schedule
        self.peaks_per_scan = int(peaks_per_scan)
        self.patch_size = int(patch_size)
        self.seed = seed
        self._cache: dict[int, BraggScan] = {}

    def __len__(self) -> int:
        return len(self.schedule)

    def scan(self, scan_index: int) -> BraggScan:
        """Return (generating if necessary) the scan at ``scan_index``."""
        if scan_index not in self._cache:
            condition = self.schedule.condition(scan_index)
            self._cache[scan_index] = generate_bragg_scan(
                condition,
                n_peaks=self.peaks_per_scan,
                patch_size=self.patch_size,
                seed=derive_seed(self.seed, scan_index),
            )
        return self._cache[scan_index]

    def scans(self, indices) -> List[BraggScan]:
        return [self.scan(i) for i in indices]

    def stacked(self, indices) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate ``images`` and ``normalized_centers`` of several scans."""
        scans = self.scans(indices)
        images = np.concatenate([s.images for s in scans], axis=0)
        targets = np.concatenate([s.normalized_centers for s in scans], axis=0)
        return images, targets
