"""User-plane / system-plane orchestration of fairDMS (paper Fig. 5).

The paper separates fairDMS operations into a *user plane* (operations an end
user invokes directly: query data, request a model update) and a *system
plane* (background maintenance: retrain the embedding model, retrain the
clustering model, update the data store, update the model index).  Both planes
are executed as funcX functions coordinated by a Globus Flow in the paper's
deployment; :class:`FairDMSService` reproduces that wiring on top of the local
:class:`~repro.workflow.funcx.FuncXExecutor` and
:class:`~repro.workflow.flows.Flow` substrates.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fairdms import FairDMS, ModelUpdateReport
from repro.monitoring.triggers import ThresholdTrigger
from repro.serving import BatchingPolicy, ServingRuntime, ServingTelemetry
from repro.utils.errors import ConfigurationError
from repro.utils.logging import get_logger
from repro.workflow.flows import Flow, FlowResult
from repro.workflow.funcx import FuncXExecutor

logger = get_logger("repro.core.planes")


def lookup_payload(result) -> Dict[str, Any]:
    """The serving-payload dict of one :class:`~repro.core.fairds.LookupResult`
    — the wire shape shared by :meth:`FairDMSService.lookup_labeled_data` and
    the ``"lookup_labeled_data"`` serving operation (also when a model-less
    ``Deployment`` serves it straight off fairDS)."""
    return {
        "images": result.images,
        "labels": result.labels,
        "doc_ids": result.doc_ids,
        "distribution": result.input_distribution.as_dict(),
    }


def split_lookup_payloads(
    payloads: Sequence[Union[np.ndarray, Tuple[np.ndarray, Optional[int]]]],
) -> Tuple[List[np.ndarray], List[Optional[int]]]:
    """Unpack ``"lookup_labeled_data"`` serving payloads — each an images
    array, or an ``(images, n_samples)`` tuple — into parallel batch lists."""
    batches: List[np.ndarray] = []
    n_samples: List[Optional[int]] = []
    for payload in payloads:
        images, n = payload if isinstance(payload, tuple) else (payload, None)
        batches.append(images)
        n_samples.append(n)
    return batches, n_samples


def split_nearest_payloads(
    payloads: Sequence[Union[np.ndarray, Tuple[np.ndarray, Optional[float]]]],
) -> Tuple[List[np.ndarray], List[Optional[float]]]:
    """Unpack ``"nearest_labeled"`` serving payloads — each one sample, or a
    ``(sample, threshold)`` tuple — into parallel sample/threshold lists."""
    images: List[np.ndarray] = []
    thresholds: List[Optional[float]] = []
    for payload in payloads:
        image, threshold = payload if isinstance(payload, tuple) else (payload, None)
        images.append(np.asarray(image, dtype=np.float64))
        thresholds.append(None if threshold is None else float(threshold))
    return images, thresholds


def nearest_hits_payload(
    hits: Sequence[Tuple[Optional[np.ndarray], float]],
    thresholds: Optional[Sequence[Optional[float]]] = None,
) -> List[Dict[str, Any]]:
    """Wire shape of ``"nearest_labeled"`` results: one
    ``{"label", "distance", "within"}`` dict per sample, with each request's
    own threshold applied (``None`` accepts any distance).  The label of an
    out-of-threshold hit is withheld — the caller should fall back to
    conventional labeling, exactly the Fig. 9 branch."""
    if thresholds is None:
        thresholds = [None] * len(hits)
    out: List[Dict[str, Any]] = []
    for (label, distance), threshold in zip(hits, thresholds):
        within = label is not None and (threshold is None or distance < threshold)
        out.append({
            "label": label if within else None,
            "distance": float(distance),
            "within": bool(within),
        })
    return out


@dataclass
class PlaneActivity:
    """A log entry for a plane function invocation."""

    plane: str
    function: str
    succeeded: bool
    seconds: float
    detail: Dict[str, Any] = field(default_factory=dict)


class FairDMSService:
    """Serves fairDMS through registered user-plane and system-plane functions.

    Parameters
    ----------
    dms:
        The :class:`FairDMS` instance to serve.
    executor:
        funcX-style executor the plane functions are registered with; a local
        one is created when omitted.
    auto_system_plane:
        When True (default), every user-plane model-update request whose
        certainty check triggered a refresh also records the system-plane
        activity, mirroring the paper's automatic background maintenance.
    """

    USER_PLANE = "user"
    SYSTEM_PLANE = "system"

    def __init__(
        self,
        dms: FairDMS,
        executor: Optional[FuncXExecutor] = None,
        auto_system_plane: bool = True,
    ):
        self.dms = dms
        self.executor = executor or FuncXExecutor(max_workers=2)
        self.auto_system_plane = bool(auto_system_plane)
        self.activity: List[PlaneActivity] = []
        self._function_ids: Dict[str, str] = {}
        # Serving runtimes wired to this service (weakly held, so an
        # abandoned runtime does not pin the service's telemetry forever).
        self._runtimes: "weakref.WeakSet[ServingRuntime]" = weakref.WeakSet()
        self._register_plane_functions()

    # -- registration --------------------------------------------------------------
    def _register_plane_functions(self) -> None:
        functions = {
            # user plane
            "query_distribution": self._fn_query_distribution,
            "query_distribution_batch": self._fn_query_distribution_batch,
            "lookup_labeled_data": self._fn_lookup,
            "lookup_labeled_data_batch": self._fn_lookup_batch,
            "nearest_labeled": self._fn_nearest_labeled,
            "update_model": self._fn_update_model,
            # system plane
            "refresh_representations": self._fn_refresh,
            "ingest_labeled_data": self._fn_ingest,
            "certainty_batch": self._fn_certainty_batch,
        }
        for name, fn in functions.items():
            self._function_ids[name] = self.executor.register_function(fn, function_id=name)

    def registered_functions(self) -> List[str]:
        return sorted(self._function_ids)

    # -- plane function bodies ---------------------------------------------------------
    def _fn_query_distribution(self, images: np.ndarray, label: str = "") -> Dict[str, Any]:
        dist = self.dms.fairds.dataset_distribution(images, label=label)
        return dist.as_dict()

    def _fn_query_distribution_batch(self, batches: List[np.ndarray], label: str = "") -> List[Dict[str, Any]]:
        dists = self.dms.fairds.dataset_distribution_batch(batches, labels=[label] * len(batches))
        return [d.as_dict() for d in dists]

    #: Kept as an attribute for back-compat; the canonical definition is the
    #: module-level :func:`lookup_payload`.
    _lookup_payload = staticmethod(lookup_payload)

    def _fn_lookup(self, images: np.ndarray, n_samples: Optional[int] = None) -> Dict[str, Any]:
        return self._lookup_payload(self.dms.fairds.lookup(images, n_samples=n_samples))

    def _fn_lookup_batch(
        self,
        batches: List[np.ndarray],
        n_samples: Optional[Union[int, Sequence[Optional[int]]]] = None,
    ) -> List[Dict[str, Any]]:
        results = self.dms.fairds.lookup_batch(batches, n_samples=n_samples)
        return [self._lookup_payload(r) for r in results]

    def _fn_nearest_labeled(
        self,
        images: np.ndarray,
        thresholds: Optional[Sequence[Optional[float]]] = None,
    ) -> List[Dict[str, Any]]:
        hits = self.dms.fairds.nearest_labeled(images, threshold=None)
        return nearest_hits_payload(hits, thresholds)

    def _fn_certainty_batch(self, batches: List[np.ndarray]) -> List[float]:
        return self.dms.fairds.certainty_batch(batches)

    def _fn_update_model(self, images: np.ndarray, label: str) -> ModelUpdateReport:
        return self.dms.update_model(images, label=label)

    def _fn_refresh(self) -> int:
        self.dms.fairds.refresh()
        return self.dms.fairds.store_size()

    def _fn_ingest(self, images: np.ndarray, labels: np.ndarray) -> int:
        ids = self.dms.fairds.ingest(images, labels)
        return len(ids)

    # -- user-facing API -----------------------------------------------------------------
    def _invoke(self, plane: str, name: str, *args, **kwargs):
        import time

        start = time.perf_counter()
        try:
            result = self.executor.run(self._function_ids[name], *args, **kwargs)
            self.activity.append(
                PlaneActivity(plane=plane, function=name, succeeded=True,
                              seconds=time.perf_counter() - start)
            )
            return result
        except Exception:
            self.activity.append(
                PlaneActivity(plane=plane, function=name, succeeded=False,
                              seconds=time.perf_counter() - start)
            )
            raise

    def query_distribution(self, images: np.ndarray, label: str = "") -> Dict[str, Any]:
        """User plane: the cluster PDF of a dataset."""
        return self._invoke(self.USER_PLANE, "query_distribution", images, label)

    def query_distribution_batch(self, batches: List[np.ndarray], label: str = "") -> List[Dict[str, Any]]:
        """User plane: cluster PDFs for a whole batch of datasets at once."""
        return self._invoke(self.USER_PLANE, "query_distribution_batch", batches, label)

    def lookup_labeled_data(self, images: np.ndarray, n_samples: Optional[int] = None) -> Dict[str, Any]:
        """User plane: pseudo-label a dataset from the historical store."""
        return self._invoke(self.USER_PLANE, "lookup_labeled_data", images, n_samples)

    def lookup_labeled_data_batch(
        self,
        batches: List[np.ndarray],
        n_samples: Optional[Union[int, Sequence[Optional[int]]]] = None,
    ) -> List[Dict[str, Any]]:
        """User plane: pseudo-label several datasets in one batched call.

        Returns one payload per dataset, identical to issuing that many
        :meth:`lookup_labeled_data` calls in order.  ``n_samples`` may be one
        override applied to every dataset or a per-dataset sequence (``None``
        entries fall back to the dataset size), mirroring
        :meth:`repro.core.fairds.FairDS.lookup_batch`.
        """
        return self._invoke(self.USER_PLANE, "lookup_labeled_data_batch", batches, n_samples)

    def nearest_labeled(
        self,
        images: np.ndarray,
        thresholds: Optional[Sequence[Optional[float]]] = None,
    ) -> List[Dict[str, Any]]:
        """User plane: the nearest labeled historical sample per query image.

        Returns one ``{"label", "distance", "within"}`` dict per row of
        ``images``; when ``thresholds`` gives a per-sample distance gate, the
        label of an out-of-threshold hit is withheld (``within=False``) so
        the caller falls back to conventional labeling.
        """
        return self._invoke(self.USER_PLANE, "nearest_labeled", images, thresholds)

    def certainty_batch(self, batches: List[np.ndarray]) -> List[float]:
        """System plane: cluster-assignment certainty of several datasets."""
        return self._invoke(self.SYSTEM_PLANE, "certainty_batch", batches)

    def request_model_update(self, images: np.ndarray, label: str = "update") -> ModelUpdateReport:
        """User plane: the full fairDMS model-update operation.

        Executed as a small flow (transfer -> update -> publish) so the
        orchestration structure matches the paper's Globus Flows deployment.
        """
        flow = Flow(f"model-update:{label}")
        flow.add_step("update_model",
                      lambda ctx: self._invoke(self.USER_PLANE, "update_model", images, label),
                      output_key="report")
        flow.add_step("record_system_activity", self._record_refresh_activity)
        result: FlowResult = flow.run(raise_on_error=True)
        return result.context["report"]

    def _record_refresh_activity(self, ctx: Dict[str, Any]) -> None:
        report: ModelUpdateReport = ctx["report"]
        if self.auto_system_plane and report.triggered_refresh:
            self.activity.append(
                PlaneActivity(
                    plane=self.SYSTEM_PLANE,
                    function="refresh_representations",
                    succeeded=True,
                    seconds=report.timings.get("system_refresh", 0.0),
                    detail={"triggered_by": "certainty"},
                )
            )

    def ingest_labeled_data(self, images: np.ndarray, labels: np.ndarray) -> int:
        """System plane: add newly labeled data to the historical store."""
        return self._invoke(self.SYSTEM_PLANE, "ingest_labeled_data", images, labels)

    def refresh_representations(self) -> int:
        """System plane: retrain embedding + clustering and rebuild the store index."""
        return self._invoke(self.SYSTEM_PLANE, "refresh_representations")

    # -- concurrent serving -----------------------------------------------------------------
    def serving_runtime(
        self,
        policy: Optional[BatchingPolicy] = None,
        num_workers: int = 2,
        certainty_trigger: Optional[ThresholdTrigger] = None,
        telemetry: Optional[ServingTelemetry] = None,
    ) -> ServingRuntime:
        """A micro-batching :class:`~repro.serving.runtime.ServingRuntime`
        serving this service's interactive single-request operations.

        Concurrent clients submit *single* requests; each flush lands on the
        corresponding ``*_batch`` plane function (one activity-log entry and
        one funcX invocation per micro-batch, not per request).  Payloads:

        * ``"query_distribution"`` — an images array; resolves to the
          distribution dict of :meth:`query_distribution` (user plane).
        * ``"lookup_labeled_data"`` — an images array, or an
          ``(images, n_samples)`` tuple to override the sample count;
          resolves to the payload dict of :meth:`lookup_labeled_data`
          (user plane).
        * ``"certainty"`` — an images array; resolves to the dataset's
          cluster-assignment certainty (percent).  Certainty monitoring is a
          *system-plane* function, so its micro-batches are logged as
          ``system:certainty_batch`` in :meth:`activity_summary`.

        When ``certainty_trigger`` is given, every certainty result is fed to
        ``certainty_trigger.observe_many`` in *arrival order* — even when
        worker threads complete batches out of order — so the trigger fires
        exactly as it would under serial, unbatched monitoring.

        The runtime is returned unstarted; use it as a context manager or
        call :meth:`~repro.serving.runtime.ServingRuntime.start` /
        :meth:`~repro.serving.runtime.ServingRuntime.shutdown` around the
        service's own lifetime.
        """
        runtime = ServingRuntime(
            self.serving_handlers(),
            policy=policy,
            num_workers=num_workers,
            telemetry=telemetry,
            observers=self.serving_observers(certainty_trigger),
        )
        self.wire_index_controls(runtime)
        return self.track_runtime(runtime)

    def serving_handlers(self) -> Dict[str, Callable[[List[Any]], Sequence[Any]]]:
        """The batch handlers :meth:`serving_runtime` wires, exposed so a
        facade can compose them with additional operations (e.g. the
        ``Deployment`` facade adds a hot-swappable ``"predict"``) into one
        :class:`~repro.serving.runtime.ServingRuntime`."""
        return {
            "query_distribution": lambda payloads: self.query_distribution_batch(list(payloads)),
            "lookup_labeled_data": self._serve_lookup_batch,
            "nearest_labeled": self._serve_nearest_batch,
            "certainty": lambda payloads: self.certainty_batch(list(payloads)),
        }

    def serving_observers(
        self, certainty_trigger: Optional[ThresholdTrigger] = None
    ) -> Dict[str, Callable[[List[Any]], Any]]:
        """Arrival-order observers matching :meth:`serving_handlers`."""
        observers: Dict[str, Callable[[List[Any]], Any]] = {}
        if certainty_trigger is not None:
            observers["certainty"] = certainty_trigger.observe_many
        return observers

    def track_runtime(self, runtime: ServingRuntime) -> ServingRuntime:
        """Register ``runtime`` as serving this service, so its completion
        counts surface in :meth:`activity_summary` (one telemetry source)."""
        self._runtimes.add(runtime)
        return runtime

    def _serve_lookup_batch(
        self, payloads: Sequence[Union[np.ndarray, Tuple[np.ndarray, Optional[int]]]]
    ) -> List[Dict[str, Any]]:
        """Batch handler for ``"lookup_labeled_data"`` serving requests."""
        batches, n_samples = split_lookup_payloads(payloads)
        return self.lookup_labeled_data_batch(batches, n_samples=n_samples)

    def _serve_nearest_batch(
        self, payloads: Sequence[Union[np.ndarray, Tuple[np.ndarray, Optional[float]]]]
    ) -> List[Dict[str, Any]]:
        """Batch handler for ``"nearest_labeled"`` serving requests: each
        payload is one sample, or a ``(sample, threshold)`` tuple.  The whole
        micro-batch resolves in a single index probe; thresholds apply
        per-request afterwards."""
        images, thresholds = split_nearest_payloads(payloads)
        return self.nearest_labeled(np.stack(images), thresholds=thresholds)

    def wire_index_controls(self, runtime: ServingRuntime) -> ServingRuntime:
        """Expose the vector index's live controls on ``runtime``: the
        ``n_probe`` retuning knob (when the fitted backend supports it) and
        an ``"index_scan"`` stats provider so per-partition scan counters
        appear in every telemetry snapshot."""
        fairds = self.dms.fairds
        caps = fairds.index_capabilities
        if caps is not None and caps.supports_n_probe:
            runtime.register_knob(
                "n_probe",
                fairds.set_index_n_probe,
                getter=lambda: fairds.index_n_probe,
            )
        runtime.register_stats_provider("index_scan", fairds.index_stats)
        return runtime

    # -- introspection ----------------------------------------------------------------------
    def activity_summary(self, include_serving: bool = True) -> Dict[str, int]:
        """Invocation counts per plane function, as ``{"plane:function": n}``.

        With ``include_serving`` (default), per-operation request counts of
        every serving runtime created by :meth:`serving_runtime` (or adopted
        via :meth:`track_runtime`) are folded in under ``"serving:<op>"``
        keys, so callers aggregating system health read one summary instead
        of walking runtimes themselves.  When the fitted index backend
        exposes scan statistics (e.g. the IVF index), its integer counters
        are folded in under ``"index:<stat>"`` keys from the single
        authoritative source — the index itself — so runtimes sharing one
        index are not double-counted.
        """
        summary: Dict[str, int] = {}
        for entry in self.activity:
            key = f"{entry.plane}:{entry.function}"
            summary[key] = summary.get(key, 0) + 1
        if include_serving:
            for runtime in list(self._runtimes):
                for op, counts in runtime.telemetry_snapshot()["per_op"].items():
                    key = f"serving:{op}"
                    summary[key] = summary.get(key, 0) + counts["completed"]
        for stat, value in self.dms.fairds.index_stats().items():
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                continue
            summary[f"index:{stat}"] = int(value)
        return summary

    def shutdown(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "FairDMSService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
