"""Document model for the embedded document database."""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Mapping, Optional

from repro.utils.errors import ValidationError

_counter = itertools.count()
_counter_lock = threading.Lock()


def new_object_id() -> str:
    """Generate a unique, time-ordered object id (Mongo-style)."""
    with _counter_lock:
        seq = next(_counter)
    return f"{int(time.time() * 1000):013x}-{seq:08x}"


class Document(dict):
    """A JSON-like document with an ``_id`` field.

    Behaves exactly like a ``dict``; construction assigns a fresh ``_id`` if
    one is not supplied.  Binary payloads (serialised samples) are stored
    under ordinary keys, typically ``"payload"``.
    """

    def __init__(self, data: Optional[Mapping[str, Any]] = None, **kwargs):
        super().__init__()
        if data is not None:
            if not isinstance(data, Mapping):
                raise ValidationError("Document data must be a mapping")
            self.update(data)
        if kwargs:
            self.update(kwargs)
        if "_id" not in self:
            self["_id"] = new_object_id()

    @property
    def id(self) -> str:
        return self["_id"]

    def without_id(self) -> Dict[str, Any]:
        return {k: v for k, v in self.items() if k != "_id"}

    def matches(self, query: Mapping[str, Any]) -> bool:
        """Simple equality filter used by :meth:`Collection.find`."""
        for key, expected in query.items():
            if key not in self:
                return False
            actual = self[key]
            if isinstance(expected, Mapping) and set(expected) <= {"$gte", "$lte", "$gt", "$lt", "$in", "$ne"}:
                if "$gte" in expected and not actual >= expected["$gte"]:
                    return False
                if "$lte" in expected and not actual <= expected["$lte"]:
                    return False
                if "$gt" in expected and not actual > expected["$gt"]:
                    return False
                if "$lt" in expected and not actual < expected["$lt"]:
                    return False
                if "$in" in expected and actual not in expected["$in"]:
                    return False
                if "$ne" in expected and actual == expected["$ne"]:
                    return False
            elif actual != expected:
                return False
        return True
