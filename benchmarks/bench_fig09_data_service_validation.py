"""Fig. 9 — data-service validation: conventional labels vs fairDS-retrieved labels.

Protocol from the paper (Section III-E): take a new HEDM dataset ``BR`` not in
the historical store, carve out a holdout ``BH``, and build the training set
``BO`` by, for each remaining sample, retrieving the closest historical sample
within an embedding-space threshold ``T`` (reusing its label) and falling back
to pseudo-Voigt fitting otherwise.  Train BraggNN on the conventionally
labeled set and on ``BO``; the error distributions on ``BH`` should match
(P50/P75/P95 within a few hundredths of a pixel) while the labeling time
differs by orders of magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.labeling import LabelingEngine, VOIGT_80
from repro.models import build_braggnn
from repro.nn.metrics import euclidean_pixel_error
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.timing import Timer

from common import bragg_experiment, fitted_bragg_fairds, print_table


@pytest.mark.figure("fig9")
def test_fig09_fairds_labels_match_conventional_labels(benchmark, report_sink):
    seed = 0
    experiment = bragg_experiment(n_scans=10, change_at=8, peaks_per_scan=150, seed=seed)
    fairds = fitted_bragg_fairds(experiment, scans=range(4), n_clusters=15, seed=seed)

    # BR: a new dataset from the same phase; BH: its holdout.
    br = experiment.scan(5)
    n_holdout = 50
    bh_images, bh_centers = br.images[:n_holdout], br.centers[:n_holdout]
    new_images, new_centers = br.images[n_holdout:], br.centers[n_holdout:]

    # -- conventional labeling (pseudo-Voigt on every patch) ----------------------
    with Timer() as t_conv:
        engine = LabelingEngine(cost_model=VOIGT_80, local_workers=2)
        conv_report = engine.label(new_images[:, 0])
    conv_labels = conv_report.labels / experiment.patch_size

    # -- fairDS labeling: nearest historical sample within threshold --------------
    threshold = 1e3  # generous threshold in PCA space; same-phase data is close

    def fairds_label():
        matches = fairds.nearest_labeled(new_images, threshold=threshold)
        labels = np.empty((len(matches), 2))
        n_fallback = 0
        for i, (label, _dist) in enumerate(matches):
            if label is None:
                n_fallback += 1
                from repro.labeling import fit_peak_center

                labels[i] = np.array(fit_peak_center(new_images[i, 0]).center) / experiment.patch_size
            else:
                labels[i] = label
        return labels, n_fallback

    with Timer() as t_fair:
        fair_labels, n_fallback = fairds_label()

    # -- train BraggNN on both label sets and evaluate on BH -------------------------
    config = TrainingConfig(epochs=15, batch_size=32, lr=3e-3, seed=seed)
    model_conv = build_braggnn(width=4, seed=seed)
    Trainer(model_conv).fit((new_images, conv_labels), val=(new_images, conv_labels), config=config)
    model_fair = build_braggnn(width=4, seed=seed)
    Trainer(model_fair).fit((new_images, fair_labels), val=(new_images, fair_labels), config=config)

    err_conv = euclidean_pixel_error(model_conv.predict(bh_images) * experiment.patch_size, bh_centers)
    err_fair = euclidean_pixel_error(model_fair.predict(bh_images) * experiment.patch_size, bh_centers)

    rows = []
    for name, errs, label_time in (
        ("Conventional (pseudo-Voigt)", err_conv, conv_report.simulated_wall_clock),
        ("Proposed fairDS", err_fair, t_fair.elapsed),
    ):
        rows.append((
            name,
            float(np.percentile(errs, 50)),
            float(np.percentile(errs, 75)),
            float(np.percentile(errs, 95)),
            label_time,
        ))
    print_table("Fig. 9 — BraggNN error on holdout BH: conventional vs fairDS labels",
                ["method", "P50_px", "P75_px", "P95_px", "label_time_s"], rows, sink=report_sink)
    print(f"(fairDS fell back to pseudo-Voigt for {n_fallback} of {new_images.shape[0]} samples)")

    # Shape checks: both models perform comparably; fairDS labels are produced
    # orders of magnitude faster than the conventional (simulated 80-core) path.
    assert abs(np.percentile(err_conv, 50) - np.percentile(err_fair, 50)) < 0.5
    assert t_fair.elapsed < conv_report.simulated_wall_clock

    # pytest-benchmark target: the fairDS labeling operation itself.
    benchmark.pedantic(fairds_label, rounds=1, iterations=1)
