"""Threshold-based retraining triggers."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.errors import ConfigurationError


class ThresholdTrigger:
    """Fires when an observed value crosses a threshold.

    Parameters
    ----------
    threshold:
        Comparison threshold.
    direction:
        ``"below"`` fires when the value drops under the threshold (e.g.
        cluster certainty), ``"above"`` fires when it rises over it (e.g.
        prediction error).
    cooldown:
        Number of observations to ignore after a firing before the trigger can
        fire again (prevents retraining storms while the refresh takes effect).
    """

    def __init__(self, threshold: float, direction: str = "below", cooldown: int = 0):
        if direction not in ("below", "above"):
            raise ConfigurationError("direction must be 'below' or 'above'")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.threshold = float(threshold)
        self.direction = direction
        self.cooldown = int(cooldown)
        self._cooldown_remaining = 0
        # Observations now arrive from pipeline steps and serving observers on
        # different threads; the reentrant lock keeps the history/cooldown
        # state consistent and observe_many atomic as a batch.
        self._lock = threading.RLock()
        self.history: List[float] = []
        self.fired_at: List[int] = []

    def observe(self, value: float) -> bool:
        """Record a value; returns True when the trigger fires on it."""
        with self._lock:
            self.history.append(float(value))
            if self._cooldown_remaining > 0:
                self._cooldown_remaining -= 1
                return False
            crossed = value < self.threshold if self.direction == "below" else value > self.threshold
            if crossed:
                self.fired_at.append(len(self.history) - 1)
                self._cooldown_remaining = self.cooldown
            return crossed

    def observe_many(self, values: Sequence[float]) -> List[bool]:
        """Record a batch of observations in order; one fired-flag per value.

        Semantically identical to calling :meth:`observe` once per value — the
        cooldown window threads through the batch — so batched monitoring
        (e.g. :meth:`repro.core.fairds.FairDS.certainty_batch` output) and a
        stream of single observations cannot disagree.  The whole batch is
        observed atomically with respect to other threads.
        """
        with self._lock:
            return [self.observe(v) for v in values]

    def reset(self) -> None:
        """Re-arm the trigger immediately (clear any remaining cooldown).

        For operators who want the next observation eligible to fire without
        waiting out the cooldown window — e.g. after manually intervening in
        the system the trigger monitors.  History is kept.
        """
        with self._lock:
            self._cooldown_remaining = 0

    @property
    def last_value(self) -> Optional[float]:
        """The most recent observation, or ``None`` before any."""
        with self._lock:
            return self.history[-1] if self.history else None

    @property
    def times_fired(self) -> int:
        with self._lock:
            return len(self.fired_at)


#: Marker for sequence numbers whose observation is dropped (failed request).
_DISCARDED = object()


class ArrivalOrderFeed:
    """Delivers out-of-order ``(seq, value)`` completions to a sink in order.

    Micro-batched serving executes batches on a worker pool, so batch ``k+1``
    can complete before batch ``k`` — but a trigger's cooldown window makes
    its firing pattern order-sensitive, so monitoring must observe values in
    *arrival* order or batched and serial serving would disagree.  Completions
    are pushed with the per-request admission sequence number; whenever the
    next undelivered sequence becomes available, the maximal consecutive run
    is forwarded to ``sink`` as one ordered list (e.g.
    :meth:`ThresholdTrigger.observe_many`).

    ``discard`` punches a hole for requests that failed (their value will
    never arrive) so later observations are not held back forever.  The sink
    is invoked under the feed's internal lock and must not re-enter the feed.
    """

    def __init__(self, sink: Callable[[List[float]], Any], start_seq: int = 0):
        self._sink = sink
        self._next = int(start_seq)
        self._pending: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self.delivered = 0

    def push(self, seq: int, value: float) -> None:
        self.push_many([(seq, value)])

    def push_many(self, pairs: Iterable[Tuple[int, float]]) -> None:
        """Record completed observations; forwards any newly consecutive run."""
        self._ingest([(seq, (value,)) for seq, value in pairs])

    def discard(self, seqs: Iterable[int]) -> None:
        """Mark sequence numbers as never-arriving (their request failed)."""
        self._ingest([(seq, _DISCARDED) for seq in seqs])

    def _ingest(self, entries: List[Tuple[int, Any]]) -> None:
        with self._lock:
            for seq, entry in entries:
                if seq < self._next or seq in self._pending:
                    raise ConfigurationError(
                        f"sequence number {seq} already delivered or pending"
                    )
                self._pending[seq] = entry
            run: List[float] = []
            while self._next in self._pending:
                entry = self._pending.pop(self._next)
                self._next += 1
                if entry is not _DISCARDED:
                    run.append(entry[0])
            if run:
                self._sink(run)
                self.delivered += len(run)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)


class CertaintyTrigger(ThresholdTrigger):
    """Fires when fairDS cluster-assignment certainty drops below a percentage.

    The paper triggers system-plane retraining (embedding + clustering + data
    store update) when certainty drops below 80 % (Fig. 16).
    """

    def __init__(self, threshold_percent: float = 80.0, cooldown: int = 0):
        if not 0.0 < threshold_percent <= 100.0:
            raise ConfigurationError("threshold_percent must be in (0, 100]")
        super().__init__(threshold_percent, direction="below", cooldown=cooldown)
