"""Synthetic CookieBox dataset.

The CookieBox detector records, for each of 16 angular channels, an empirical
histogram of electron energies.  The paper's CookieBox data come from a
detector simulation producing 128x128 8-bit images (one row per channel-bin).
Here each sample is a ``(n_channels, n_bins)`` image built from a small number
of spectral lines whose positions rotate across channels (mimicking the
angular streaking produced by a circularly polarised laser field), plus
counting noise.  The ground-truth label is the underlying per-channel
probability density — what CookieNetAE is trained to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.drift import DriftSchedule, ExperimentCondition
from repro.labeling.pseudo_voigt import pseudo_voigt_1d
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, default_rng, derive_seed


@dataclass
class CookieBoxScan:
    """One scan of CookieBox samples.

    Attributes
    ----------
    images:
        ``(n, channels, bins)`` noisy count histograms normalised to [0, 1].
    densities:
        ``(n, channels, bins)`` ground-truth per-channel probability densities
        (each channel row sums to one).
    condition:
        The experiment condition of this scan.
    """

    images: np.ndarray
    densities: np.ndarray
    condition: ExperimentCondition

    def __len__(self) -> int:
        return self.images.shape[0]

    def flat_images(self) -> np.ndarray:
        return self.images.reshape(self.images.shape[0], -1)


def generate_cookiebox_scan(
    condition: ExperimentCondition,
    n_samples: int = 128,
    n_channels: int = 16,
    n_bins: int = 64,
    n_lines: int = 3,
    seed: SeedLike = None,
) -> CookieBoxScan:
    """Generate one scan of CookieBox images under ``condition``."""
    if n_samples < 1 or n_channels < 1 or n_bins < 4 or n_lines < 1:
        raise ConfigurationError("invalid CookieBox generation sizes")
    rng = default_rng(derive_seed(seed if seed is not None else 0, condition.scan_index, 23))
    bins = np.arange(n_bins, dtype=np.float64)
    channel_phase = 2.0 * np.pi * np.arange(n_channels) / n_channels

    images = np.empty((n_samples, n_channels, n_bins), dtype=np.float64)
    densities = np.empty_like(images)
    width = max(condition.peak_width, 0.5)

    for i in range(n_samples):
        base_energies = rng.uniform(0.15 * n_bins, 0.85 * n_bins, size=n_lines)
        base_energies += condition.energy_shift
        amplitudes = condition.intensity * rng.uniform(0.5, 1.0, size=n_lines)
        # Angular streaking: line position oscillates across channels.
        streak_amp = 0.05 * n_bins * rng.uniform(0.5, 1.5)
        clean = np.zeros((n_channels, n_bins))
        for line in range(n_lines):
            centers = base_energies[line] + streak_amp * np.sin(channel_phase + rng.uniform(0, 2 * np.pi))
            for ch in range(n_channels):
                clean[ch] += pseudo_voigt_1d(
                    bins, float(centers[ch]), float(amplitudes[line]), width, condition.peak_eta
                )
        row_sums = clean.sum(axis=1, keepdims=True)
        row_sums[row_sums <= 0] = 1.0
        density = clean / row_sums
        noisy = clean + condition.noise_level * rng.standard_normal(clean.shape)
        noisy = np.clip(noisy, 0.0, None)
        peak = noisy.max()
        images[i] = noisy / peak if peak > 0 else noisy
        densities[i] = density
    return CookieBoxScan(images=images, densities=densities, condition=condition)


class CookieBoxDataset:
    """Multi-scan synthetic CookieBox experiment driven by a drift schedule."""

    def __init__(
        self,
        schedule: DriftSchedule,
        samples_per_scan: int = 128,
        n_channels: int = 16,
        n_bins: int = 64,
        seed: SeedLike = 0,
    ):
        if samples_per_scan < 1:
            raise ConfigurationError("samples_per_scan must be >= 1")
        self.schedule = schedule
        self.samples_per_scan = int(samples_per_scan)
        self.n_channels = int(n_channels)
        self.n_bins = int(n_bins)
        self.seed = seed
        self._cache: dict[int, CookieBoxScan] = {}

    def __len__(self) -> int:
        return len(self.schedule)

    def scan(self, scan_index: int) -> CookieBoxScan:
        if scan_index not in self._cache:
            condition = self.schedule.condition(scan_index)
            self._cache[scan_index] = generate_cookiebox_scan(
                condition,
                n_samples=self.samples_per_scan,
                n_channels=self.n_channels,
                n_bins=self.n_bins,
                seed=derive_seed(self.seed, scan_index),
            )
        return self._cache[scan_index]

    def scans(self, indices) -> List[CookieBoxScan]:
        return [self.scan(i) for i in indices]

    def stacked(self, indices) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate flattened images and density targets of several scans."""
        scans = self.scans(indices)
        x = np.concatenate([s.flat_images() for s in scans], axis=0)
        y = np.concatenate([s.densities for s in scans], axis=0)
        return x, y
