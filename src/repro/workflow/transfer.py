"""Data/model transfer service (Globus Transfer stand-in).

Models the experimental-facility <-> compute-cluster link as latency plus
bandwidth.  Transfers are "performed" by sleeping a configurable fraction of
the simulated duration (zero by default so tests stay fast) and always
recording the full simulated duration, which the end-to-end Fig. 15 bench adds
to its timing breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.utils.errors import ConfigurationError, ValidationError


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer."""

    label: str
    n_bytes: int
    simulated_seconds: float


class TransferService:
    """Simulated wide-area transfer with latency + bandwidth.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Link bandwidth; the paper's testbed uses 100 GbE (~1.25e10 B/s).
    latency_s:
        Per-transfer setup latency (endpoint negotiation etc.).
    realtime_fraction:
        Fraction of the simulated duration to actually sleep; keep at 0 for
        tests, raise for demos where pacing matters.
    """

    def __init__(
        self,
        bandwidth_bytes_per_s: float = 1.25e10,
        latency_s: float = 0.05,
        realtime_fraction: float = 0.0,
    ):
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if latency_s < 0:
            raise ConfigurationError("latency must be non-negative")
        if not 0.0 <= realtime_fraction <= 1.0:
            raise ConfigurationError("realtime_fraction must be in [0, 1]")
        self.bandwidth_bytes_per_s = float(bandwidth_bytes_per_s)
        self.latency_s = float(latency_s)
        self.realtime_fraction = float(realtime_fraction)
        self.records: List[TransferRecord] = []

    def simulated_duration(self, n_bytes: int) -> float:
        if n_bytes < 0:
            raise ValidationError("n_bytes must be non-negative")
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s

    def transfer_bytes(self, n_bytes: int, label: str = "transfer") -> TransferRecord:
        """Record (and optionally pace) a transfer of ``n_bytes``."""
        duration = self.simulated_duration(int(n_bytes))
        if self.realtime_fraction > 0:
            time.sleep(duration * self.realtime_fraction)
        record = TransferRecord(label=label, n_bytes=int(n_bytes), simulated_seconds=duration)
        self.records.append(record)
        return record

    def transfer_array(self, array: np.ndarray, label: str = "dataset") -> TransferRecord:
        """Transfer a NumPy array (payload size = ``array.nbytes``)."""
        return self.transfer_bytes(np.asarray(array).nbytes, label=label)

    def total_seconds(self) -> float:
        return float(sum(r.simulated_seconds for r in self.records))

    def total_bytes(self) -> int:
        return int(sum(r.n_bytes for r in self.records))

    def reset(self) -> None:
        self.records.clear()
