"""Tests for repro.utils.stats, incl. property-based tests of the JSD metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.stats import (
    correlation,
    histogram_pdf,
    jensen_shannon_distance,
    jensen_shannon_divergence,
    kl_divergence,
    normalize_distribution,
    normalized_euclidean,
    pairwise_squared_distances,
    percentile_summary,
    running_mean,
)


# -- normalisation -------------------------------------------------------------
def test_normalize_distribution_sums_to_one():
    p = normalize_distribution([1.0, 3.0, 6.0])
    assert p.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(p, [0.1, 0.3, 0.6])


def test_normalize_distribution_zero_sum_gives_uniform():
    p = normalize_distribution([0.0, 0.0, 0.0, 0.0])
    np.testing.assert_allclose(p, 0.25)


def test_normalize_distribution_rejects_negative():
    with pytest.raises(ValueError):
        normalize_distribution([1.0, -0.5])


def test_normalize_distribution_rejects_empty():
    with pytest.raises(ValueError):
        normalize_distribution([])


# -- KL / JSD --------------------------------------------------------------------
def test_kl_divergence_zero_for_identical():
    assert kl_divergence([0.2, 0.8], [0.2, 0.8]) == pytest.approx(0.0, abs=1e-9)


def test_kl_divergence_positive_for_different():
    assert kl_divergence([0.9, 0.1], [0.1, 0.9]) > 0


def test_kl_divergence_shape_mismatch():
    with pytest.raises(ValueError):
        kl_divergence([0.5, 0.5], [0.3, 0.3, 0.4])


def test_jsd_identical_is_zero():
    assert jensen_shannon_divergence([0.25, 0.25, 0.5], [0.25, 0.25, 0.5]) == pytest.approx(
        0.0, abs=1e-9
    )


def test_jsd_disjoint_support_is_one():
    assert jensen_shannon_divergence([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0, abs=1e-9)


def test_jsd_symmetric():
    p, q = [0.7, 0.2, 0.1], [0.1, 0.1, 0.8]
    assert jensen_shannon_divergence(p, q) == pytest.approx(jensen_shannon_divergence(q, p))


def test_jsd_accepts_unnormalised_counts():
    # Cluster histograms are passed as raw counts by fairDS.
    a = jensen_shannon_divergence([10, 20, 70], [0.1, 0.2, 0.7])
    assert a == pytest.approx(0.0, abs=1e-9)


def test_jsd_shape_mismatch():
    with pytest.raises(ValueError):
        jensen_shannon_divergence([0.5, 0.5], [1.0])


@settings(max_examples=50, deadline=None)
@given(
    p=arrays(np.float64, 8, elements=st.floats(0, 100)),
    q=arrays(np.float64, 8, elements=st.floats(0, 100)),
)
def test_jsd_bounded_and_symmetric_property(p, q):
    d_pq = jensen_shannon_divergence(p, q)
    d_qp = jensen_shannon_divergence(q, p)
    assert 0.0 <= d_pq <= 1.0
    assert d_pq == pytest.approx(d_qp, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(p=arrays(np.float64, 6, elements=st.floats(0.01, 100)))
def test_jsd_self_is_zero_property(p):
    assert jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    p=arrays(np.float64, 5, elements=st.floats(0.001, 10)),
    q=arrays(np.float64, 5, elements=st.floats(0.001, 10)),
    r=arrays(np.float64, 5, elements=st.floats(0.001, 10)),
)
def test_js_distance_triangle_inequality(p, q, r):
    # sqrt(JSD) is a metric; triangle inequality should hold (with tolerance).
    d_pq = jensen_shannon_distance(p, q)
    d_qr = jensen_shannon_distance(q, r)
    d_pr = jensen_shannon_distance(p, r)
    assert d_pr <= d_pq + d_qr + 1e-9


# -- histogram / percentiles -------------------------------------------------------
def test_histogram_pdf_normalised():
    pdf, edges = histogram_pdf(np.random.default_rng(0).normal(size=500), bins=16)
    assert pdf.shape == (16,)
    assert edges.shape == (17,)
    assert pdf.sum() == pytest.approx(1.0)


def test_histogram_pdf_empty_raises():
    with pytest.raises(ValueError):
        histogram_pdf([])


def test_percentile_summary_keys_and_ordering():
    errors = np.linspace(0, 1, 101)
    summary = percentile_summary(errors)
    assert set(summary) == {"P50", "P75", "P95"}
    assert summary["P50"] <= summary["P75"] <= summary["P95"]
    assert summary["P50"] == pytest.approx(0.5)


def test_percentile_summary_empty_raises():
    with pytest.raises(ValueError):
        percentile_summary([])


def test_running_mean_constant_preserved():
    out = running_mean(np.full(10, 3.0), window=3)
    np.testing.assert_allclose(out[1:-1], 3.0)


def test_running_mean_window_one_is_identity():
    x = np.arange(5, dtype=float)
    np.testing.assert_array_equal(running_mean(x, window=1), x)


def test_running_mean_invalid_window():
    with pytest.raises(ValueError):
        running_mean([1.0, 2.0], window=0)


# -- distances --------------------------------------------------------------------
def test_pairwise_squared_distances_matches_naive(rng):
    a = rng.normal(size=(7, 4))
    b = rng.normal(size=(5, 4))
    d2 = pairwise_squared_distances(a, b)
    naive = np.array([[np.sum((x - y) ** 2) for y in b] for x in a])
    np.testing.assert_allclose(d2, naive, atol=1e-9)


def test_pairwise_squared_distances_nonnegative(rng):
    a = rng.normal(size=(6, 3))
    d2 = pairwise_squared_distances(a, a)
    assert np.all(d2 >= 0)
    np.testing.assert_allclose(np.diag(d2), 0.0, atol=1e-9)


def test_pairwise_squared_distances_dim_mismatch(rng):
    with pytest.raises(ValueError):
        pairwise_squared_distances(rng.normal(size=(3, 4)), rng.normal(size=(3, 5)))


def test_pairwise_squared_distances_clamps_cancellation_to_zero(rng):
    """Large-magnitude near-identical vectors make the |a|^2+|b|^2-2ab expansion
    cancel catastrophically — the raw result can be ~-1e-16, which would turn
    into NaN under a caller's sqrt.  The clamp must keep every entry >= 0."""
    base = rng.normal(size=(50, 8)) * 1e8
    jittered = base + rng.normal(size=(50, 8)) * 1e-8
    d2 = pairwise_squared_distances(base, jittered)
    assert np.all(d2 >= 0.0)
    distances = np.sqrt(d2)  # the pattern every caller uses
    assert np.all(np.isfinite(distances))
    # The raw expansion really does go negative for these inputs; verify the
    # clamp is what saves the caller rather than numerical luck.
    a_sq = np.sum(base * base, axis=1)[:, None]
    b_sq = np.sum(jittered * jittered, axis=1)[None, :]
    raw = a_sq + b_sq - 2.0 * (base @ jittered.T)
    assert raw.min() < 0.0


def test_normalized_euclidean_scale_invariant(rng):
    a = rng.normal(size=(4, 3))
    b = rng.normal(size=(4, 3))
    d1 = normalized_euclidean(a, b)
    d2 = normalized_euclidean(a * 100.0, b * 100.0)
    np.testing.assert_allclose(d1, d2, rtol=1e-9)


def test_correlation_perfect_and_inverse():
    x = np.arange(10, dtype=float)
    assert correlation(x, 2 * x + 1) == pytest.approx(1.0)
    assert correlation(x, -x) == pytest.approx(-1.0)


def test_correlation_constant_input_is_zero():
    assert correlation([1, 1, 1, 1], [1, 2, 3, 4]) == 0.0


def test_correlation_length_mismatch():
    with pytest.raises(ValueError):
        correlation([1, 2], [1, 2, 3])
