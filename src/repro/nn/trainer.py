"""Mini-batch training loops: fit from scratch, evaluate, and fine-tune.

The paper's key fairMS figure of merit is the number of epochs a fine-tuned
model needs to reach a target validation error compared with training from
randomly initialised parameters (Figs. 13 and 14).  :class:`Trainer` records
the per-epoch validation error so the benchmark harness can regenerate those
learning curves, and exposes ``epochs_to_converge`` with the same convergence
criterion for every strategy so the comparison is fair.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.dtype import cast
from repro.nn.losses import Loss, MSELoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam, Optimizer
from repro.observability.metrics import default_registry
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, default_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.executor import Executor

logger = get_logger("repro.nn.trainer")

ArrayPair = Tuple[np.ndarray, np.ndarray]
BatchIterable = Iterable[ArrayPair]


@dataclass
class TrainingConfig:
    """Hyper-parameters for a training run."""

    epochs: int = 50
    batch_size: int = 32
    lr: float = 1e-3
    shuffle: bool = True
    # Early stopping: stop when the validation loss has not improved by
    # ``min_delta`` for ``patience`` epochs, or when it drops below
    # ``target_loss`` (the explicit convergence criterion used when comparing
    # fine-tuning strategies).
    patience: Optional[int] = None
    min_delta: float = 0.0
    target_loss: Optional[float] = None
    verbose: bool = False
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.lr <= 0:
            raise ConfigurationError("lr must be positive")
        if self.patience is not None and self.patience <= 0:
            raise ConfigurationError("patience must be positive when set")


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    epoch_time: List[float] = field(default_factory=list)
    io_time: List[float] = field(default_factory=list)
    stopped_early: bool = False
    converged_epoch: Optional[int] = None

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_loss(self) -> float:
        return float(min(self.val_loss)) if self.val_loss else float("nan")

    @property
    def total_time(self) -> float:
        return float(sum(self.epoch_time))

    def epochs_to_converge(self, target_loss: float) -> Optional[int]:
        """First epoch (1-based) whose validation loss is <= ``target_loss``."""
        for i, loss in enumerate(self.val_loss):
            if loss <= target_loss:
                return i + 1
        return None

    def as_dict(self) -> dict:
        return {
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "epoch_time": list(self.epoch_time),
            "io_time": list(self.io_time),
            "stopped_early": self.stopped_early,
            "converged_epoch": self.converged_epoch,
        }


def _iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool,
    rng: np.random.Generator,
) -> Iterable[ArrayPair]:
    n = x.shape[0]
    indices = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        batch_idx = indices[start : start + batch_size]
        yield x[batch_idx], y[batch_idx]


class Trainer:
    """Runs mini-batch gradient descent for a :class:`Sequential` model.

    Parameters
    ----------
    model:
        The network to optimise.
    loss:
        Loss object; defaults to mean squared error (the paper's regression
        applications all optimise MSE-style objectives).
    optimizer_factory:
        Callable ``(params, lr) -> Optimizer``; defaults to Adam.
    executor:
        Optional :class:`repro.compute.Executor`.  When it offers real
        parallelism (``max_workers > 1``) and the model qualifies (array
        training data, single-dtype parameter pack, no BatchNorm),
        :meth:`fit` runs data-parallel: workers compute per-shard gradients
        into a shared flat slab and the parent performs one fused
        weighted-average + ``optimizer.step()`` per macro-batch — the same
        update sequence as serial training.  Otherwise training falls back
        to the serial loop unchanged.
    """

    def __init__(
        self,
        model: Sequential,
        loss: Optional[Loss] = None,
        optimizer_factory: Optional[Callable[[Sequence, float], Optimizer]] = None,
        executor: Optional["Executor"] = None,
    ):
        self.model = model
        self.loss = loss or MSELoss()
        self._optimizer_factory = optimizer_factory or (lambda params, lr: Adam(params, lr=lr))
        self.executor = executor
        self._best_val = float("inf")
        self._epochs_since_improvement = 0

    # -- evaluation -----------------------------------------------------------
    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> float:
        """Mean loss over ``(x, y)`` computed in inference mode.

        Inputs are cast to the model's compute dtype one batch slice at a
        time (a no-op when the dtype already matches) — never as full-array
        copies of ``x``/``y`` per call.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValidationError("x and y must have the same number of samples")
        dtype = self.model.dtype
        total, count = 0.0, 0
        for start in range(0, x.shape[0], batch_size):
            xb = cast(x[start : start + batch_size], dtype)
            yb = cast(y[start : start + batch_size], dtype)
            pred = self.model.forward(xb, training=False)
            total += self.loss.forward(pred, yb) * xb.shape[0]
            count += xb.shape[0]
        return total / max(count, 1)

    # -- core loop -------------------------------------------------------------
    def fit(
        self,
        train: Union[ArrayPair, Callable[[], BatchIterable]],
        val: Optional[ArrayPair] = None,
        config: Optional[TrainingConfig] = None,
    ) -> TrainingHistory:
        """Train the model and return the learning-curve history.

        ``train`` is either an ``(x, y)`` array pair or a zero-argument
        callable returning an iterable of ``(x_batch, y_batch)`` pairs (one
        epoch); the latter form is how store-backed
        :class:`repro.dataio.dataloader.DataLoader` objects plug in.
        """
        config = config or TrainingConfig()
        rng = default_rng(config.seed)
        optimizer = self._optimizer_factory(self.model.parameters(), config.lr)
        history = TrainingHistory()
        dtype = self.model.dtype

        x_train: Optional[np.ndarray] = None
        y_train: Optional[np.ndarray] = None
        if not callable(train):
            # Validate and cast ONCE per fit — not per epoch, and never as a
            # redundant copy when the arrays are already in the compute dtype.
            x_train = cast(train[0], dtype)
            y_train = cast(train[1], dtype)
            if x_train.shape[0] != y_train.shape[0]:
                raise ValidationError("x and y must have the same number of samples")
            if x_train.shape[0] == 0:
                raise ValidationError("cannot train on an empty dataset")

        self._best_val = float("inf")
        self._epochs_since_improvement = 0

        if x_train is not None and self._use_data_parallel(optimizer):
            from repro.compute.dp import fit_data_parallel

            fit_data_parallel(self, x_train, y_train, val, config, optimizer, history)
        else:
            self._fit_serial(train, x_train, y_train, val, config, optimizer, rng, history)

        if history.converged_epoch is None and config.target_loss is not None:
            history.converged_epoch = history.epochs_to_converge(config.target_loss)
        return history

    def _use_data_parallel(self, optimizer: Optimizer) -> bool:
        if self.executor is None:
            return False
        from repro.compute.dp import supports_data_parallel

        return supports_data_parallel(self.model, optimizer, self.executor)

    def _fit_serial(self, train, x_train, y_train, val, config, optimizer, rng, history) -> None:
        dtype = self.model.dtype
        for epoch in range(config.epochs):
            epoch_start = time.perf_counter()
            io_time = 0.0
            epoch_loss, n_batches = 0.0, 0

            if callable(train):
                batches: BatchIterable = train()
            else:
                batches = _iterate_minibatches(
                    x_train, y_train, config.batch_size, config.shuffle, rng
                )

            fetch_start = time.perf_counter()
            for xb, yb in batches:
                io_time += time.perf_counter() - fetch_start
                # No-op for the array path (cast above); covers loader-fed
                # batches so loss/backward never mix dtypes mid-pipeline.
                xb = cast(xb, dtype)
                yb = cast(yb, dtype)
                pred = self.model.forward(xb, training=True)
                batch_loss = self.loss.forward(pred, yb)
                grad = self.loss.backward(pred, yb)
                optimizer.zero_grad()
                self.model.backward(grad, need_input_grad=False)
                optimizer.step()
                epoch_loss += batch_loss
                n_batches += 1
                fetch_start = time.perf_counter()

            if n_batches == 0:
                raise ValidationError("training iterable produced no batches")
            if self._finish_epoch(
                history, config, epoch, epoch_loss / n_batches, io_time, epoch_start, val
            ):
                break

    def _finish_epoch(
        self,
        history: TrainingHistory,
        config: TrainingConfig,
        epoch: int,
        train_loss: float,
        io_time: float,
        epoch_start: float,
        val: Optional[ArrayPair],
    ) -> bool:
        """Per-epoch bookkeeping shared by the serial and data-parallel
        loops: history, validation, metrics/logging, early stopping.
        Returns True when training should stop."""
        history.train_loss.append(train_loss)
        history.io_time.append(io_time)
        if val is not None:
            val_loss = self.evaluate(val[0], val[1], batch_size=config.batch_size)
        else:
            val_loss = history.train_loss[-1]
        history.val_loss.append(val_loss)
        history.epoch_time.append(time.perf_counter() - epoch_start)

        # Same fields reach the metrics registry and (at verbose) the
        # log stream, so dashboards and console output never disagree.
        registry = default_registry()
        registry.counter("repro_train_epochs_total", "Training epochs completed").inc()
        registry.histogram(
            "repro_train_epoch_seconds", "Wall-clock duration of one training epoch"
        ).observe(history.epoch_time[-1])
        loss_gauge = registry.gauge(
            "repro_train_loss", "Latest per-epoch training/validation loss", ("split",)
        )
        loss_gauge.labels(split="train").set(history.train_loss[-1])
        loss_gauge.labels(split="val").set(val_loss)
        logger.log(
            logging.INFO if config.verbose else logging.DEBUG,
            "epoch %d/%d: train=%.5f val=%.5f epoch_s=%.3f io_s=%.3f",
            epoch + 1, config.epochs, history.train_loss[-1], val_loss,
            history.epoch_time[-1], io_time,
        )

        # Convergence / early-stopping bookkeeping.
        if config.target_loss is not None and val_loss <= config.target_loss:
            history.converged_epoch = epoch + 1
            history.stopped_early = True
            return True
        if val_loss < self._best_val - config.min_delta:
            self._best_val = val_loss
            self._epochs_since_improvement = 0
        else:
            self._epochs_since_improvement += 1
        if config.patience is not None and self._epochs_since_improvement >= config.patience:
            history.stopped_early = True
            return True
        return False

    # -- fine-tuning ------------------------------------------------------------
    def fine_tune(
        self,
        train: Union[ArrayPair, Callable[[], BatchIterable]],
        val: Optional[ArrayPair] = None,
        config: Optional[TrainingConfig] = None,
        freeze_layers: int = 0,
        lr_scale: float = 0.1,
    ) -> TrainingHistory:
        """Fine-tune the (already initialised) model on new data.

        Implements the paper's fine-tuning protocol: optionally freeze the
        first ``freeze_layers`` parameterised layers and train the remainder
        with a learning rate scaled down by ``lr_scale`` relative to the
        from-scratch configuration.
        """
        config = config or TrainingConfig()
        if not 0.0 < lr_scale <= 1.0:
            raise ConfigurationError("lr_scale must be in (0, 1]")
        ft_config = TrainingConfig(
            epochs=config.epochs,
            batch_size=config.batch_size,
            lr=config.lr * lr_scale,
            shuffle=config.shuffle,
            patience=config.patience,
            min_delta=config.min_delta,
            target_loss=config.target_loss,
            verbose=config.verbose,
            seed=config.seed,
        )
        if freeze_layers:
            self.model.freeze_layers(freeze_layers)
        try:
            return self.fit(train, val=val, config=ft_config)
        finally:
            if freeze_layers:
                self.model.unfreeze_all()
