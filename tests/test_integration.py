"""Integration tests spanning multiple subsystems.

These exercise realistic end-to-end paths rather than single modules:
store-backed training through the DataLoader, the complete fairDMS lifecycle
over a drifting experiment, degradation-driven updates, and the interaction of
the labeling baseline with the data service.
"""

import numpy as np
import pytest

from repro.core import FairDMS, FairDS, FairMS, ModelZoo, UpdatePolicy
from repro.dataio import DataLoader, DocumentDBDataset
from repro.datasets import BraggPeakDataset, CookieBoxDataset, DriftSchedule, make_two_phase_schedule
from repro.embedding import PCAEmbedder
from repro.labeling import LabelingEngine
from repro.models import build_braggnn, build_cookienetae
from repro.monitoring import DegradationDetector
from repro.nn.metrics import euclidean_pixel_error
from repro.nn.trainer import Trainer, TrainingConfig
from repro.storage import DocumentDB, get_codec
from repro.workflow import TransferService


@pytest.fixture(scope="module")
def bragg_experiment():
    return BraggPeakDataset(make_two_phase_schedule(n_scans=16, change_at=10, seed=0),
                            peaks_per_scan=80, seed=0)


# ---------------------------------------------------------------------------------
# Store-backed training: documents -> DataLoader -> Trainer
# ---------------------------------------------------------------------------------
def test_training_directly_from_document_store(bragg_experiment):
    """Train BraggNN by streaming mini-batches out of the document database."""
    images, targets = bragg_experiment.stacked(range(2))
    db = DocumentDB(codec=get_codec("blosc"))
    coll = db.collection("bragg")
    coll.insert_many(
        [{"label": targets[i].tolist()} for i in range(images.shape[0])],
        [images[i] for i in range(images.shape[0])],
    )
    loader = DataLoader(DocumentDBDataset(coll), batch_size=32, shuffle=True,
                        num_workers=2, seed=0)
    model = build_braggnn(width=4, seed=0)
    history = Trainer(model).fit(
        loader.as_epoch_callable(), val=(images, targets),
        config=TrainingConfig(epochs=8, batch_size=32, lr=3e-3, seed=0),
    )
    assert history.val_loss[-1] < history.val_loss[0]
    # Store-backed training is as good as in-memory training at this scale.
    err = euclidean_pixel_error(model.predict(images) * 15, targets * 15)
    assert np.median(err) < 2.0


# ---------------------------------------------------------------------------------
# Full fairDMS lifecycle over a drifting experiment
# ---------------------------------------------------------------------------------
def test_fairdms_lifecycle_over_drifting_experiment(bragg_experiment):
    """Bootstrap -> several updates across the phase change -> the Zoo grows and
    every update's model stays usable on its own scan."""
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=6, seed=0)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=4, seed=0),
        training_config=TrainingConfig(epochs=8, batch_size=32, lr=3e-3, seed=0),
        transfer=TransferService(),
        policy=UpdatePolicy(distance_threshold=0.7, certainty_threshold=10.0),
        seed=0,
    )
    hist_x, hist_y = bragg_experiment.stacked(range(3))
    dms.bootstrap(hist_x, hist_y)

    update_scans = [5, 8, 12]
    strategies = []
    for scan_idx in update_scans:
        scan = bragg_experiment.scan(scan_idx)
        report = dms.update_model(scan.images, label=f"scan-{scan_idx}")
        strategies.append(report.strategy)
        err = euclidean_pixel_error(report.model.predict(scan.images) * 15, scan.centers)
        assert np.median(err) < 3.0
        # After each update the newly labeled data is also ingested so the store grows.
        dms.fairds.ingest(scan.images, scan.normalized_centers,
                          metadata=[{"scan": scan_idx}] * len(scan))

    assert len(dms.fairms.zoo) == 1 + len(update_scans)
    assert dms.fairds.store_size() == hist_x.shape[0] + sum(
        len(bragg_experiment.scan(i)) for i in update_scans
    )
    # Same-phase updates reuse Zoo models.
    assert strategies[0] == "fine-tune"


def test_degradation_detection_drives_update(bragg_experiment):
    """Wire the monitoring module to fairDMS: update only when degradation is flagged."""
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=6, seed=0)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=4, seed=0),
        training_config=TrainingConfig(epochs=8, batch_size=32, lr=3e-3, seed=0),
        policy=UpdatePolicy(distance_threshold=0.9, certainty_threshold=5.0),
        seed=0,
    )
    hist_x, hist_y = bragg_experiment.stacked(range(3))
    record = dms.bootstrap(hist_x, hist_y)
    deployed = dms.fairms.zoo.load_model(record.model_id)

    detector = DegradationDetector(deployed, baseline_scans=3, error_factor=1.5,
                                   mc_samples=5, error_metric="mse")
    updates = 0
    for scan_idx in range(3, 14):
        scan = bragg_experiment.scan(scan_idx)
        rec = detector.evaluate_scan(scan_idx, scan.images, scan.normalized_centers)
        if rec.degraded:
            report = dms.update_model(scan.images, label=f"degraded-{scan_idx}")
            deployed = report.model
            detector = DegradationDetector(deployed, baseline_scans=3, error_factor=1.5,
                                           mc_samples=5, error_metric="mse")
            updates += 1
            # New labeled data becomes history for subsequent updates.
            dms.fairds.ingest(scan.images, scan.normalized_centers)
    # Exactly the phase change (at scan 10) should have caused at least one update,
    # and the pre-change scans none.
    assert updates >= 1
    final_scan = bragg_experiment.scan(13)
    err = euclidean_pixel_error(deployed.predict(final_scan.images) * 15, final_scan.centers)
    assert np.median(err) < 3.0


# ---------------------------------------------------------------------------------
# fairDS + conventional labeling interplay
# ---------------------------------------------------------------------------------
def test_pseudo_labels_agree_with_conventional_fitting(bragg_experiment):
    """Labels served by fairDS lookup should be statistically consistent with
    what the pseudo-Voigt fitter would produce on the query data itself."""
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=8, seed=0)
    hist_x, hist_y = bragg_experiment.stacked(range(3))
    fairds.fit(hist_x, hist_y)

    scan = bragg_experiment.scan(4)
    lookup = fairds.lookup(scan.images)
    engine = LabelingEngine(local_workers=2)
    conventional = engine.label(scan.images[:, 0]).labels / 15.0

    # The retrieved labels come from *different* (historical) peaks, so they are
    # not sample-wise comparable; but their distribution over the patch must
    # match the conventional labels' distribution (same experiment phase).
    assert abs(lookup.labels.mean() - conventional.mean()) < 0.05
    assert abs(lookup.labels.std() - conventional.std()) < 0.05


# ---------------------------------------------------------------------------------
# CookieBox end-to-end (second application)
# ---------------------------------------------------------------------------------
def test_cookiebox_end_to_end_reuse():
    experiment = CookieBoxDataset(
        DriftSchedule(n_scans=8, drift_per_scan={"energy_shift": 1.5}, seed=0),
        samples_per_scan=50, n_channels=4, n_bins=16, seed=0,
    )
    hist_x, hist_y = experiment.stacked(range(4))
    fairds = FairDS(PCAEmbedder(embedding_dim=4), n_clusters=4, seed=0)
    fairds.fit(hist_x, hist_y.reshape(hist_y.shape[0], -1))

    zoo = ModelZoo()
    fairms = FairMS(zoo, distance_threshold=0.9)
    config = TrainingConfig(epochs=6, batch_size=32, lr=2e-3, seed=0)
    for group in [(0, 1), (2, 3)]:
        x, y = experiment.stacked(group)
        model = build_cookienetae(n_channels=4, n_bins=16, hidden=32, latent=8, seed=group[0])
        Trainer(model).fit((x, y), val=(x, y), config=config)
        fairms.register(model, fairds.dataset_distribution(x), scans=list(group))

    new_x, new_y = experiment.stacked([5])
    rec = fairms.recommend(fairds.dataset_distribution(new_x))
    # The later-trained Zoo model (scans 2-3) is closer to scan 5 than scans 0-1.
    assert rec.record.metadata["scans"] == [2, 3]
    model = fairms.load(rec)
    hist = Trainer(model).fine_tune((new_x, new_y), val=(new_x, new_y), config=config, lr_scale=0.5)
    assert hist.val_loss[-1] <= hist.val_loss[0]
