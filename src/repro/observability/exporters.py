"""Export surfaces for the observability plane.

Three ways the numbers leave the process:

* **Prometheus text exposition** — :meth:`MetricsRegistry.expose_text`
  produces it; :func:`parse_prometheus_text` is the matching strict parser
  (used by the round-trip tests and the CI smoke step, and handy for
  asserting on scraped output in benchmarks);
* **JSON lines** — :func:`write_metrics_jsonl` (one metric sample per line)
  and :meth:`~repro.observability.tracing.Tracer.export_jsonl` (one span per
  line) for offline analysis;
* **HTTP** — :class:`ObservabilityHTTPServer`, a stdlib-only exposition
  endpoint serving ``/metrics`` (Prometheus text) and ``/traces`` (span
  JSON lines) so a running deployment can be scraped; this is what
  ``repro observe --http`` stands up.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer
from repro.utils.errors import ValidationError
from repro.utils.logging import get_logger

logger = get_logger("repro.observability.exporters")

__all__ = [
    "parse_prometheus_text",
    "write_metrics_jsonl",
    "write_metrics_text",
    "ObservabilityHTTPServer",
]

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return value.replace(r"\"", '"').replace(r"\n", "\n").replace(r"\\", "\\")


def _parse_value(raw: str, line: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    try:
        return float(raw)
    except ValueError:
        raise ValidationError(f"unparseable sample value {raw!r} in line {line!r}") from None


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse Prometheus text exposition into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs, so the result is
    directly comparable/hashable.  Histogram families appear as their
    constituent ``_bucket`` / ``_sum`` / ``_count`` series, exactly as
    exposed.  Raises :class:`~repro.utils.errors.ValidationError` on any
    malformed line — this parser is the round-trip check on
    :meth:`~repro.observability.metrics.MetricsRegistry.expose_text`, so it
    is strict on purpose.
    """
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValidationError(f"unparseable exposition line {line!r}")
        label_text = match.group("labels")
        labels: Dict[str, str] = {}
        if label_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_text):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                consumed += pair.end() - pair.start()
            leftovers = re.sub(r"[,\s]", "", _LABEL_PAIR_RE.sub("", label_text))
            if leftovers:
                raise ValidationError(f"unparseable label text {label_text!r} in {line!r}")
        key = (match.group("name"), tuple(sorted(labels.items())))
        samples[key] = _parse_value(match.group("value"), line)
    return samples


def series_names(samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]) -> set:
    """The distinct metric names in a parsed exposition."""
    return {name for name, _ in samples}


def write_metrics_text(registry: MetricsRegistry, path_or_file: Any) -> str:
    """Dump the registry's Prometheus exposition to a path or open file;
    returns the text written."""
    text = registry.expose_text()
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w") as fh:
            fh.write(text)
    return text


def write_metrics_jsonl(registry: MetricsRegistry, path_or_file: Any) -> int:
    """One JSON object per metric series (counters/gauges: value; histograms:
    buckets/sum/count); returns the number of lines written."""
    lines = []
    for name, family in registry.as_dict().items():
        for label_suffix, value in family["series"].items():
            lines.append(json.dumps({
                "metric": name,
                "kind": family["kind"],
                "labels": label_suffix,
                "value": value,
            }, default=str))
    payload = "".join(line + "\n" for line in lines)
    if hasattr(path_or_file, "write"):
        path_or_file.write(payload)
    else:
        with open(path_or_file, "w") as fh:
            fh.write(payload)
    return len(lines)


class ObservabilityHTTPServer:
    """A stdlib HTTP endpoint exposing live metrics and recent traces.

    ``GET /metrics`` returns the registry's Prometheus text exposition;
    ``GET /traces`` the tracer's buffered spans as JSON lines (empty when no
    tracer was given).  Start/stop explicitly or use as a context manager::

        with ObservabilityHTTPServer(registry, tracer) as server:
            print(server.url)          # http://127.0.0.1:<port>/metrics
            ...

    Binding port 0 (the default) picks a free ephemeral port — read it back
    from :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[Tracer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.tracer = tracer
        self._host = host
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "ObservabilityHTTPServer":
        registry, tracer = self.registry, self.tracer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                path = self.path.split("?", 1)[0].rstrip("/")
                if path in ("", "/metrics"):
                    body = registry.expose_text().encode()
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/traces":
                    spans = tracer.finished_spans() if tracer is not None else []
                    body = "".join(
                        json.dumps(s.to_dict(), default=str) + "\n" for s in spans
                    ).encode()
                    content_type = "application/jsonl; charset=utf-8"
                else:
                    self.send_error(404, "unknown path; try /metrics or /traces")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
                logger.debug("observability http: " + fmt, *args)

        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="observability-http", daemon=True
        )
        self._thread.start()
        logger.info("observability endpoint listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def __enter__(self) -> "ObservabilityHTTPServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
