"""Application models used in the paper's evaluation.

Two supervised "science" models (the paper's benchmark applications):

* :func:`build_braggnn` — BraggNN, a small convolutional regressor that
  predicts the sub-pixel centre of mass of a Bragg diffraction peak from a
  15x15 patch (Liu et al., IUCrJ 2022).
* :func:`build_cookienetae` — CookieNetAE, an encoder-decoder network that
  maps a CookieBox energy-histogram image to the per-channel probability
  density of electron energies.
* :func:`build_tomogan_denoiser` — a TomoGAN-style convolutional denoiser for
  the tomography dataset.

Three self-supervised representation learners used by fairDS to embed images:

* :class:`ConvAutoencoder` — reconstruction-based embedding.
* :class:`SimCLREncoder` / :func:`train_contrastive` — NT-Xent contrastive
  embedding.
* :class:`BYOLLearner` — BYOL (online/target networks, EMA updates,
  augmentation-invariant embedding); this is the method the paper settled on
  for Bragg peaks after the autoencoder proved too sensitive to pixel-level
  differences.
"""

from repro.models.braggnn import build_braggnn, BRAGG_PATCH_SIZE
from repro.models.cookienetae import build_cookienetae, COOKIEBOX_IMAGE_SIZE
from repro.models.tomogan import build_tomogan_denoiser
from repro.models.autoencoder import ConvAutoencoder, DenseAutoencoder
from repro.models.contrastive import SimCLREncoder, train_contrastive
from repro.models.byol import BYOLLearner

__all__ = [
    "build_braggnn",
    "BRAGG_PATCH_SIZE",
    "build_cookienetae",
    "COOKIEBOX_IMAGE_SIZE",
    "build_tomogan_denoiser",
    "ConvAutoencoder",
    "DenseAutoencoder",
    "SimCLREncoder",
    "train_contrastive",
    "BYOLLearner",
]
