"""Fig. 12 — cluster-PDF comparison: input dataset vs best- and worst-ranked models.

The paper visualises why JSD ranking works: across the 15 clusters of the
Bragg embedding space, the input dataset's distribution closely tracks the
best-ranked model's training distribution and clearly differs from the
worst-ranked model's.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import bragg_experiment, build_braggnn_zoo, fitted_bragg_fairds, print_table


@pytest.mark.figure("fig12")
def test_fig12_distribution_comparison(benchmark, report_sink):
    seed = 0
    experiment = bragg_experiment(n_scans=22, change_at=11, peaks_per_scan=100, seed=seed)
    fairds = fitted_bragg_fairds(experiment, scans=[0, 1, 2, 11, 12, 13], n_clusters=15, seed=seed)
    zoo, fairms = build_braggnn_zoo(
        experiment, fairds,
        scan_groups=[(0, 1), (3, 4), (11, 12), (15, 16)],
        epochs=8, seed=seed,
    )

    scan = experiment.scan(5)  # phase-0 test data
    input_dist = fairds.dataset_distribution(scan.images, label="input")
    ranking = fairms.rank(input_dist)
    best, worst = ranking[0], ranking[-1]

    rows = []
    for cluster_id in range(fairds.n_clusters):
        rows.append((
            cluster_id,
            float(input_dist.pdf[cluster_id]),
            float(best.record.distribution.pdf[cluster_id]),
            float(worst.record.distribution.pdf[cluster_id]),
        ))
    print_table(
        f"Fig. 12 — cluster PDFs: input vs best ({best.record.name}) vs worst ({worst.record.name})",
        ["cluster_id", "input_pdf", "best_model_pdf", "worst_model_pdf"],
        rows, sink=report_sink,
    )

    # Shape check: the input distribution is far closer to the best model's
    # training distribution than to the worst model's.
    assert input_dist.distance(best.record.distribution) < input_dist.distance(worst.record.distribution)

    benchmark(lambda: fairds.dataset_distribution(scan.images))
