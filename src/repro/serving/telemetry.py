"""Live telemetry of the serving runtime.

Records, thread-safely and with bounded memory, the signals that matter when
tuning the micro-batching policy:

* **queue depth** — sampled at every admission; rising depth means the
  handlers cannot keep up and ``max_queue_depth`` rejections are near;
* **batch-size distribution** — whether the scheduler actually coalesces
  (all-ones means ``max_wait_ms`` is too small or traffic too light), kept
  **per operation** so multi-op runtimes don't blend distributions;
* **latency / throughput** — per-request admission-to-completion latency
  (p50/p95/p99 over sliding reservoirs, global and per-op) and completed
  requests per second.

:meth:`ServingTelemetry.snapshot` returns a plain dict so the numbers can be
printed, asserted on in benchmarks, or serialised to ``BENCH_*.json``.

Every recording is **also emitted into a metrics registry**
(:mod:`repro.observability.metrics`; the process-global default unless one
is injected) under the ``repro_*`` naming scheme — ``repro_requests_total``,
``repro_request_latency_seconds``, ``repro_batch_size``,
``repro_batch_wait_seconds``, ``repro_queue_depth``, ``repro_serving_knob``
— so a Prometheus scrape of the registry sees every runtime in the process.
The registry's counters are cumulative (never reset — the Prometheus
contract); :meth:`snapshot` is the *windowed* view, and :meth:`reset` (called
automatically when a telemetry object is re-used across a runtime restart)
restarts the window so ``throughput_rps`` is always computed against the
uptime that actually produced the counted completions.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, defaultdict, deque
from typing import Any, Deque, Dict, Optional, Sequence

from repro.observability.metrics import MetricsRegistry, default_registry
from repro.utils.stats import latency_summary

#: Batch-size histogram buckets (requests per flushed micro-batch).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class ServingTelemetry:
    """Thread-safe counters and reservoirs for one serving runtime.

    Parameters
    ----------
    latency_reservoir:
        How many of the most recent per-request latencies are kept for the
        *global* percentile summary; older samples fall out of the sliding
        window so memory stays bounded under sustained traffic.
    per_op_reservoir:
        Reservoir size of each operation's own latency window (one bounded
        deque per op, so one chatty operation cannot evict another op's
        samples from its summary).
    registry:
        The :class:`~repro.observability.metrics.MetricsRegistry` to emit
        into; the process-global default registry when omitted.
    """

    def __init__(
        self,
        latency_reservoir: int = 8192,
        per_op_reservoir: int = 2048,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._lock = threading.Lock()
        self._latency_reservoir = int(latency_reservoir)
        self._per_op_reservoir = int(per_op_reservoir)
        self._latencies: Deque[float] = deque(maxlen=self._latency_reservoir)
        self._op_latencies: Dict[str, Deque[float]] = {}
        self._batch_sizes: Dict[str, Counter] = defaultdict(Counter)
        self._batch_wait_sum: Dict[str, float] = defaultdict(float)
        self._batch_wait_max: Dict[str, float] = defaultdict(float)
        self._depth_sum = 0
        self._depth_count = 0
        self._depth_max = 0
        self._depth_last = 0
        self._accepted: Counter = Counter()
        self._completed: Counter = Counter()
        self._failed: Counter = Counter()
        self._rejected: Counter = Counter()
        # Cumulative across reset()/restart — admission rejections otherwise
        # surface only as ServiceOverloadedError on the client side, so a
        # restarted window would erase the evidence of past overload.
        self._rejected_total: Counter = Counter()
        self._knob_values: Dict[str, Any] = {}
        self._knob_changes: Counter = Counter()
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        # -- the shared metrics plane (cumulative; survives reset()) -------------
        registry = registry or default_registry()
        self.registry = registry
        self._m_requests = registry.counter(
            "repro_requests_total",
            "Serving requests by operation and status "
            "(accepted/completed/failed/rejected)",
            ("op", "status"),
        )
        self._m_latency = registry.histogram(
            "repro_request_latency_seconds",
            "Admission-to-completion latency of served requests",
            ("op",),
        )
        self._m_batch_size = registry.histogram(
            "repro_batch_size",
            "Requests per flushed micro-batch",
            ("op",),
            buckets=_BATCH_SIZE_BUCKETS,
        )
        self._m_batch_wait = registry.histogram(
            "repro_batch_wait_seconds",
            "Queue wait of the oldest request in each flushed micro-batch",
            ("op",),
        )
        self._m_depth = registry.gauge(
            "repro_queue_depth", "Operation queue depth sampled at admission", ("op",)
        )
        self._m_knob = registry.gauge(
            "repro_serving_knob", "Current value of a live serving knob", ("knob",)
        )

    # -- lifecycle ---------------------------------------------------------------
    def _reset_locked(self) -> None:
        self._latencies = deque(maxlen=self._latency_reservoir)
        self._op_latencies = {}
        self._batch_sizes = defaultdict(Counter)
        self._batch_wait_sum = defaultdict(float)
        self._batch_wait_max = defaultdict(float)
        self._depth_sum = 0
        self._depth_count = 0
        self._depth_max = 0
        self._depth_last = 0
        self._accepted = Counter()
        self._completed = Counter()
        self._failed = Counter()
        self._rejected = Counter()
        self._knob_values = {}
        self._knob_changes = Counter()
        self._started_at = None
        self._stopped_at = None

    def reset(self) -> None:
        """Zero the snapshot window: counters, reservoirs, and the uptime
        clock.  The shared metrics registry is deliberately untouched —
        Prometheus counters are cumulative by contract."""
        with self._lock:
            self._reset_locked()

    def mark_started(self) -> None:
        """Start (or restart) the uptime window.

        A telemetry object re-used across a runtime restart resets first:
        otherwise the stale completion counters would be divided by the new
        uptime window and ``throughput_rps`` would report nonsense.
        """
        with self._lock:
            if self._started_at is not None:
                self._reset_locked()
            self._started_at = time.monotonic()
            self._stopped_at = None

    def mark_stopped(self) -> None:
        with self._lock:
            self._stopped_at = time.monotonic()

    # -- recording ---------------------------------------------------------------
    def record_admission(self, op: str, depth: int) -> None:
        """An accepted request, with its operation queue's depth after admit."""
        with self._lock:
            self._accepted[op] += 1
            self._depth_sum += depth
            self._depth_count += 1
            self._depth_last = depth
            if depth > self._depth_max:
                self._depth_max = depth
        self._m_requests.labels(op=op, status="accepted").inc()
        self._m_depth.labels(op=op).set(depth)

    def record_rejection(self, op: str) -> None:
        with self._lock:
            self._rejected[op] += 1
            self._rejected_total[op] += 1
        self._m_requests.labels(op=op, status="rejected").inc()

    def record_batch(self, op: str, size: int, wait_s: float) -> None:
        """A flushed batch: its size and how long its oldest request queued,
        attributed to the operation that produced it."""
        with self._lock:
            self._batch_sizes[op][size] += 1
            self._batch_wait_sum[op] += wait_s
            if wait_s > self._batch_wait_max[op]:
                self._batch_wait_max[op] = wait_s
        self._m_batch_size.labels(op=op).observe(size)
        self._m_batch_wait.labels(op=op).observe(wait_s)

    def record_completion(self, op: str, latency_s: float, failed: bool = False) -> None:
        """One request resolved, ``latency_s`` after its admission."""
        self.record_completions(op, (latency_s,), failed=failed)

    def record_completions(
        self, op: str, latencies_s: Sequence[float], failed: bool = False
    ) -> None:
        """A whole batch resolved — one lock acquisition for all its requests.

        ``failed=True`` marks requests whose handler raised (their futures
        carry the exception); they still count as completed for throughput
        and quiescence, but surface separately so a broken handler cannot
        masquerade as a healthy service.
        """
        with self._lock:
            self._completed[op] += len(latencies_s)
            if failed:
                self._failed[op] += len(latencies_s)
            self._latencies.extend(latencies_s)
            reservoir = self._op_latencies.get(op)
            if reservoir is None:
                reservoir = self._op_latencies.setdefault(
                    op, deque(maxlen=self._per_op_reservoir)
                )
            reservoir.extend(latencies_s)
        self._m_requests.labels(op=op, status="completed").inc(len(latencies_s))
        if failed:
            self._m_requests.labels(op=op, status="failed").inc(len(latencies_s))
        latency_child = self._m_latency.labels(op=op)
        for latency in latencies_s:
            latency_child.observe(latency)

    def record_knob(self, name: str, value: Any, changed: bool = False) -> None:
        """The current value of a live serving knob (e.g. ``n_probe``).

        ``changed=True`` marks an actual live retune (vs the initial value
        recorded at knob registration), so the snapshot can report how often
        each knob moved — the signal autoscaling experiments chart against
        latency.
        """
        with self._lock:
            self._knob_values[name] = value
            if changed:
                self._knob_changes[name] += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self._m_knob.labels(knob=name).set(value)

    # -- reporting ---------------------------------------------------------------
    @staticmethod
    def _batch_section(sizes: Counter, wait_sum: float, wait_max: float) -> Dict[str, Any]:
        n_batches = sum(sizes.values())
        batched_requests = sum(size * count for size, count in sizes.items())
        return {
            "batches": n_batches,
            "mean": batched_requests / n_batches if n_batches else 0.0,
            "max": max(sizes) if sizes else 0,
            "histogram": {size: sizes[size] for size in sorted(sizes)},
            "mean_wait_ms": (wait_sum / n_batches * 1e3) if n_batches else 0.0,
            "max_wait_ms": wait_max * 1e3,
        }

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view of the runtime's health as a plain dict.

        The top-level ``batch_size`` and ``latency_ms`` sections aggregate
        across operations (unchanged shape from earlier releases); each
        ``per_op`` entry additionally carries its own ``batch_size`` and
        ``latency_ms`` sections, so multi-op runtimes can be tuned per
        operation instead of against a blended distribution.
        """
        with self._lock:
            now = self._stopped_at if self._stopped_at is not None else time.monotonic()
            uptime = (now - self._started_at) if self._started_at is not None else 0.0
            accepted = sum(self._accepted.values())
            completed = sum(self._completed.values())
            rejected = sum(self._rejected.values())
            failed = sum(self._failed.values())
            all_sizes: Counter = Counter()
            for sizes in self._batch_sizes.values():
                all_sizes.update(sizes)
            total_wait = sum(self._batch_wait_sum.values())
            max_wait = max(self._batch_wait_max.values(), default=0.0)
            ops = sorted(
                set(self._accepted) | set(self._completed)
                | set(self._rejected) | set(self._failed) | set(self._batch_sizes)
            )
            per_op = {
                op: {
                    "accepted": self._accepted[op],
                    "completed": self._completed[op],
                    "failed": self._failed[op],
                    "rejected": self._rejected[op],
                    "batch_size": self._batch_section(
                        self._batch_sizes.get(op, Counter()),
                        self._batch_wait_sum.get(op, 0.0),
                        self._batch_wait_max.get(op, 0.0),
                    ),
                    "latency_ms": latency_summary(self._op_latencies.get(op, ())),
                }
                for op in ops
            }
            return {
                "uptime_s": uptime,
                "accepted": accepted,
                "completed": completed,
                "rejected": rejected,
                # Lifetime rejections (survives reset()/mark_started), so a
                # restarted window cannot hide past admission pressure.
                "rejected_total": sum(self._rejected_total.values()),
                "failed": failed,
                "in_flight": accepted - completed,
                "throughput_rps": completed / uptime if uptime > 0 else 0.0,
                "latency_ms": latency_summary(self._latencies),
                "batch_size": self._batch_section(all_sizes, total_wait, max_wait),
                "queue_depth": {
                    "mean": self._depth_sum / self._depth_count if self._depth_count else 0.0,
                    "max": self._depth_max,
                    "last": self._depth_last,
                },
                "knobs": {
                    name: {"value": self._knob_values[name],
                           "changes": self._knob_changes[name]}
                    for name in sorted(self._knob_values)
                },
                "per_op": per_op,
            }

    def format_snapshot(self) -> str:
        """The snapshot rendered as a short human-readable block."""
        snap = self.snapshot()
        lat, batch, depth = snap["latency_ms"], snap["batch_size"], snap["queue_depth"]
        lines = [
            f"serving telemetry ({snap['uptime_s']:.2f}s up)",
            f"  requests   accepted={snap['accepted']} completed={snap['completed']} "
            f"rejected={snap['rejected']} (lifetime {snap['rejected_total']}) "
            f"failed={snap['failed']} in_flight={snap['in_flight']}",
            f"  throughput {snap['throughput_rps']:.1f} req/s",
            f"  latency    p50={lat['p50_ms']:.2f}ms p95={lat['p95_ms']:.2f}ms "
            f"p99={lat['p99_ms']:.2f}ms max={lat['max_ms']:.2f}ms",
            f"  batches    n={batch['batches']} mean_size={batch['mean']:.1f} "
            f"max_size={batch['max']} mean_wait={batch['mean_wait_ms']:.2f}ms",
            f"  queue      mean_depth={depth['mean']:.1f} max_depth={depth['max']}",
        ]
        for op, counts in snap["per_op"].items():
            op_lat = counts["latency_ms"]
            lines.append(
                f"  op {op:28s} accepted={counts['accepted']} "
                f"completed={counts['completed']} failed={counts['failed']} "
                f"rejected={counts['rejected']} p95={op_lat['p95_ms']:.2f}ms"
            )
        return "\n".join(lines)
