"""Async DAG orchestration engine with retries, timeouts, and durable checkpoints.

A :class:`Pipeline` is a set of named :class:`PipelineStep` nodes connected by
``depends_on`` edges.  Ready steps (all dependencies completed) execute
concurrently on a thread pool, so independent branches of the graph — e.g.
pseudo-labeling one scan while the previous scan's model is still training —
overlap instead of serialising the way the old linear ``Flow`` did.

Fault tolerance is per step:

* ``retries`` re-runs a failed attempt (with an optional ``retry_delay_s``
  backoff) before the step is declared failed;
* ``timeout_s`` bounds one attempt's wall-clock time — a stuck attempt raises
  :class:`~repro.utils.errors.StepTimeoutError` (which counts as a failed
  attempt and is therefore retriable);
* a failed step fails only its *transitive dependents* (marked ``skipped``);
  independent branches keep running to completion.

Durability: give the pipeline a :class:`CheckpointStore` (a thin layer over a
:class:`~repro.storage.documentdb.DocumentDB` collection) and call
:meth:`Pipeline.run` with a ``run_id``.  Every completed step's output is
persisted under ``(pipeline, run_id, step)``; re-running the same ``run_id``
— after a crash, or from a different process via
:meth:`~repro.storage.documentdb.DocumentDB.save` /
:meth:`~repro.storage.documentdb.DocumentDB.load` — restores those outputs
into the context and re-executes only the steps that never completed.
Steps with side effects that must re-apply on resume (e.g. swapping the live
serving model) opt out with ``checkpoint=False``.

Checkpointing is **at-least-once**: a checkpoint is written after the step
completes, so a crash landing exactly between the two re-executes the step
on resume.  Steps whose side effects must not duplicate (e.g. registering a
model) should therefore be idempotent — keyed on the run id, like the
continual-learning promote step — or opt out of checkpointing entirely.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability.metrics import default_registry
from repro.observability.tracing import Span, Tracer
from repro.storage.documentdb import Collection, DocumentDB
from repro.utils.errors import ConfigurationError, StepTimeoutError
from repro.utils.logging import get_logger

logger = get_logger("repro.workflow.pipeline")

#: Step lifecycle states recorded in :class:`PipelineResult.statuses`.
PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
RESUMED = "resumed"
FAILED = "failed"
SKIPPED = "skipped"

#: Reserved context key: names of the steps restored from checkpoints (set
#: only on checkpointed runs, i.e. when both a run_id and a store are given).
RESUMED_CONTEXT_KEY = "pipeline_resumed"


@dataclass
class PipelineStep:
    """One node of the DAG.

    ``fn`` receives the shared context dict; its return value is stored under
    ``output_key`` (when given) once the step completes, and — when the run is
    checkpointed — persisted so a resumed run can restore it without
    re-executing the step.  Steps that mutate external state which must be
    re-applied after a crash should set ``checkpoint=False``.
    """

    name: str
    fn: Callable[[Dict[str, Any]], Any]
    depends_on: Tuple[str, ...] = ()
    output_key: Optional[str] = None
    retries: int = 0
    retry_delay_s: float = 0.0
    timeout_s: Optional[float] = None
    checkpoint: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pipeline steps must be named")
        if self.retries < 0:
            raise ConfigurationError("retries must be non-negative")
        if self.retry_delay_s < 0:
            raise ConfigurationError("retry_delay_s must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive when set")
        self.depends_on = tuple(self.depends_on)
        if self.name in self.depends_on:
            raise ConfigurationError(f"step {self.name!r} cannot depend on itself")


@dataclass
class Checkpoint:
    """A persisted record of one completed step of one run."""

    step: str
    has_output: bool
    value: Any = None


class CheckpointStore:
    """Persists per-step completion records in a document collection.

    Keyed on ``(pipeline, run_id, step)``; the step's output value (when it
    has one) travels as the document payload through the database codec, so
    numpy arrays, models, and lookup results all round-trip.  Because the
    backing :class:`DocumentDB` supports ``save``/``load``, checkpoints
    survive process death.
    """

    def __init__(self, db: Optional[DocumentDB] = None, collection: str = "pipeline_checkpoints"):
        self.db = db or DocumentDB()
        self.collection_name = collection
        self.collection.create_index("run_id")

    @property
    def collection(self) -> Collection:
        return self.db.collection(self.collection_name)

    def record(self, pipeline: str, run_id: str, step: str,
               value: Any = None, has_output: bool = False) -> str:
        """Upsert the checkpoint of ``step`` for ``(pipeline, run_id)``."""
        return self.collection.upsert_one(
            {"pipeline": pipeline, "run_id": run_id, "step": step},
            {"has_output": bool(has_output), "completed_at": time.time()},
            # Wrap in a tuple so a legitimate None output is distinguishable
            # from "no payload stored".
            payload=(value,) if has_output else None,
        )

    def completed(self, pipeline: str, run_id: str) -> Dict[str, Checkpoint]:
        """All recorded checkpoints of one run, keyed by step name."""
        docs = self.collection.find(
            {"pipeline": pipeline, "run_id": run_id}, decode_payload=True
        )
        out: Dict[str, Checkpoint] = {}
        for doc in docs:
            has_output = bool(doc.get("has_output")) and "payload" in doc
            value = doc["payload"][0] if has_output else None
            out[doc["step"]] = Checkpoint(step=doc["step"], has_output=has_output, value=value)
        return out

    def count(self, pipeline: str, run_id: str) -> int:
        """How many checkpoints one run has recorded (no payload decoding)."""
        return self.collection.count({"pipeline": pipeline, "run_id": run_id})

    def clear(self, pipeline: str, run_id: Optional[str] = None) -> int:
        """Delete the checkpoints of one run (or of every run of a pipeline)."""
        query: Dict[str, Any] = {"pipeline": pipeline}
        if run_id is not None:
            query["run_id"] = run_id
        return self.collection.delete_many(query)


@dataclass
class PipelineResult:
    """Outcome of one :meth:`Pipeline.run`."""

    context: Dict[str, Any]
    statuses: Dict[str, str] = field(default_factory=dict)
    step_times: Dict[str, float] = field(default_factory=dict)
    step_attempts: Dict[str, int] = field(default_factory=dict)
    errors: Dict[str, BaseException] = field(default_factory=dict)
    #: Steps restored from checkpoints instead of executed, in topological order.
    resumed: List[str] = field(default_factory=list)
    #: Topological order the engine used (deterministic for a given pipeline).
    order: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return all(s in (COMPLETED, RESUMED) for s in self.statuses.values())

    @property
    def failed_steps(self) -> List[str]:
        return [name for name in self.order if self.statuses.get(name) == FAILED]

    @property
    def skipped_steps(self) -> List[str]:
        return [name for name in self.order if self.statuses.get(name) == SKIPPED]

    @property
    def total_time(self) -> float:
        return float(sum(self.step_times.values()))


class Pipeline:
    """A DAG of steps executed concurrently with checkpointed resume."""

    def __init__(
        self,
        name: str,
        steps: Optional[Sequence[PipelineStep]] = None,
        max_workers: int = 4,
        checkpoints: Optional[CheckpointStore] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not name:
            raise ConfigurationError("pipeline must have a name")
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.name = name
        self.steps: List[PipelineStep] = list(steps or [])
        self.max_workers = int(max_workers)
        self.checkpoints = checkpoints
        #: Optional tracer: each (sampled) run gets a ``pipeline.run`` root
        #: span with one ``pipeline.step.<name>`` child per executed step;
        #: steps' own ``trace_span`` instrumentation nests underneath.
        self.tracer = tracer

    # -- construction ------------------------------------------------------------
    def add_step(
        self,
        name: str,
        fn: Callable[[Dict[str, Any]], Any],
        depends_on: Sequence[str] = (),
        output_key: Optional[str] = None,
        retries: int = 0,
        retry_delay_s: float = 0.0,
        timeout_s: Optional[float] = None,
        checkpoint: bool = True,
    ) -> "Pipeline":
        """Add a step; returns ``self`` for chaining."""
        self.steps.append(
            PipelineStep(
                name=name, fn=fn, depends_on=tuple(depends_on), output_key=output_key,
                retries=retries, retry_delay_s=retry_delay_s, timeout_s=timeout_s,
                checkpoint=checkpoint,
            )
        )
        return self

    def step(self, name: str) -> PipelineStep:
        """Look up a step by name."""
        for step in self.steps:
            if step.name == name:
                return step
        raise ConfigurationError(f"pipeline {self.name!r} has no step {name!r}")

    # -- validation --------------------------------------------------------------
    def validate(self) -> List[str]:
        """Check the graph and return a deterministic topological order.

        Raises :class:`ConfigurationError` on duplicate step names, unknown
        dependencies, or cycles.
        """
        names = [s.name for s in self.steps]
        seen: set = set()
        for name in names:
            if name in seen:
                raise ConfigurationError(f"duplicate step name {name!r}")
            seen.add(name)
        for step in self.steps:
            unknown = set(step.depends_on) - seen
            if unknown:
                raise ConfigurationError(
                    f"step {step.name!r} depends on unknown steps: {sorted(unknown)}"
                )
            if step.output_key == RESUMED_CONTEXT_KEY:
                raise ConfigurationError(
                    f"output_key {RESUMED_CONTEXT_KEY!r} is reserved for the engine"
                )
        # Kahn's algorithm; ties broken by declaration order so the schedule
        # (and therefore failure attribution) is reproducible.
        indegree = {s.name: len(set(s.depends_on)) for s in self.steps}
        dependents: Dict[str, List[str]] = defaultdict(list)
        for step in self.steps:
            for dep in set(step.depends_on):
                dependents[dep].append(step.name)
        order: List[str] = []
        ready = [name for name in names if indegree[name] == 0]
        while ready:
            name = ready.pop(0)
            order.append(name)
            for child in dependents[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(names):
            cycle = sorted(set(names) - set(order))
            raise ConfigurationError(f"pipeline {self.name!r} has a dependency cycle among {cycle}")
        return order

    # -- execution ---------------------------------------------------------------
    def run(
        self,
        initial_context: Optional[Dict[str, Any]] = None,
        run_id: Optional[str] = None,
        raise_on_error: bool = False,
    ) -> PipelineResult:
        """Execute the DAG.

        With a ``run_id`` and a configured :class:`CheckpointStore`, steps
        already checkpointed for that run are *resumed* (their outputs are
        restored into the context, they are not re-executed) — except steps
        declared with ``checkpoint=False``, which always re-run.  The
        reserved context key :data:`RESUMED_CONTEXT_KEY` then holds the
        resumed step names (topological order), so re-running steps can tell
        whether their upstream artifacts came from checkpoints of a crashed
        run or were produced fresh (the key is absent on non-checkpointed
        runs, and may not be used as an ``output_key``).  When ``raise_on_error`` is set the first failing
        step's exception is re-raised after the rest of the graph has
        settled.
        """
        order = self.validate()
        by_name = {s.name: s for s in self.steps}
        context: Dict[str, Any] = dict(initial_context or {})
        result = PipelineResult(context=context, order=order)
        result.statuses = {name: PENDING for name in order}
        ctx_lock = threading.Lock()

        deps_left = {s.name: set(s.depends_on) for s in self.steps}
        dependents: Dict[str, List[str]] = defaultdict(list)
        for step in self.steps:
            for dep in set(step.depends_on):
                dependents[dep].append(step.name)

        # Restore checkpoints (topological order, so a step only resumes when
        # every dependency resumed too — a checkpoint above a re-running
        # dependency is stale and is re-executed instead).  A dependency
        # declared ``checkpoint=False`` re-runs *by design* (side-effect
        # re-application); it does not make downstream checkpoints stale, so
        # it counts as resume-compatible when its own dependencies do.
        checkpointed: Dict[str, Checkpoint] = {}
        if run_id is not None and self.checkpoints is not None:
            checkpointed = self.checkpoints.completed(self.name, run_id)
        resumed: set = set()
        resume_ok: set = set()  # resumed steps + re-run-by-design steps above them
        for name in order:
            step = by_name[name]
            if any(dep not in resume_ok for dep in step.depends_on):
                continue
            if not step.checkpoint:
                resume_ok.add(name)  # will execute, but doesn't block resume below
                continue
            entry = checkpointed.get(name)
            if entry is None:
                continue
            resumed.add(name)
            resume_ok.add(name)
            result.statuses[name] = RESUMED
            result.resumed.append(name)
            if step.output_key is not None and entry.has_output:
                context[step.output_key] = entry.value
        # Rewire the graph around resumed steps.  A resumed step satisfies its
        # dependents immediately — EXCEPT that any re-running ancestor
        # reachable through a chain of resumed steps (a ``checkpoint=False``
        # step re-applying its side effect) remains a real prerequisite: its
        # still-pending transitive dependents must run after it, and must be
        # skipped if it fails, exactly as on a fresh run.
        rerun_upstream: Dict[str, set] = {}
        for name in order:
            if name not in resumed:
                continue
            ancestors: set = set()
            for dep in by_name[name].depends_on:
                if dep in resumed:
                    ancestors |= rerun_upstream.get(dep, set())
                else:
                    ancestors.add(dep)  # a step that will (re-)execute
            rerun_upstream[name] = ancestors
            for child in list(dependents[name]):
                deps_left[child].discard(name)
                if child in resumed:
                    continue
                for ancestor in ancestors:
                    if child not in dependents[ancestor]:
                        deps_left[child].add(ancestor)
                        dependents[ancestor].append(child)
        if run_id is not None and self.checkpoints is not None:
            context[RESUMED_CONTEXT_KEY] = [name for name in order if name in resumed]
        if resumed:
            logger.info("pipeline %r run %r: resumed %d/%d steps from checkpoints",
                        self.name, run_id, len(resumed), len(order))

        trace_root: Optional[Span] = None
        if self.tracer is not None:
            trace_root = self.tracer.start_trace(
                "pipeline.run", pipeline=self.name,
                run_id=run_id if run_id is not None else "",
                steps=len(order), resumed=len(resumed),
            )
        registry = default_registry()
        m_steps = registry.counter(
            "repro_pipeline_steps_total",
            "Workflow pipeline steps by terminal status",
            ("pipeline", "status"),
        )
        m_step_seconds = registry.histogram(
            "repro_pipeline_step_seconds",
            "Wall-clock duration of executed workflow pipeline steps",
            ("pipeline", "step"),
        )

        def handle_completion(name: str, outcome: Tuple) -> List[str]:
            """Record one step's outcome; returns newly ready step names."""
            step = by_name[name]
            value, attempts, elapsed, error = outcome
            result.step_attempts[name] = attempts
            result.step_times[name] = elapsed
            m_steps.labels(
                pipeline=self.name, status=FAILED if error is not None else COMPLETED
            ).inc()
            m_step_seconds.labels(pipeline=self.name, step=name).observe(elapsed)
            if error is not None:
                result.statuses[name] = FAILED
                result.errors[name] = error
                logger.warning("pipeline %r step %r failed after %d attempt(s): %s",
                               self.name, name, attempts, error)
                # Fail only the transitive dependents; siblings continue.
                stack = list(dependents[name])
                while stack:
                    child = stack.pop()
                    if result.statuses[child] == PENDING:
                        result.statuses[child] = SKIPPED
                        m_steps.labels(pipeline=self.name, status=SKIPPED).inc()
                        stack.extend(dependents[child])
                return []
            result.statuses[name] = COMPLETED
            if step.output_key is not None:
                with ctx_lock:
                    context[step.output_key] = value
            if run_id is not None and self.checkpoints is not None and step.checkpoint:
                try:
                    self.checkpoints.record(
                        self.name, run_id, name,
                        value=value if step.output_key is not None else None,
                        has_output=step.output_key is not None,
                    )
                except Exception:
                    # Durability degrades (the step re-runs on resume) but
                    # this run proceeds with the in-memory output — e.g. an
                    # unpicklable step output must not crash the whole graph
                    # after the step succeeded.
                    logger.exception(
                        "pipeline %r step %r: checkpoint write failed; "
                        "the step will re-run on resume", self.name, name,
                    )
            ready: List[str] = []
            for child in dependents[name]:
                deps_left[child].discard(name)
                if not deps_left[child] and result.statuses[child] == PENDING:
                    ready.append(child)
            return ready

        initial_ready = [name for name in order
                         if name not in resumed and not deps_left[name]]
        try:
            if self.max_workers == 1:
                # Serial pipelines (incl. every legacy Flow) execute on the
                # calling thread: no pool hand-off, and Ctrl-C lands directly in
                # the running step instead of blocking on a pool shutdown.
                queue: List[str] = list(initial_ready)
                while queue:
                    name = queue.pop(0)
                    result.statuses[name] = RUNNING
                    queue.extend(handle_completion(
                        name, self._run_step(by_name[name], context, trace_root)
                    ))
            else:
                futures: Dict[Future, str] = {}
                pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix=f"pipeline-{self.name}"
                )
                try:
                    for name in initial_ready:
                        result.statuses[name] = RUNNING
                        futures[pool.submit(
                            self._run_step, by_name[name], context, trace_root
                        )] = name
                    while futures:
                        done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                        for fut in done:
                            name = futures.pop(fut)
                            for child in handle_completion(name, fut.result()):
                                result.statuses[child] = RUNNING
                                futures[pool.submit(
                                    self._run_step, by_name[child], context, trace_root
                                )] = child
                    pool.shutdown(wait=True)
                except BaseException:
                    # Best effort on interrupt: stop feeding work and don't block
                    # on steps already running (they cannot be killed).
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
        finally:
            if trace_root is not None:
                self.tracer.end(
                    trace_root, status="ok" if result.succeeded else "error"
                )

        if raise_on_error and result.failed_steps:
            raise result.errors[result.failed_steps[0]]
        return result

    # -- one step ----------------------------------------------------------------
    def _run_step(
        self, step: PipelineStep, context: Dict[str, Any],
        trace_root: Optional[Span] = None,
    ) -> Tuple[Any, int, float, Optional[BaseException]]:
        """Run one step with retries; never raises for ordinary exceptions.

        ``KeyboardInterrupt``/``SystemExit`` are *not* absorbed — they
        propagate through the future into the orchestrating thread.

        With a sampled ``trace_root``, the whole step (all attempts) runs
        under a ``pipeline.step.<name>`` span activated on this worker
        thread, so the step body's own ``trace_span`` calls nest under it.
        """
        span = None
        if trace_root is not None:
            span = self.tracer.start_span(
                f"pipeline.step.{step.name}", trace_root, step=step.name
            )
        start = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                if span is not None:
                    with self.tracer.activate(span):
                        value = self._attempt(step, context)
                else:
                    value = self._attempt(step, context)
                if span is not None:
                    span.set_attribute("attempts", attempts)
                    self.tracer.end(span)
                return value, attempts, time.perf_counter() - start, None
            except Exception as exc:
                if attempts > step.retries:
                    if span is not None:
                        span.set_attribute("attempts", attempts)
                        self.tracer.end(span, status="error")
                    return None, attempts, time.perf_counter() - start, exc
                if step.retry_delay_s > 0:
                    time.sleep(step.retry_delay_s)

    @staticmethod
    def _attempt(step: PipelineStep, context: Dict[str, Any]) -> Any:
        """One attempt of ``step.fn``, bounded by ``timeout_s`` when set.

        Python threads cannot be killed, so a timed-out attempt is abandoned
        (its daemon thread may still be running) and reported as
        :class:`StepTimeoutError`; a retry starts a fresh attempt.
        """
        if step.timeout_s is None:
            return step.fn(context)
        outcome: Dict[str, Any] = {}
        finished = threading.Event()

        def target() -> None:
            try:
                outcome["value"] = step.fn(context)
            except BaseException as exc:  # noqa: BLE001 — relayed to the caller below
                outcome["error"] = exc
            finally:
                finished.set()

        worker = threading.Thread(target=target, daemon=True, name=f"step-{step.name}")
        worker.start()
        if not finished.wait(step.timeout_s):
            raise StepTimeoutError(
                f"step {step.name!r} exceeded its timeout of {step.timeout_s} s"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]
