"""Fig. 6 — Tomography data: storage backend vs training/I-O time.

Paper setting: 2048x2048 16-bit slices read from remote MongoDB (Blosc /
Pickle serialisation) or directly from NFS; epoch time vs batch size (left)
and per-iteration I/O time vs number of reader workers (right).  Here the
slices are smaller and the network is simulated, but the comparison structure
and trends are the same: deserialisation makes the DB codecs slower per fetch,
and reader parallelism hides that latency.
"""

from __future__ import annotations

import pytest

from repro.datasets import DriftSchedule, TomographyDataset

from common import print_table
from storage_study import build_backends, check_storage_trends, epoch_time_vs_batch_size, io_time_vs_workers

BATCH_SIZES = (8, 16, 32)
WORKER_COUNTS = (0, 2, 4, 8)


@pytest.mark.figure("fig6")
def test_fig06_storage_study_tomography(benchmark, report_sink):
    data = TomographyDataset(DriftSchedule(n_scans=2), slices_per_scan=40, image_size=64, seed=0)
    noisy, clean = data.stacked([0, 1])
    backends, store = build_backends(noisy, clean)
    try:
        epoch_rows = epoch_time_vs_batch_size(backends, BATCH_SIZES, workers=4,
                                              compute_per_batch=0.002)
        io_rows = io_time_vs_workers(backends, WORKER_COUNTS, batch_size=16)
        print_table("Fig. 6a — Tomography: epoch time [s] vs batch size (4 workers)",
                    ["backend", "batch_size", "epoch_s"], epoch_rows, sink=report_sink)
        print_table("Fig. 6b — Tomography: I/O time [ms/batch] vs #workers (batch 16)",
                    ["backend", "workers", "ms_per_batch"], io_rows, sink=report_sink)
        check_storage_trends(io_rows)

        # pytest-benchmark target: one full epoch of DB reads with prefetching.
        loader_ds = backends["pickle"]
        from repro.dataio import DataLoader

        benchmark(lambda: sum(bx.shape[0] for bx, _ in DataLoader(loader_ds, batch_size=16, num_workers=4)))
    finally:
        store.cleanup()
