"""Shared pytest fixtures and numerical-gradient-check helpers."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function ``fn`` wrt array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn()
        x[idx] = orig - eps
        f_minus = fn()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x: np.ndarray, atol: float = 1e-5) -> None:
    """Verify a layer's analytic input and parameter gradients against finite differences.

    Central differences with eps ~ 1e-6 are meaningless in float32, so the
    layer is switched to float64 for the check (the analytic backward math is
    dtype-independent).
    """
    layer.to_dtype(np.float64)
    x = np.asarray(x, dtype=np.float64)

    def loss_fn() -> float:
        out = layer.forward(x, training=True)
        return float(np.sum(out**2) / 2.0)

    # Analytic gradients: forward (training), backward with dL/dout = out.
    out = layer.forward(x, training=True)
    layer.zero_grad()
    grad_in = layer.backward(out)

    num_grad_in = numerical_gradient(loss_fn, x)
    np.testing.assert_allclose(grad_in, num_grad_in, atol=atol, rtol=1e-4)

    for p in layer.parameters():
        # Recompute analytic gradients so parameter grads correspond to the
        # current parameter values.
        layer.zero_grad()
        out = layer.forward(x, training=True)
        layer.backward(out)
        analytic = p.grad.copy()
        numeric = numerical_gradient(loss_fn, p.data)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)
