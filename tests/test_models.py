"""Tests for the application models (BraggNN, CookieNetAE, TomoGAN, embedders)."""

import numpy as np
import pytest

from repro.models.autoencoder import ConvAutoencoder, DenseAutoencoder
from repro.models.braggnn import BRAGG_PATCH_SIZE, build_braggnn
from repro.models.byol import BYOLLearner
from repro.models.contrastive import SimCLREncoder, train_contrastive
from repro.models.cookienetae import build_cookienetae
from repro.models.tomogan import build_tomogan_denoiser
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.errors import NotFittedError, ValidationError


def _noise_augment(batch, rng):
    return batch + 0.05 * rng.standard_normal(batch.shape)


# -- BraggNN -----------------------------------------------------------------
def test_braggnn_output_shape(rng):
    model = build_braggnn(width=4)
    x = rng.random((6, 1, BRAGG_PATCH_SIZE, BRAGG_PATCH_SIZE))
    assert model.forward(x).shape == (6, 2)


def test_braggnn_has_dropout_for_mc_uq():
    assert build_braggnn().has_dropout()


def test_braggnn_invalid_patch_size():
    with pytest.raises(ValueError):
        build_braggnn(patch_size=14)
    with pytest.raises(ValueError):
        build_braggnn(patch_size=3)
    with pytest.raises(ValueError):
        build_braggnn(width=0)


def test_braggnn_learns_peak_centers():
    """BraggNN should learn to localise synthetic peaks better than chance."""
    from repro.datasets.drift import ExperimentCondition
    from repro.datasets.bragg import generate_bragg_scan

    scan = generate_bragg_scan(ExperimentCondition(scan_index=0), n_peaks=200, seed=0)
    x, y = scan.images, scan.normalized_centers
    model = build_braggnn(width=4, seed=0)
    trainer = Trainer(model)
    hist = trainer.fit((x[:160], y[:160]), val=(x[160:], y[160:]),
                       config=TrainingConfig(epochs=15, batch_size=32, lr=3e-3, seed=0))
    # Predicting the patch centre for everything gives ~ (spread/patch)^2 MSE;
    # the trained model must beat a generous multiple of chance.
    baseline = np.mean((y[160:] - 0.5) ** 2)
    assert hist.val_loss[-1] < baseline


# -- CookieNetAE -------------------------------------------------------------------
def test_cookienetae_outputs_row_stochastic(rng):
    model = build_cookienetae(n_channels=4, n_bins=16)
    x = rng.random((5, 4 * 16))
    out = model.forward(x)
    assert out.shape == (5, 4, 16)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-6)  # float32 compute


def test_cookienetae_invalid_config():
    with pytest.raises(ValueError):
        build_cookienetae(n_channels=0)
    with pytest.raises(ValueError):
        build_cookienetae(n_bins=1)


# -- TomoGAN denoiser ----------------------------------------------------------------
def test_tomogan_preserves_shape(rng):
    model = build_tomogan_denoiser(width=2, depth=2)
    x = rng.random((2, 1, 16, 16))
    out = model.forward(x)
    assert out.shape == x.shape
    assert np.all((out >= 0) & (out <= 1))


def test_tomogan_invalid_config():
    with pytest.raises(ValueError):
        build_tomogan_denoiser(depth=0)
    with pytest.raises(ValueError):
        build_tomogan_denoiser(width=0)


# -- DenseAutoencoder ------------------------------------------------------------------
def test_autoencoder_fit_and_encode(rng):
    x = rng.random((80, 32))
    ae = DenseAutoencoder(32, latent_dim=4, hidden=32, seed=0)
    hist = ae.fit(x, epochs=10, batch_size=16, seed=0)
    assert hist.train_loss[-1] < hist.train_loss[0]
    z = ae.encode(x)
    assert z.shape == (80, 4)
    recon = ae.reconstruct(x)
    assert recon.shape == x.shape
    errs = ae.reconstruction_error(x)
    assert errs.shape == (80,)
    assert np.all(errs >= 0)


def test_autoencoder_encode_before_fit_raises(rng):
    ae = DenseAutoencoder(16, latent_dim=2)
    with pytest.raises(NotFittedError):
        ae.encode(rng.random((3, 16)))


def test_autoencoder_validates_dimensions():
    with pytest.raises(ValidationError):
        DenseAutoencoder(8, latent_dim=8)  # no bottleneck
    with pytest.raises(ValidationError):
        DenseAutoencoder(0, latent_dim=2)


def test_autoencoder_rejects_wrong_input_width(rng):
    ae = DenseAutoencoder(16, latent_dim=2)
    with pytest.raises(ValidationError):
        ae.fit(rng.random((10, 8)), epochs=1)


def test_conv_autoencoder_accepts_image_stacks(rng):
    ae = ConvAutoencoder((8, 8), latent_dim=3, hidden=32, seed=0)
    imgs = rng.random((40, 8, 8))
    ae.fit(imgs, epochs=5, batch_size=16, seed=0)
    z = ae.encode(imgs)
    assert z.shape == (40, 3)
    # (n, 1, H, W) form also accepted.
    z4 = ae.encode(imgs[:, None, :, :])
    np.testing.assert_allclose(z, z4)


def test_conv_autoencoder_rejects_wrong_image_shape(rng):
    ae = ConvAutoencoder((8, 8), latent_dim=3)
    with pytest.raises(ValidationError):
        ae.fit(rng.random((4, 6, 6)), epochs=1)


# -- SimCLR ---------------------------------------------------------------------------
def test_simclr_fit_and_encode(rng):
    x = rng.random((60, 20))
    enc = SimCLREncoder(20, embedding_dim=4, projection_dim=3, hidden=16, seed=0)
    losses = enc.fit(x, _noise_augment, epochs=4, batch_size=16, seed=0)
    assert len(losses) == 4
    z = enc.encode(x)
    assert z.shape == (60, 4)


def test_simclr_encode_before_fit(rng):
    enc = SimCLREncoder(10, embedding_dim=2)
    with pytest.raises(NotFittedError):
        enc.encode(rng.random((3, 10)))


def test_simclr_requires_two_samples(rng):
    enc = SimCLREncoder(10, embedding_dim=2)
    with pytest.raises(ValidationError):
        enc.fit(rng.random((1, 10)), _noise_augment, epochs=1)


def test_train_contrastive_convenience(rng):
    x = rng.random((30, 4, 4))
    enc = train_contrastive(x, _noise_augment, embedding_dim=3, epochs=2, seed=0, hidden=16)
    assert enc.encode(x).shape == (30, 3)


# -- BYOL ---------------------------------------------------------------------------------
def test_byol_fit_and_encode(rng):
    x = rng.random((60, 20))
    learner = BYOLLearner(20, embedding_dim=4, projection_dim=3, hidden=16, seed=0)
    losses = learner.fit(x, _noise_augment, epochs=4, batch_size=16, seed=0)
    assert len(losses) == 4
    assert all(0.0 <= l <= 4.0 for l in losses)
    z = learner.encode(x)
    assert z.shape == (60, 4)


def test_byol_loss_decreases(rng):
    x = rng.random((100, 16))
    learner = BYOLLearner(16, embedding_dim=4, projection_dim=4, hidden=32, seed=0)
    losses = learner.fit(x, _noise_augment, epochs=8, batch_size=32, lr=2e-3, seed=0)
    assert losses[-1] < losses[0]


def test_byol_target_network_tracks_online(rng):
    x = rng.random((40, 10))
    learner = BYOLLearner(10, embedding_dim=3, hidden=8, ema_decay=0.5, seed=0)
    before = [p.data.copy() for p in learner.target_encoder.parameters()]
    learner.fit(x, _noise_augment, epochs=2, batch_size=20, seed=0)
    after = learner.target_encoder.parameters()
    assert any(not np.allclose(b, a.data) for b, a in zip(before, after))


def test_byol_validation():
    with pytest.raises(ValidationError):
        BYOLLearner(0, embedding_dim=2)
    with pytest.raises(ValidationError):
        BYOLLearner(8, embedding_dim=2, ema_decay=1.5)


def test_byol_encode_before_fit(rng):
    learner = BYOLLearner(8, embedding_dim=2)
    with pytest.raises(NotFittedError):
        learner.encode(rng.random((2, 8)))


def test_byol_embedding_is_augmentation_invariant(rng):
    """The reason the paper chose BYOL: embeddings should barely move under the
    augmentations the model was trained with, relative to inter-sample distances."""
    x = rng.random((80, 16))
    learner = BYOLLearner(16, embedding_dim=4, hidden=32, seed=0)
    learner.fit(x, _noise_augment, epochs=10, batch_size=32, lr=2e-3, seed=0)
    z = learner.encode(x)
    z_aug = learner.encode(_noise_augment(x, np.random.default_rng(1)))
    drift = np.linalg.norm(z - z_aug, axis=1).mean()
    spread = np.linalg.norm(z - z.mean(axis=0), axis=1).mean()
    assert drift < spread
