"""Experiment-condition drift model.

The core premise of fairDMS is that experimental conditions (sample
deformation, beam configuration, detector settings) change over the course of
an experiment, so data from later scans follow a different distribution than
the data an ML model was trained on.  This module makes that drift explicit:
an :class:`ExperimentCondition` captures the generation parameters of a single
scan, and a :class:`DriftSchedule` produces a sequence of conditions — smooth
drift, abrupt configuration changes (the "bimodal" behaviour seen for BraggNN
in Fig. 10), or both.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, default_rng


@dataclass(frozen=True)
class ExperimentCondition:
    """Generation parameters for one scan of a (synthetic) experiment.

    The fields map onto physically meaningful knobs:

    * ``peak_width`` — diffraction peak width (sample strain / mosaicity),
    * ``peak_eta`` — Lorentzian fraction (peak shape),
    * ``noise_level`` — detector / shot noise amplitude,
    * ``intensity`` — beam intensity scale,
    * ``center_spread`` — how far peak centres wander from the patch centre
      (sample deformation moves peaks),
    * ``energy_shift`` — CookieBox spectral shift (photon energy drift),
    * ``phase`` — integer configuration label; a change of phase models an
      operator changing the experimental setup.
    """

    scan_index: int
    peak_width: float = 2.0
    peak_eta: float = 0.5
    noise_level: float = 0.02
    intensity: float = 1.0
    center_spread: float = 1.5
    energy_shift: float = 0.0
    phase: int = 0

    def __post_init__(self) -> None:
        if self.peak_width <= 0:
            raise ConfigurationError("peak_width must be positive")
        if not 0.0 <= self.peak_eta <= 1.0:
            raise ConfigurationError("peak_eta must lie in [0, 1]")
        if self.noise_level < 0:
            raise ConfigurationError("noise_level must be non-negative")
        if self.intensity <= 0:
            raise ConfigurationError("intensity must be positive")
        if self.center_spread < 0:
            raise ConfigurationError("center_spread must be non-negative")

    def as_dict(self) -> Dict[str, float]:
        return {
            "scan_index": self.scan_index,
            "peak_width": self.peak_width,
            "peak_eta": self.peak_eta,
            "noise_level": self.noise_level,
            "intensity": self.intensity,
            "center_spread": self.center_spread,
            "energy_shift": self.energy_shift,
            "phase": self.phase,
        }


class DriftSchedule:
    """Produces the sequence of :class:`ExperimentCondition` for an experiment.

    Parameters
    ----------
    n_scans:
        Number of scans in the experiment.
    base:
        Condition of scan 0 (``scan_index`` is overwritten per scan).
    drift_per_scan:
        Dict of per-scan additive drift applied to numeric fields, e.g.
        ``{"peak_width": 0.02, "center_spread": 0.01}``.
    phase_changes:
        Mapping ``scan_index -> dict of field overrides`` applied from that
        scan onward (abrupt configuration changes; also bumps ``phase``).
    jitter:
        Per-scan random jitter (std-dev, relative) applied to drifting fields.
    seed:
        Seed for the jitter stream.
    """

    _DRIFTABLE = (
        "peak_width",
        "peak_eta",
        "noise_level",
        "intensity",
        "center_spread",
        "energy_shift",
    )

    def __init__(
        self,
        n_scans: int,
        base: Optional[ExperimentCondition] = None,
        drift_per_scan: Optional[Dict[str, float]] = None,
        phase_changes: Optional[Dict[int, Dict[str, float]]] = None,
        jitter: float = 0.0,
        seed: SeedLike = 0,
    ):
        if n_scans < 1:
            raise ConfigurationError("n_scans must be >= 1")
        if jitter < 0:
            raise ConfigurationError("jitter must be non-negative")
        self.n_scans = int(n_scans)
        self.base = base or ExperimentCondition(scan_index=0)
        self.drift_per_scan = dict(drift_per_scan or {})
        unknown = set(self.drift_per_scan) - set(self._DRIFTABLE)
        if unknown:
            raise ConfigurationError(f"unknown drift fields: {sorted(unknown)}")
        self.phase_changes = {int(k): dict(v) for k, v in (phase_changes or {}).items()}
        for overrides in self.phase_changes.values():
            bad = set(overrides) - set(self._DRIFTABLE)
            if bad:
                raise ConfigurationError(f"unknown phase-change fields: {sorted(bad)}")
        self.jitter = float(jitter)
        self._seed = seed

    def condition(self, scan_index: int) -> ExperimentCondition:
        """Condition of scan ``scan_index`` (deterministic for a given seed)."""
        if not 0 <= scan_index < self.n_scans:
            raise IndexError(f"scan_index {scan_index} out of range [0, {self.n_scans})")
        values = {k: getattr(self.base, k) for k in self._DRIFTABLE}
        phase = self.base.phase
        # Apply abrupt phase changes that occurred at or before this scan.
        for change_at in sorted(self.phase_changes):
            if scan_index >= change_at:
                values.update(self.phase_changes[change_at])
                phase += 1
        # Apply cumulative smooth drift.
        for key, rate in self.drift_per_scan.items():
            values[key] = values[key] + rate * scan_index
        # Deterministic per-scan jitter.
        if self.jitter > 0:
            rng = default_rng(self._jitter_seed(scan_index))
            for key in self.drift_per_scan:
                values[key] = values[key] * (1.0 + self.jitter * rng.standard_normal())
        # Clamp to valid ranges.
        values["peak_width"] = max(values["peak_width"], 0.3)
        values["peak_eta"] = float(np.clip(values["peak_eta"], 0.0, 1.0))
        values["noise_level"] = max(values["noise_level"], 0.0)
        values["intensity"] = max(values["intensity"], 1e-3)
        values["center_spread"] = max(values["center_spread"], 0.0)
        return ExperimentCondition(scan_index=scan_index, phase=phase, **values)

    def _jitter_seed(self, scan_index: int) -> int:
        from repro.utils.rng import derive_seed

        return derive_seed(self._seed, 7919, scan_index)

    def conditions(self) -> List[ExperimentCondition]:
        return [self.condition(i) for i in range(self.n_scans)]

    def __iter__(self) -> Iterator[ExperimentCondition]:
        return iter(self.conditions())

    def __len__(self) -> int:
        return self.n_scans


def make_two_phase_schedule(
    n_scans: int,
    change_at: int,
    drift_per_scan: Optional[Dict[str, float]] = None,
    seed: SeedLike = 0,
) -> DriftSchedule:
    """Convenience schedule reproducing the paper's BraggNN setting.

    The first ``change_at`` scans drift slowly (phase 0); at ``change_at`` the
    sample deforms / configuration changes, producing a clearly different data
    distribution (phase 1).  This yields the bimodal error-vs-distance scatter
    of Fig. 10 and the degradation onset of Fig. 2.
    """
    if not 0 < change_at < n_scans:
        raise ConfigurationError("change_at must lie strictly inside the scan range")
    return DriftSchedule(
        n_scans=n_scans,
        drift_per_scan=drift_per_scan or {"peak_width": 0.01, "center_spread": 0.005},
        phase_changes={
            change_at: {
                "peak_width": 3.2,
                "peak_eta": 0.8,
                "center_spread": 3.0,
                "noise_level": 0.05,
            }
        },
        jitter=0.02,
        seed=seed,
    )
