"""Hyper-parameter tuning for embedding models.

The paper notes that the fairDS Training-Embedding module "supports tuning of
hyper-parameters such as batch size and learning rate associated with an
embedding module".  This module provides that capability: a small grid search
that scores each candidate embedder by how well its embedding space separates
the data into clusters (mean silhouette after k-means), which is exactly the
property downstream pseudo-labeling and model indexing depend on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.clustering.metrics import silhouette_score
from repro.embedding.base import Embedder, get_embedder
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.rng import SeedLike, default_rng


@dataclass
class TuningResult:
    """Outcome of one hyper-parameter configuration."""

    params: Dict[str, Any]
    score: float
    embedder: Embedder


@dataclass
class TuningReport:
    """All configurations tried, sorted best first."""

    results: List[TuningResult] = field(default_factory=list)

    @property
    def best(self) -> TuningResult:
        if not self.results:
            raise ValidationError("no tuning results available")
        return self.results[0]

    def as_rows(self) -> List[tuple]:
        return [(r.params, r.score) for r in self.results]


def clustering_quality_score(
    embedder: Embedder,
    x: np.ndarray,
    n_clusters: int = 8,
    max_samples: int = 512,
    seed: SeedLike = 0,
) -> float:
    """Score an embedder by the silhouette of k-means clusters in its space.

    A subsample of at most ``max_samples`` points keeps the O(n^2) silhouette
    computation cheap.
    """
    if n_clusters < 2:
        raise ConfigurationError("n_clusters must be >= 2 for a silhouette score")
    z = np.asarray(embedder.transform(x), dtype=np.float64)
    if z.shape[0] > max_samples:
        idx = default_rng(seed).choice(z.shape[0], size=max_samples, replace=False)
        z = z[idx]
    if z.shape[0] <= n_clusters:
        raise ValidationError("not enough samples to score the embedding")
    km = KMeans(n_clusters=n_clusters, n_init=2, seed=seed).fit(z)
    labels = km.labels_
    if np.unique(labels).size < 2:
        return -1.0
    return silhouette_score(z, labels)


def grid_search_embedder(
    name: str,
    x: np.ndarray,
    param_grid: Mapping[str, Sequence[Any]],
    fixed_params: Optional[Mapping[str, Any]] = None,
    n_clusters: int = 8,
    scorer: Optional[Callable[[Embedder, np.ndarray], float]] = None,
    seed: SeedLike = 0,
) -> TuningReport:
    """Fit the embedder named ``name`` for every grid combination and rank them.

    Parameters
    ----------
    name:
        Registry name of the embedder (``"autoencoder"``, ``"byol"``, ...).
    x:
        Training data for the embedder.
    param_grid:
        Mapping of constructor keyword -> list of candidate values, e.g.
        ``{"lr": [1e-3, 3e-3], "batch_size": [32, 64]}``.
    fixed_params:
        Constructor keywords shared by every candidate.
    n_clusters:
        Number of clusters used by the default scoring function.
    scorer:
        Custom callable ``(embedder, x) -> float`` (higher is better);
        defaults to :func:`clustering_quality_score`.
    """
    if not param_grid:
        raise ConfigurationError("param_grid must contain at least one parameter")
    for key, values in param_grid.items():
        if not values:
            raise ConfigurationError(f"param_grid entry {key!r} has no candidate values")
    fixed = dict(fixed_params or {})
    scorer = scorer or (lambda emb, data: clustering_quality_score(emb, data, n_clusters=n_clusters, seed=seed))

    keys = sorted(param_grid)
    results: List[TuningResult] = []
    for combo in itertools.product(*(param_grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        embedder = get_embedder(name, **fixed, **params)
        embedder.fit(x)
        score = float(scorer(embedder, x))
        results.append(TuningResult(params=params, score=score, embedder=embedder))
    results.sort(key=lambda r: r.score, reverse=True)
    return TuningReport(results=results)
