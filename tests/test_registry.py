"""Tests for the storage/index backend registry."""

import numpy as np
import pytest

from repro.storage import DocumentDB, FileStore, VectorIndex, ClusteredVectorIndex
from repro.storage.codecs import CompressedCodec
from repro.storage.registry import (
    IndexBackend,
    StorageBackend,
    available_backends,
    create_backend,
    create_from_config,
    create_index_backend,
    create_storage_backend,
    register_backend,
    unregister_backend,
)
from repro.utils.errors import ConfigurationError


def test_builtin_backends_are_listed():
    assert {"file", "documentdb"} <= set(available_backends("storage"))
    assert {"flat", "clustered"} <= set(available_backends("index"))


def test_create_index_backends_by_name():
    flat = create_index_backend("flat", dim=3)
    assert isinstance(flat, VectorIndex)
    clustered = create_index_backend("clustered", centers=np.zeros((2, 3)), n_probe=2)
    assert isinstance(clustered, ClusteredVectorIndex)
    assert isinstance(flat, IndexBackend)
    assert isinstance(clustered, IndexBackend)


def test_create_storage_backends_by_name(tmp_path):
    store = create_storage_backend("file", root=str(tmp_path / "s"))
    assert isinstance(store, FileStore)
    db = create_storage_backend("documentdb", codec="blosc")
    assert isinstance(db, DocumentDB)
    assert isinstance(db.codec, CompressedCodec)
    assert isinstance(store, StorageBackend)
    assert isinstance(db, StorageBackend)


def test_documentdb_network_from_mapping():
    db = create_storage_backend("documentdb", network={"latency_s": 0.001})
    assert db.network.latency_s == pytest.approx(0.001)


def test_documentdb_storage_bytes_sums_collections():
    db = create_storage_backend("documentdb")
    assert db.storage_bytes() == 0
    db.collection("a").insert_one({"k": 1}, payload=np.zeros(8))
    db.collection("b").insert_one({"k": 2}, payload=np.zeros(8))
    assert db.storage_bytes() == sum(s["payload_bytes"] for s in db.stats().values())
    assert db.storage_bytes() > 0


def test_unknown_backend_and_kind_raise():
    with pytest.raises(ConfigurationError):
        create_backend("index", "nope")
    with pytest.raises(ConfigurationError):
        create_backend("bogus-kind", "flat")
    with pytest.raises(ConfigurationError):
        available_backends("bogus-kind")


def test_register_custom_backend_decorator_and_duplicates():
    try:

        @register_backend("index", "unit-test-backend")
        class TinyIndex:
            def __init__(self, dim=1):
                self.dim = dim

            def __len__(self):
                return 0

            def query(self, vector, k=1):
                return []

            def query_batch(self, vectors, k=1):
                return []

        created = create_index_backend("unit-test-backend", dim=7)
        assert isinstance(created, TinyIndex) and created.dim == 7
        with pytest.raises(ConfigurationError):
            register_backend("index", "unit-test-backend", TinyIndex)
        register_backend("index", "unit-test-backend", TinyIndex, overwrite=True)
    finally:
        # Don't leak the temporary backend into the process-wide registry.
        assert unregister_backend("index", "unit-test-backend")
    assert "unit-test-backend" not in available_backends("index")
    assert not unregister_backend("index", "unit-test-backend")


def test_create_from_config():
    index = create_from_config({"kind": "index", "name": "flat", "params": {"dim": 4}})
    assert isinstance(index, VectorIndex) and index.dim == 4
    with pytest.raises(ConfigurationError):
        create_from_config({"name": "flat"})
