"""Concurrent serving runtime: equivalence, concurrency, drain, and overload.

The acceptance contract of the serving plane: micro-batched responses are
bit-identical to direct single calls, futures resolve under concurrent
producers, drain-on-shutdown loses no accepted request, and overload rejects
fast instead of deadlocking.
"""

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro import FairDMS, FairDS, UpdatePolicy
from repro.core import FairDMSService
from repro.embedding import PCAEmbedder
from repro.models import build_braggnn
from repro.monitoring import ArrivalOrderFeed, CertaintyTrigger
from repro.nn.trainer import TrainingConfig
from repro.serving import BatchingPolicy, MicroBatcher, Request, ServingRuntime
from repro.utils.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServingError,
)


def _runtime(handler=None, **kwargs):
    handler = handler or (lambda xs: [2 * x for x in xs])
    kwargs.setdefault("policy", BatchingPolicy(max_batch_size=8, max_wait_ms=5))
    return ServingRuntime({"double": handler}, **kwargs)


# -- policy / construction validation -----------------------------------------
def test_batching_policy_validation():
    with pytest.raises(ConfigurationError):
        BatchingPolicy(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        BatchingPolicy(max_wait_ms=-1)
    with pytest.raises(ConfigurationError):
        BatchingPolicy(max_queue_depth=0)


def test_runtime_construction_validation():
    with pytest.raises(ConfigurationError):
        ServingRuntime({})
    with pytest.raises(ConfigurationError):
        ServingRuntime({"op": lambda xs: xs}, num_workers=0)
    with pytest.raises(ConfigurationError):
        ServingRuntime({"op": lambda xs: xs}, observers={"other": print})


def test_runtime_lifecycle_guards():
    rt = _runtime()
    with pytest.raises(ServiceClosedError):
        rt.submit("double", 1)  # not started
    rt.start()
    with pytest.raises(ServingError):
        rt.start()
    with pytest.raises(ConfigurationError):
        rt.submit("unknown-op", 1)
    rt.shutdown()
    rt.shutdown()  # idempotent
    with pytest.raises(ServiceClosedError):
        rt.submit("double", 1)
    with pytest.raises(ServingError):
        rt.start()  # a shut-down runtime cannot be restarted (threads would leak)


# -- MicroBatcher --------------------------------------------------------------
def test_batcher_flushes_when_full_without_waiting():
    batcher = MicroBatcher(BatchingPolicy(max_batch_size=4, max_wait_ms=60_000))
    for i in range(5):
        batcher.submit(Request(op="op", payload=i))
    start = time.monotonic()
    batch = batcher.next_batch()
    assert time.monotonic() - start < 1.0  # did not wait for max_wait_ms
    assert [r.payload for r in batch] == [0, 1, 2, 3]
    assert [r.seq for r in batch] == [0, 1, 2, 3]
    # The leftover request flushes immediately once the batcher closes,
    # without waiting out the 60s deadline.
    batcher.close()
    start = time.monotonic()
    assert [r.payload for r in batcher.next_batch()] == [4]
    assert time.monotonic() - start < 1.0


def test_batcher_flushes_partial_batch_after_max_wait():
    batcher = MicroBatcher(BatchingPolicy(max_batch_size=100, max_wait_ms=30))
    batcher.submit(Request(op="op", payload="a"))
    batcher.submit(Request(op="op", payload="b"))
    start = time.monotonic()
    batch = batcher.next_batch()
    elapsed = time.monotonic() - start
    assert [r.payload for r in batch] == ["a", "b"]
    assert elapsed < 5.0  # flushed by the wait deadline, not stuck


def test_batcher_overload_and_close():
    batcher = MicroBatcher(BatchingPolicy(max_queue_depth=2, max_batch_size=2))
    batcher.submit(Request(op="op", payload=1))
    batcher.submit(Request(op="op", payload=2))
    with pytest.raises(ServiceOverloadedError):
        batcher.submit(Request(op="op", payload=3))
    batcher.close()
    with pytest.raises(ServiceClosedError):
        batcher.submit(Request(op="op", payload=4))
    assert [r.payload for r in batcher.next_batch()] == [1, 2]
    assert batcher.next_batch() is None  # closed and drained
    # Rejected submissions consumed no sequence numbers.
    assert batcher.admitted == 2


# -- runtime behaviour ---------------------------------------------------------
def test_futures_resolve_under_concurrent_producers():
    def slow_double(xs):
        time.sleep(0.002)  # lets queues build so batches actually coalesce
        return [2 * x for x in xs]

    n_threads, per_thread = 12, 25
    results = {}
    with _runtime(slow_double, num_workers=3) as rt:
        def client(tid):
            futures = [(tid * 1000 + i, rt.submit("double", tid * 1000 + i)) for i in range(per_thread)]
            results[tid] = [(x, f.result(timeout=30)) for x, f in futures]

        threads = [threading.Thread(target=client, args=(tid,)) for tid in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    for tid in range(n_threads):
        assert results[tid] == [(x, 2 * x) for x, _ in results[tid]]
        assert len(results[tid]) == per_thread
    snap = rt.telemetry.snapshot()
    assert snap["accepted"] == snap["completed"] == n_threads * per_thread
    assert snap["rejected"] == 0
    assert snap["batch_size"]["max"] > 1  # the scheduler really coalesced
    assert snap["latency_ms"]["count"] > 0
    assert snap["throughput_rps"] > 0


def test_drain_on_shutdown_loses_no_accepted_request():
    def slow(xs):
        time.sleep(0.01)
        return [x + 1 for x in xs]

    rt = _runtime(slow, policy=BatchingPolicy(max_batch_size=4, max_wait_ms=1), num_workers=1)
    rt.start()
    futures = [rt.submit("double", i) for i in range(40)]
    rt.shutdown()  # most requests still queued at this point
    assert all(f.done() for f in futures)
    assert [f.result() for f in futures] == [i + 1 for i in range(40)]


def test_drain_waits_for_quiescence_without_closing():
    release = threading.Event()

    def gated(xs):
        release.wait(timeout=10)
        return xs

    with _runtime(gated, policy=BatchingPolicy(max_batch_size=4, max_wait_ms=1)) as rt:
        futures = [rt.submit("double", i) for i in range(8)]
        assert not rt.drain(timeout=0.05)  # handler still gated
        release.set()
        assert rt.drain(timeout=10)
        assert all(f.done() for f in futures)
        rt.submit("double", 99).result(timeout=10)  # still accepting after drain


def test_overload_rejects_rather_than_deadlocks():
    gate = threading.Event()

    def gated(xs):
        gate.wait(timeout=30)
        return [x * 10 for x in xs]

    policy = BatchingPolicy(max_batch_size=2, max_wait_ms=1, max_queue_depth=4)
    rt = ServingRuntime({"double": gated}, policy=policy, num_workers=1)
    rt.start()
    accepted, rejected = [], 0
    start = time.monotonic()
    for i in range(200):
        try:
            accepted.append((i, rt.submit("double", i)))
        except ServiceOverloadedError:
            rejected += 1
    elapsed = time.monotonic() - start
    assert elapsed < 10.0  # fail-fast admission, no blocking submit
    assert rejected > 0  # finite capacity: overload surfaced as rejections
    assert rt.telemetry.snapshot()["rejected"] == rejected
    gate.set()
    rt.shutdown()
    # Every *accepted* request still resolved correctly after the storm.
    assert [f.result(timeout=10) for _, f in accepted] == [i * 10 for i, _ in accepted]


def test_handler_exception_fails_only_that_batch():
    def flaky(xs):
        if any(x == 13 for x in xs):
            raise ValueError("unlucky batch")
        return [x * 2 for x in xs]

    with _runtime(flaky, policy=BatchingPolicy(max_batch_size=1, max_wait_ms=0)) as rt:
        futures = {x: rt.submit("double", x) for x in (7, 13, 21)}
        wait(list(futures.values()), timeout=10)
        assert futures[7].result() == 14
        assert futures[21].result() == 42
        with pytest.raises(ValueError):
            futures[13].result()
    snap = rt.telemetry.snapshot()
    assert snap["failed"] == 1  # the broken batch is visible, not masked
    assert snap["completed"] == 3


def test_handler_wrong_result_count_raises_serving_error():
    with _runtime(lambda xs: xs[:-1], policy=BatchingPolicy(max_batch_size=2, max_wait_ms=1)) as rt:
        f1, f2 = rt.submit("double", 1), rt.submit("double", 2)
        with pytest.raises(ServingError):
            f1.result(timeout=10)
        with pytest.raises(ServingError):
            f2.result(timeout=10)


# -- ArrivalOrderFeed ----------------------------------------------------------
def test_arrival_order_feed_reorders_and_discards():
    chunks = []
    feed = ArrivalOrderFeed(lambda run: chunks.append(list(run)))
    feed.push_many([(3, "d"), (1, "b")])
    assert chunks == []  # seq 0 still missing
    feed.push(0, "a")
    assert chunks == [["a", "b"]]
    feed.discard([2])  # a failed request must not stall the stream
    assert chunks == [["a", "b"], ["d"]]
    assert feed.delivered == 3
    assert feed.pending_count == 0
    with pytest.raises(ConfigurationError):
        feed.push(1, "dup")


def test_observer_receives_results_in_arrival_order_despite_out_of_order_batches():
    order = []
    gate_first = threading.Event()

    def handler(xs):
        # Stall the batch containing the earliest payloads so a later batch
        # finishes first.
        if 0 in xs:
            gate_first.wait(timeout=10)
        return xs

    rt = ServingRuntime(
        {"op": handler},
        policy=BatchingPolicy(max_batch_size=2, max_wait_ms=1),
        num_workers=2,
        observers={"op": order.extend},
    )
    with rt:
        futures = [rt.submit("op", i) for i in range(6)]
        # Let the trailing batches complete, then release the first.
        wait(futures[2:], timeout=10)
        assert order == []  # held back: batch 0 not done yet
        gate_first.set()
        wait(futures, timeout=10)
        rt.drain(timeout=10)
    assert order == [0, 1, 2, 3, 4, 5]


# -- serving a live FairDMSService --------------------------------------------
def _data(seed=0, n=96, side=6):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, side, side)), rng.normal(size=(n, 2))


def _scan_batches(seed=7, n_batches=6, n=14, side=6):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(n, side, side)) for _ in range(n_batches)]


def _service_stack(seed=0):
    images, labels = _data()
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=seed)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=2, seed=seed),
        training_config=TrainingConfig(epochs=2, batch_size=16, lr=3e-3, seed=seed),
        policy=UpdatePolicy(distance_threshold=0.7, certainty_threshold=1.0),
        seed=seed,
    )
    dms.bootstrap(images, labels, train_initial_model=False)
    return FairDMSService(dms)


def test_served_responses_identical_to_direct_single_calls():
    scans = _scan_batches()
    with _service_stack() as served, _service_stack() as direct:
        # num_workers=1 keeps batch execution FIFO, so the lookup sampler
        # consumes seeds in exactly the order the direct calls would.
        runtime = served.serving_runtime(
            policy=BatchingPolicy(max_batch_size=4, max_wait_ms=20), num_workers=1
        )
        with runtime:
            dist_futures = [runtime.submit("query_distribution", s) for s in scans]
            served_dists = [f.result(timeout=60) for f in dist_futures]
            lookup_futures = [
                runtime.submit("lookup_labeled_data", (s, 10)) for s in scans
            ]
            served_lookups = [f.result(timeout=60) for f in lookup_futures]
            cert_futures = [runtime.submit("certainty", s) for s in scans]
            served_certs = [f.result(timeout=60) for f in cert_futures]
            snap = runtime.telemetry.snapshot()

        for scan, dist in zip(scans, served_dists):
            assert dist["pdf"] == direct.query_distribution(scan)["pdf"]
        for scan, payload in zip(scans, served_lookups):
            single = direct.lookup_labeled_data(scan, n_samples=10)
            np.testing.assert_array_equal(payload["images"], single["images"])
            np.testing.assert_array_equal(payload["labels"], single["labels"])
            assert payload["distribution"]["pdf"] == single["distribution"]["pdf"]
        np.testing.assert_allclose(
            served_certs, [direct.dms.fairds.certainty(s) for s in scans], rtol=1e-12
        )

        # The activity log recorded coalesced *_batch invocations.
        summary = served.activity_summary()
        assert summary["user:query_distribution_batch"] >= 1
        assert summary["user:lookup_labeled_data_batch"] >= 1
        assert summary["system:certainty_batch"] >= 1
        assert snap["completed"] == 3 * len(scans)


def test_certainty_stream_feeds_trigger_in_arrival_order():
    scans = _scan_batches(n_batches=8)
    with _service_stack() as served, _service_stack() as direct:
        serial_values = [direct.dms.fairds.certainty(s) for s in scans]
        serial_trigger = CertaintyTrigger(float(np.median(serial_values)), cooldown=1)
        serial_fired = [serial_trigger.observe(v) for v in serial_values]

        served_trigger = CertaintyTrigger(float(np.median(serial_values)), cooldown=1)
        runtime = served.serving_runtime(
            policy=BatchingPolicy(max_batch_size=2, max_wait_ms=2),
            num_workers=3,  # batches may complete out of order
            certainty_trigger=served_trigger,
        )
        with runtime:
            futures = [runtime.submit("certainty", s) for s in scans]
            values = [f.result(timeout=60) for f in futures]
            runtime.drain(timeout=60)

    np.testing.assert_allclose(values, serial_values, rtol=1e-12)
    assert served_trigger.history == serial_trigger.history
    assert served_trigger.fired_at == serial_trigger.fired_at
    assert [i in served_trigger.fired_at for i in range(len(scans))] == serial_fired


def test_serving_runtime_overload_on_live_service():
    with _service_stack() as service:
        runtime = service.serving_runtime(
            policy=BatchingPolicy(max_batch_size=2, max_wait_ms=1, max_queue_depth=2),
            num_workers=1,
        )
        scans = _scan_batches(n_batches=1)
        with runtime:
            outcomes = {"ok": 0, "rejected": 0}
            futures = []
            for _ in range(60):
                try:
                    futures.append(runtime.submit("certainty", scans[0]))
                    outcomes["ok"] += 1
                except ServiceOverloadedError:
                    outcomes["rejected"] += 1
            done, not_done = wait(futures, timeout=60)
            assert not not_done
        assert outcomes["ok"] == len(futures)
        assert outcomes["ok"] + outcomes["rejected"] == 60


# -- flush and live handler swap -------------------------------------------------------
def test_micro_batcher_flush_releases_partial_batch_immediately():
    batcher = MicroBatcher(BatchingPolicy(max_batch_size=64, max_wait_ms=5_000.0))
    out = []

    def consume():
        out.append(batcher.next_batch())

    t = threading.Thread(target=consume)
    t.start()
    for i in range(3):
        batcher.submit(Request(op="op", payload=i))
    time.sleep(0.05)
    assert not out  # far from full, far from the deadline: still waiting
    batcher.flush()
    t.join(timeout=2.0)
    assert [r.payload for r in out[0]] == [0, 1, 2]
    batcher.close()


def test_micro_batcher_flush_on_empty_queue_is_noop():
    batcher = MicroBatcher(BatchingPolicy(max_batch_size=4, max_wait_ms=1.0))
    batcher.flush()
    batcher.submit(Request(op="op", payload="x"))
    batch = batcher.next_batch()
    assert [r.payload for r in batch] == ["x"]
    batcher.close()


def test_runtime_flush_trades_batching_for_latency():
    runtime = ServingRuntime(
        {"echo": lambda xs: list(xs)},
        policy=BatchingPolicy(max_batch_size=1024, max_wait_ms=10_000.0),
        num_workers=1,
    )
    with runtime:
        futures = [runtime.submit("echo", i) for i in range(5)]
        runtime.flush("echo")
        results = [f.result(timeout=2.0) for f in futures]  # well before max_wait_ms
    assert results == [0, 1, 2, 3, 4]
    with pytest.raises(ConfigurationError):
        runtime.flush("nope")


def test_swap_handler_switches_live_traffic_without_dropping_requests():
    release = threading.Event()

    def old_handler(xs):
        release.wait(5.0)  # hold the in-flight batch until after the swap
        return [("old", x) for x in xs]

    runtime = ServingRuntime(
        {"op": old_handler},
        policy=BatchingPolicy(max_batch_size=4, max_wait_ms=0.5),
        num_workers=2,
    )
    with runtime:
        inflight = [runtime.submit("op", i) for i in range(4)]  # full batch -> dispatched
        time.sleep(0.05)
        runtime.swap_handler("op", lambda xs: [("new", x) for x in xs])
        release.set()
        after = [runtime.submit("op", i) for i in range(10, 14)]
        inflight_results = [f.result(timeout=5.0) for f in inflight]
        after_results = [f.result(timeout=5.0) for f in after]
    # The batch that was already executing finished on the old handler...
    assert all(tag == "old" for tag, _ in inflight_results)
    # ...and everything admitted after the swap was served by the new one.
    assert all(tag == "new" for tag, _ in after_results)
    with pytest.raises(ConfigurationError):
        runtime.swap_handler("nope", lambda xs: xs)


def test_flush_releases_all_queued_batches_not_just_the_first():
    """The flush watermark covers requests spanning several max-size batches."""
    batcher = MicroBatcher(BatchingPolicy(max_batch_size=4, max_wait_ms=5_000.0))
    for i in range(6):
        batcher.submit(Request(op="op", payload=i))
    batcher.flush()
    start = time.monotonic()
    first = batcher.next_batch()
    second = batcher.next_batch()
    elapsed = time.monotonic() - start
    assert [r.payload for r in first] == [0, 1, 2, 3]
    assert [r.payload for r in second] == [4, 5]  # also prompt: no max_wait_ms stall
    assert elapsed < 1.0
    batcher.close()


def test_telemetry_snapshot_convenience_and_activity_serving_stats():
    """The one-telemetry-source satellite: ``telemetry_snapshot()`` mirrors
    ``telemetry.snapshot()``, and runtimes created by a service fold their
    per-op completion counts into ``activity_summary()``."""
    scans = _scan_batches(n_batches=4)
    with _service_stack() as service:
        runtime = service.serving_runtime(
            policy=BatchingPolicy(max_batch_size=4, max_wait_ms=20), num_workers=1
        )
        with runtime:
            for s in scans:
                runtime.call("certainty", s, timeout=60)
            runtime.call("query_distribution", scans[0], timeout=60)
            snap = runtime.telemetry_snapshot()
        assert snap["completed"] == runtime.telemetry.snapshot()["completed"] == len(scans) + 1
        summary = service.activity_summary()
        assert summary["serving:certainty"] == len(scans)
        assert summary["serving:query_distribution"] == 1
        # The plane-function counts are still there, untouched...
        assert summary["system:certainty_batch"] >= 1
        # ...and the serving fold-in can be switched off.
        assert "serving:certainty" not in service.activity_summary(include_serving=False)


# -- telemetry: per-op attribution, percentiles, restart window ----------------
def _telemetry():
    from repro.observability.metrics import MetricsRegistry
    from repro.serving.telemetry import ServingTelemetry

    return ServingTelemetry(registry=MetricsRegistry())


def test_record_batch_attributes_to_its_operation():
    """Regression: record_batch used to ignore its ``op`` argument and blend
    every operation's batch-size distribution into one histogram."""
    tel = _telemetry()
    tel.record_batch("a", 4, 0.010)
    tel.record_batch("a", 2, 0.002)
    tel.record_batch("b", 8, 0.004)
    snap = tel.snapshot()
    assert snap["per_op"]["a"]["batch_size"]["batches"] == 2
    assert snap["per_op"]["a"]["batch_size"]["mean"] == 3.0
    assert snap["per_op"]["a"]["batch_size"]["max"] == 4
    assert snap["per_op"]["a"]["batch_size"]["histogram"] == {2: 1, 4: 1}
    assert snap["per_op"]["b"]["batch_size"]["max"] == 8
    assert snap["per_op"]["b"]["batch_size"]["max_wait_ms"] == pytest.approx(4.0)
    # The top-level section still aggregates across operations.
    assert snap["batch_size"]["batches"] == 3 and snap["batch_size"]["max"] == 8
    # And the shared registry got one histogram series per op.
    hist = tel.registry.get("repro_batch_size")
    assert hist.labels(op="a").value["count"] == 2
    assert hist.labels(op="b").value["count"] == 1


def test_per_op_latency_percentiles_in_snapshot():
    tel = _telemetry()
    tel.record_completions("fast", [0.001] * 40)
    tel.record_completions("slow", [0.100] * 40)
    snap = tel.snapshot()
    fast, slow = snap["per_op"]["fast"]["latency_ms"], snap["per_op"]["slow"]["latency_ms"]
    assert fast["count"] == slow["count"] == 40
    for q in ("p50_ms", "p95_ms", "p99_ms"):
        assert fast[q] == pytest.approx(1.0, rel=0.2)
        assert slow[q] == pytest.approx(100.0, rel=0.2)
    # The blended global summary sits between the two ops.
    assert fast["p95_ms"] < snap["latency_ms"]["p95_ms"] <= slow["p95_ms"]


def test_mark_started_after_restart_resets_the_window():
    """Regression: re-using one telemetry object across a runtime restart kept
    the stale counters, so throughput_rps divided old completions by the new
    uptime.  mark_started() now restarts a zeroed window."""
    tel = _telemetry()
    tel.mark_started()
    tel.record_admission("op", depth=1)
    tel.record_completion("op", 0.01)
    tel.record_batch("op", 1, 0.0)
    tel.mark_stopped()
    assert tel.snapshot()["completed"] == 1

    tel.mark_started()  # the restart
    snap = tel.snapshot()
    assert snap["accepted"] == snap["completed"] == 0
    assert snap["per_op"] == {} and snap["batch_size"]["batches"] == 0
    assert snap["latency_ms"]["count"] == 0
    assert snap["throughput_rps"] == 0.0
    # The shared registry is cumulative by contract: restart does not zero it.
    req = tel.registry.get("repro_requests_total")
    assert req.labels(op="op", status="completed").value == 1.0


def test_reset_zeroes_the_window_explicitly():
    tel = _telemetry()
    tel.mark_started()
    tel.record_rejection("op")
    tel.record_knob("n_probe", 4)
    tel.reset()
    snap = tel.snapshot()
    assert snap["rejected"] == 0 and snap["knobs"] == {} and snap["uptime_s"] == 0.0


def test_rejected_total_is_cumulative_across_reset_and_restart():
    """The windowed 'rejected' count zeroes with the window; 'rejected_total'
    is Prometheus-counter-style lifetime accounting and survives both reset()
    and a mark_started() restart."""
    tel = _telemetry()
    tel.mark_started()
    tel.record_rejection("op")
    tel.record_rejection("op")
    snap = tel.snapshot()
    assert snap["rejected"] == 2 and snap["rejected_total"] == 2
    tel.reset()
    snap = tel.snapshot()
    assert snap["rejected"] == 0 and snap["rejected_total"] == 2
    tel.mark_started()  # restart: window zeroes, lifetime does not
    tel.record_rejection("other")
    snap = tel.snapshot()
    assert snap["rejected"] == 1 and snap["rejected_total"] == 3
    # and the formatted snapshot surfaces the lifetime figure
    assert "lifetime 3" in tel.format_snapshot()
