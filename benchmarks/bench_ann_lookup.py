"""ANN lookup — IVF partition-probing vs exhaustive flat scan.

The IVF index exists to make nearest-labeled-sample lookup sublinear: a
coarse k-means quantizer routes each query to its ``n_probe`` nearest
partitions and only those inverted lists are scanned.  This benchmark pits
:class:`~repro.storage.ivf_index.IVFVectorIndex` against the exhaustive
:class:`~repro.storage.vector_index.VectorIndex` on the same clustered
vector corpus and charts the *recall@10 vs throughput* curve as ``n_probe``
sweeps — the exact trade-off the live serving knob retunes.

Acceptance bar (asserted, full mode): at **1M stored vectors** some point on
the sweep clears **>= 10x** the flat index's batched-lookup throughput while
keeping **recall@10 >= 0.95** against brute-force ground truth.  Smoke mode
shrinks the corpus but still asserts the recall bar, so every CI run checks
that partition probing does not silently lose neighbours.

A product-quantized section reports the compressed-scan path (PQ residual
codes + asymmetric distance + exact re-ranking) at a fixed ``n_probe``.

Results land in ``BENCH_ann_lookup.json`` (see ``common.write_bench_json``).

Run standalone:  python benchmarks/bench_ann_lookup.py [--smoke]
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Sequence

import numpy as np

from repro.storage import IVFVectorIndex, VectorIndex
from repro.utils.rng import default_rng

from common import exact_nearest_neighbors, print_table, recall_at_k, write_bench_json

# Embedding dimensionality of the stored vectors — same realistic range as
# the serving-throughput bench (fairDS embeddings are 8-64 dims).
DIM = 32
K = 10

FULL = dict(
    n_vectors=1_000_000, n_queries=256, n_blobs=1024, repeats=3,
    n_partitions="auto", train_size=32768, n_probe_sweep=(1, 2, 4, 8, 16, 32),
    pq_probe=8, assert_speedup=10.0, assert_recall=0.95,
)
SMOKE = dict(
    n_vectors=20_000, n_queries=128, n_blobs=128, repeats=2,
    n_partitions=64, train_size=8192, n_probe_sweep=(1, 4, 8, 16),
    pq_probe=8, assert_speedup=None, assert_recall=0.95,
)


def _make_corpus(n_vectors: int, n_queries: int, n_blobs: int, seed: int = 0):
    """Clustered float32 vectors + a query stream drawn from the same blobs."""
    rng = default_rng(seed)
    centers = rng.normal(scale=10.0, size=(n_blobs, DIM))
    vectors = (
        centers[rng.integers(0, n_blobs, size=n_vectors)]
        + rng.normal(size=(n_vectors, DIM))
    ).astype(np.float32)
    queries = (
        centers[rng.integers(0, n_blobs, size=n_queries)]
        + rng.normal(size=(n_queries, DIM))
    ).astype(np.float32)
    return vectors, queries


def _best_qps(index, queries: np.ndarray, repeats: int) -> float:
    """Best-of-``repeats`` batched-lookup throughput, in queries/second."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        index.query_batch(queries, k=K)
        best = max(best, queries.shape[0] / (time.perf_counter() - start))
    return best


def _retrieved_keys(index, queries: np.ndarray) -> List[List[str]]:
    return [[key for key, _ in hits] for hits in index.query_batch(queries, k=K)]


def run(smoke: bool = False, report_sink=None) -> Dict[str, object]:
    cfg = SMOKE if smoke else FULL
    n, n_queries, repeats = cfg["n_vectors"], cfg["n_queries"], cfg["repeats"]
    vectors, queries = _make_corpus(n, n_queries, cfg["n_blobs"])
    keys = [f"k{i:07d}" for i in range(n)]

    print(f"[bench] corpus: {n} vectors, dim={DIM}, {n_queries} queries")
    truth_idx = exact_nearest_neighbors(vectors, queries, K)
    truth_keys = [[keys[i] for i in row] for row in truth_idx]

    flat = VectorIndex(dim=DIM, dtype=np.float32)
    flat.add(keys, vectors)
    flat_qps = _best_qps(flat, queries, repeats)
    flat_recall = recall_at_k(_retrieved_keys(flat, queries), truth_keys, K)
    print(f"[bench] flat baseline: {flat_qps:.1f} q/s, recall@{K}={flat_recall:.4f}")

    build_start = time.perf_counter()
    ivf = IVFVectorIndex(
        dim=DIM,
        n_partitions=cfg["n_partitions"],
        n_probe=cfg["n_probe_sweep"][0],
        train_threshold=2,
        train_size=cfg["train_size"],
    )
    ivf.add(keys, vectors)
    build_s = time.perf_counter() - build_start
    stats = ivf.scan_stats()
    print(f"[bench] IVF built in {build_s:.1f}s: {stats['n_partitions']} partitions")

    sweep_rows = []
    curve = []
    for n_probe in cfg["n_probe_sweep"]:
        ivf.set_n_probe(n_probe)
        recall = recall_at_k(_retrieved_keys(ivf, queries), truth_keys, K)
        qps = _best_qps(ivf, queries, repeats)
        speedup = qps / flat_qps
        curve.append({"n_probe": n_probe, "recall_at_10": round(recall, 4),
                      "qps": round(qps, 1), "speedup": round(speedup, 2)})
        sweep_rows.append((n_probe, recall, qps, speedup))

    print_table(
        f"ANN lookup — IVF ({stats['n_partitions']} partitions) vs flat scan, "
        f"{n} stored vectors [queries/s]",
        ["n_probe", f"recall@{K}", "queries_per_s", "speedup_vs_flat"],
        sweep_rows,
        sink=report_sink,
    )

    # -- compressed-scan section: PQ residual codes + exact re-ranking ----------
    pq_start = time.perf_counter()
    ivf_pq = IVFVectorIndex(
        dim=DIM,
        n_partitions=cfg["n_partitions"],
        n_probe=cfg["pq_probe"],
        train_threshold=2,
        train_size=cfg["train_size"],
        pq={"m": 8, "bits": 8},
        rerank=4 * K,
    )
    ivf_pq.add(keys, vectors)
    pq_build_s = time.perf_counter() - pq_start
    pq_recall = recall_at_k(_retrieved_keys(ivf_pq, queries), truth_keys, K)
    pq_qps = _best_qps(ivf_pq, queries, repeats)
    exact_row = next(r for r in sweep_rows if r[0] == cfg["pq_probe"])
    print_table(
        f"PQ compressed scan (m=8, bits=8, rerank={4 * K}, n_probe={cfg['pq_probe']})",
        ["path", f"recall@{K}", "queries_per_s", "speedup_vs_flat"],
        [
            ("ivf exact scan", exact_row[1], exact_row[2], exact_row[3]),
            ("ivf pq + rerank", pq_recall, pq_qps, pq_qps / flat_qps),
        ],
        sink=report_sink,
    )

    # The acceptance point: the best-throughput sweep entry that clears the
    # recall bar.
    qualifying = [c for c in curve if c["recall_at_10"] >= cfg["assert_recall"]]
    best = max(qualifying, key=lambda c: c["speedup"]) if qualifying else None

    metrics = {
        "flat_qps": round(flat_qps, 1),
        "flat_recall_at_10": round(flat_recall, 4),
        "ivf_build_s": round(build_s, 2),
        "curve": curve,
        "best_qualifying": best,
        "pq": {
            "recall_at_10": round(pq_recall, 4),
            "qps": round(pq_qps, 1),
            "speedup": round(pq_qps / flat_qps, 2),
            "build_s": round(pq_build_s, 2),
            "n_probe": cfg["pq_probe"],
        },
        "n_partitions": stats["n_partitions"],
    }
    write_bench_json(
        "ann_lookup",
        metrics=metrics,
        params={
            "smoke": smoke,
            "n_vectors": n,
            "n_queries": n_queries,
            "dim": DIM,
            "k": K,
            "n_probe_sweep": list(cfg["n_probe_sweep"]),
            "train_size": cfg["train_size"],
            "repeats": repeats,
        },
    )

    # Acceptance bars.  Recall is asserted in every mode (smoke included, so
    # CI checks it per PR); the 10x-at-1M throughput bar only at full scale.
    assert best is not None, (
        f"no n_probe in {list(cfg['n_probe_sweep'])} reached "
        f"recall@{K} >= {cfg['assert_recall']} "
        f"(best recall {max(c['recall_at_10'] for c in curve):.4f})"
    )
    if cfg["assert_speedup"]:
        assert best["speedup"] >= cfg["assert_speedup"], (
            f"best qualifying point (n_probe={best['n_probe']}) reached only "
            f"{best['speedup']:.1f}x over flat (need >= {cfg['assert_speedup']}x "
            f"at recall@{K} >= {cfg['assert_recall']})"
        )
    else:
        assert best["speedup"] > 0.2, (
            f"smoke sanity: IVF collapsed to {best['speedup']:.2f}x of flat"
        )
    return metrics


def test_ann_lookup(report_sink):
    run(smoke=False, report_sink=report_sink)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI smoke runs (recall bar still asserted)")
    args = parser.parse_args()
    run(smoke=args.smoke)


if __name__ == "__main__":
    main()
