"""Clustering service used by fairDS.

Implements, from scratch, the pieces the paper relies on:

* :class:`~repro.clustering.kmeans.KMeans` — k-means++ initialised Lloyd's
  algorithm over embedding vectors (the paper chose k-means "due to its
  scalability and fast convergence").
* :func:`~repro.clustering.elbow.select_k_elbow` — elbow/knee detection on the
  within-cluster sum of squares curve (the YellowBrick-style automatic choice
  of K).
* :class:`~repro.clustering.fuzzy.FuzzyCMeans` — fuzzy c-means memberships
  used for the cluster-assignment *certainty* that drives the
  system-plane retraining trigger (Fig. 16).
* :mod:`repro.clustering.metrics` — WSS and silhouette-style diagnostics.
"""

from repro.clustering.kmeans import KMeans
from repro.clustering.fuzzy import FuzzyCMeans, assignment_certainty
from repro.clustering.elbow import elbow_curve, select_k_elbow
from repro.clustering.metrics import within_cluster_ss, silhouette_score

__all__ = [
    "KMeans",
    "FuzzyCMeans",
    "assignment_certainty",
    "elbow_curve",
    "select_k_elbow",
    "within_cluster_ss",
    "silhouette_score",
]
