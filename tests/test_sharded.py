"""Sharded multi-tenant vector storage: scatter-gather exactness, tenant
isolation, quotas, fair round-robin serving — plus the single-store
edge-case bugs the sharded path exposed (empty-index lookups, duplicate
keys, keys-tuple rebuilds).
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Deployment, ShardingSpec, SystemSpec, preset
from repro.api.spec import IndexSpec, ServingSpec
from repro.observability.metrics import default_registry
from repro.serving.batcher import BatchingPolicy, MicroBatcher, Request
from repro.serving.runtime import ServingRuntime
from repro.storage import (
    DEFAULT_TENANT,
    IVFVectorIndex,
    ShardedVectorStore,
    VectorIndex,
    create_index_backend,
    probe_index_capabilities,
    shard_of,
)
from repro.utils.errors import (
    ConfigurationError,
    QuotaExceededError,
    ServiceOverloadedError,
    StorageError,
    ValidationError,
)


def _make_data(seed, n, dim):
    rng = np.random.default_rng(seed)
    keys = [f"k{i}" for i in range(n)]
    return keys, rng.normal(size=(n, dim))


def assert_results_match(got, want):
    """Same keys in the same order; distances equal to within BLAS rounding.

    The distance kernel is a dgemm whose accumulation order varies with the
    stored-matrix shape, so the same (query, key) pair can differ by a few
    ULPs between a shard's small matrix and the flat index's big one — that
    is the only divergence the scatter-gather merge is allowed."""
    assert [[key for key, _ in row] for row in got] == [
        [key for key, _ in row] for row in want
    ]
    for got_row, want_row in zip(got, want):
        np.testing.assert_allclose(
            [d for _, d in got_row], [d for _, d in want_row],
            rtol=1e-9, atol=1e-12,
        )


# ---------------------------------------------------------------------------------
# Scatter-gather exactness against a flat index
# ---------------------------------------------------------------------------------
class TestScatterGatherExactness:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(1, 120),
        n_shards=st.integers(1, 9),
        k=st.integers(1, 40),
        dim=st.integers(2, 12),
    )
    def test_sharded_matches_flat(self, seed, n, n_shards, k, dim):
        """Random shard counts, ragged shard sizes, k larger than the
        smallest (or every) shard, empty shards when n < n_shards: the
        merged result equals a flat index over the union — identical keys
        and ordering, distances to within dgemm rounding.

        Shapes and seeds come from hypothesis; the vectors themselves from a
        numpy generator, so distances are continuous and tie-free.
        """
        keys, vectors = _make_data(seed, n, dim)
        queries = np.random.default_rng(seed + 1).normal(size=(7, dim))
        flat = VectorIndex(dim=dim)
        flat.add(keys, vectors)
        sharded = ShardedVectorStore(dim=dim, n_shards=n_shards)
        sharded.add(keys, vectors)
        assert_results_match(sharded.query_batch(queries, k=k), flat.query_batch(queries, k=k))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_shards=st.integers(2, 6),
        replication=st.integers(2, 6),
    )
    def test_replication_changes_nothing_for_reads(self, seed, n_shards, replication):
        replication = min(replication, n_shards)
        keys, vectors = _make_data(seed, 60, 6)
        queries = np.random.default_rng(seed + 1).normal(size=(5, 6))
        flat = VectorIndex(dim=6)
        flat.add(keys, vectors)
        sharded = ShardedVectorStore(dim=6, n_shards=n_shards, replication=replication)
        sharded.add(keys, vectors)
        assert_results_match(sharded.query_batch(queries, k=13), flat.query_batch(queries, k=13))
        # Replicas really are stored: total rows = unique keys x replication.
        assert sum(sharded.shard_sizes()) == 60 * replication
        assert len(sharded) == 60

    def test_k_exceeding_total_size_returns_everything_once(self):
        keys, vectors = _make_data(3, 5, 4)
        sharded = ShardedVectorStore(dim=4, n_shards=8, replication=3)
        sharded.add(keys, vectors)
        rows = sharded.query_batch(np.zeros((2, 4)), k=50)
        for row in rows:
            assert sorted(key for key, _ in row) == sorted(keys)
            assert [d for _, d in row] == sorted(d for _, d in row)

    def test_ivf_shards_match_flat_with_wide_probe(self):
        keys, vectors = _make_data(7, 200, 8)
        queries = np.random.default_rng(8).normal(size=(6, 8))
        flat = VectorIndex(dim=8)
        flat.add(keys, vectors)
        sharded = ShardedVectorStore(
            dim=8, n_shards=3, shard_backend="ivf",
            shard_params={"train_threshold": 32, "n_partitions": 4},
        )
        sharded.add(keys, vectors)
        sharded.set_n_probe(4)  # probe everything -> exact
        assert_results_match(sharded.query_batch(queries, k=5), flat.query_batch(queries, k=5))

    def test_routing_is_deterministic_and_in_range(self):
        slots = [shard_of("t", f"k{i}", 7) for i in range(300)]
        assert slots == [shard_of("t", f"k{i}", 7) for i in range(300)]
        assert set(slots) <= set(range(7))
        assert len(set(slots)) > 1  # actually spreads


# ---------------------------------------------------------------------------------
# Tenant isolation and quotas
# ---------------------------------------------------------------------------------
class TestTenancy:
    def test_cross_tenant_keys_never_leak(self):
        keys_a, vecs = _make_data(0, 40, 5)
        keys_b = [f"b{i}" for i in range(40)]
        sharded = ShardedVectorStore(dim=5, n_shards=4)
        sharded.add(keys_a, vecs, tenant="alice")
        sharded.add(keys_b, vecs, tenant="bob")  # same vectors, different keys
        queries = np.random.default_rng(1).normal(size=(8, 5))
        for row in sharded.query_batch(queries, k=40, tenant="alice"):
            assert {key for key, _ in row} <= set(keys_a)
        for row in sharded.query_batch(queries, k=40, tenant="bob"):
            assert {key for key, _ in row} <= set(keys_b)

    def test_each_tenant_sees_a_private_flat_equivalent(self):
        keys, vecs = _make_data(2, 30, 4)
        queries = np.random.default_rng(3).normal(size=(4, 4))
        sharded = ShardedVectorStore(dim=4, n_shards=3)
        sharded.add(keys, vecs, tenant="a")
        sharded.add(keys[:10], vecs[:10] + 100.0, tenant="b")  # same keys, other data
        flat_b = VectorIndex(dim=4)
        flat_b.add(keys[:10], vecs[:10] + 100.0)
        assert_results_match(
            sharded.query_batch(queries, k=6, tenant="b"), flat_b.query_batch(queries, k=6)
        )
        assert sharded.tenant_size("a") == 30 and sharded.tenant_size("b") == 10

    def test_unknown_tenant_raises_unless_allow_empty(self):
        sharded = ShardedVectorStore(dim=3)
        sharded.add(["x"], [[1.0, 2.0, 3.0]])
        with pytest.raises(StorageError, match="empty for tenant"):
            sharded.query_batch(np.zeros((2, 3)), tenant="ghost")
        assert sharded.query_batch(np.zeros((2, 3)), tenant="ghost", allow_empty=True) == [[], []]
        with pytest.raises(ValidationError, match="tenant"):
            sharded.add(["y"], [[0.0] * 3], tenant="")

    def test_quota_rejection_is_atomic(self):
        sharded = ShardedVectorStore(dim=3, n_shards=4, tenant_quota=5)
        keys, vecs = _make_data(4, 8, 3)
        with pytest.raises(QuotaExceededError, match="quota"):
            sharded.add(keys, vecs, tenant="t")
        # Nothing landed in any shard: the write was rejected before routing.
        assert sharded.tenant_size("t") == 0
        assert sum(sharded.shard_sizes("t")) == 0
        sharded.add(keys[:5], vecs[:5], tenant="t")
        assert sharded.tenant_size("t") == 5
        # Overwrites of existing keys never count against the quota.
        sharded.add(keys[:5], vecs[:5] * 2.0, tenant="t")
        assert sharded.tenant_size("t") == 5

    def test_per_tenant_quota_overrides_and_live_update(self):
        sharded = ShardedVectorStore(
            dim=2, tenant_quota=2, tenant_quotas={"vip": 100}
        )
        keys, vecs = _make_data(5, 10, 2)
        sharded.add(keys, vecs, tenant="vip")
        with pytest.raises(QuotaExceededError):
            sharded.add(keys[:3], vecs[:3], tenant="pleb")
        assert sharded.tenant_quota("pleb") == 2 and sharded.tenant_quota("vip") == 100
        sharded.set_tenant_quota("pleb", 3)
        sharded.add(keys[:3], vecs[:3], tenant="pleb")
        assert sharded.tenant_size("pleb") == 3

    def test_concurrent_ingest_while_lookup_keeps_isolation(self):
        """Writers hammer two tenants concurrently while readers sweep both:
        no reader ever sees another tenant's key, a torn batch, or an
        unordered result row."""
        dim, per_batch, batches = 6, 16, 12
        sharded = ShardedVectorStore(dim=dim, n_shards=4)
        rng = np.random.default_rng(11)
        sharded.add(["a-seed"], rng.normal(size=(1, dim)), tenant="a")
        sharded.add(["b-seed"], rng.normal(size=(1, dim)), tenant="b")
        queries = rng.normal(size=(4, dim))
        errors = []
        stop = threading.Event()

        def writer(tenant):
            try:
                wrng = np.random.default_rng(hash(tenant) % 2**32)
                for b in range(batches):
                    keys = [f"{tenant}-{b}-{i}" for i in range(per_batch)]
                    sharded.add(keys, wrng.normal(size=(per_batch, dim)), tenant=tenant)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader(tenant, prefixes):
            try:
                while not stop.is_set():
                    for row in sharded.query_batch(queries, k=20, tenant=tenant):
                        for key, _ in row:
                            assert key.startswith(prefixes), key
                        distances = [d for _, d in row]
                        assert distances == sorted(distances)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writers = [threading.Thread(target=writer, args=(t,)) for t in ("a", "b")]
        readers = [
            threading.Thread(target=reader, args=("a", ("a-",))),
            threading.Thread(target=reader, args=("b", ("b-",))),
        ]
        for t in writers + readers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert sharded.tenant_size("a") == sharded.tenant_size("b") == per_batch * batches + 1


# ---------------------------------------------------------------------------------
# Store surface: capabilities, stats, metrics, validation
# ---------------------------------------------------------------------------------
class TestStoreSurface:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="n_shards"):
            ShardedVectorStore(dim=4, n_shards=0)
        with pytest.raises(ConfigurationError, match="replication"):
            ShardedVectorStore(dim=4, n_shards=2, replication=3)
        with pytest.raises(ConfigurationError, match="sharded"):
            ShardedVectorStore(dim=4, shard_backend="sharded")
        with pytest.raises(ConfigurationError):
            ShardedVectorStore(dim=4, shard_backend="no-such-backend")
        with pytest.raises(ConfigurationError, match="tenant_quota"):
            ShardedVectorStore(dim=4, tenant_quota=0)

    def test_registry_construction_and_probe(self):
        store = create_index_backend("sharded", dim=4, n_shards=2)
        caps = probe_index_capabilities(store)
        assert caps.supports_query_batch and caps.supports_scan_stats
        assert not caps.takes_cluster_ids
        assert not caps.supports_n_probe  # flat shards: no probe knob
        ivf_store = create_index_backend(
            "sharded", dim=4, shard_backend="ivf", shard_params={"train_threshold": 16}
        )
        assert probe_index_capabilities(ivf_store).supports_n_probe

    def test_scan_stats_and_metrics(self):
        registry = default_registry()
        sharded = ShardedVectorStore(dim=3, n_shards=2)
        keys, vecs = _make_data(6, 12, 3)
        sharded.add(keys, vecs)
        before = registry.get("repro_shard_queries_total").value
        sharded.query_batch(np.zeros((5, 3)), k=2)
        stats = sharded.scan_stats()
        assert stats["queries"] >= 5 and stats["batches"] >= 1
        assert stats["n_shards"] == 2 and stats["unique_keys"] == 12
        assert registry.get("repro_shard_queries_total").value == before + 5
        sizes = registry.get("repro_shard_size").collect()
        assert sum(child.value for _, child in sizes) >= 12
        assert registry.get("repro_shard_merge_latency_seconds") is not None
        assert registry.get("repro_shard_scatter_fanout_total") is not None

    def test_lww_upsert_through_shards(self):
        sharded = ShardedVectorStore(dim=2, n_shards=3)
        sharded.add(["a", "b", "a"], [[0.0, 0.0], [5.0, 5.0], [9.0, 9.0]])
        assert len(sharded) == 2
        assert sharded.query([9.0, 9.0], k=1)[0][0] == "a"
        sharded.add(["a"], [[-7.0, -7.0]])
        assert len(sharded) == 2
        assert sharded.query([-7.0, -7.0], k=1)[0][0] == "a"
        # No duplicate keys in results even at full k.
        row = sharded.query([0.0, 0.0], k=10)
        assert len(row) == 2 and len({key for key, _ in row}) == 2


# ---------------------------------------------------------------------------------
# Satellite bugfixes on the single-store paths
# ---------------------------------------------------------------------------------
class TestSingleStoreBugfixes:
    def test_empty_flat_index_raises_on_direct_path(self):
        index = VectorIndex(dim=3)
        with pytest.raises(StorageError, match="empty"):
            index.query_batch(np.zeros((1, 3)))

    def test_empty_flat_index_allow_empty_returns_empty_rows(self):
        index = VectorIndex(dim=3)
        assert index.query_batch(np.zeros((4, 3)), k=2, allow_empty=True) == [[]] * 4

    def test_empty_ivf_index_allow_empty_both_modes(self):
        untrained = IVFVectorIndex(dim=3)
        with pytest.raises(StorageError, match="empty"):
            untrained.query_batch(np.zeros((1, 3)))
        assert untrained.query_batch(np.zeros((2, 3)), allow_empty=True) == [[], []]

    def test_flat_add_duplicate_keys_last_write_wins(self):
        index = VectorIndex(dim=2)
        index.add(["k", "k"], [[1.0, 1.0], [4.0, 4.0]])
        assert len(index) == 1
        assert index.query([4.0, 4.0], k=1) == [("k", 0.0)]
        index.add(["k"], [[8.0, 8.0]])
        assert len(index) == 1
        assert index.query([8.0, 8.0], k=1) == [("k", 0.0)]
        # keys never repeat in results regardless of k.
        assert [key for key, _ in index.query([0.0, 0.0], k=5)] == ["k"]

    def test_ivf_add_duplicate_keys_last_write_wins_across_partitions(self):
        rng = np.random.default_rng(9)
        index = IVFVectorIndex(dim=4, n_partitions=4, train_threshold=32, n_probe=4)
        keys = [f"k{i}" for i in range(64)]
        vectors = rng.normal(size=(64, 4))
        index.add(keys, vectors)
        assert len(index) == 64
        # Move k0 far away: it must re-route to another partition, and the
        # old copy must be gone.
        index.add(["k0"], [[50.0] * 4])
        assert len(index) == 64
        row = index.query_batch(np.asarray([[50.0] * 4]), k=1)[0]
        assert row[0][0] == "k0"
        all_keys = [k for k, _ in index.query_batch(np.zeros((1, 4)), k=64)[0]]
        assert sorted(all_keys) == sorted(keys)

    def test_keys_tuple_is_cached_not_rebuilt(self):
        index = VectorIndex(dim=2)
        index.add(["a", "b"], [[0.0, 0.0], [1.0, 1.0]])
        first = index.keys
        assert index.keys is first  # no per-access copy
        index.add(["c"], [[2.0, 2.0]])
        second = index.keys
        assert second is not first and second == ("a", "b", "c")
        assert index.keys is second


# ---------------------------------------------------------------------------------
# Fair round-robin tenancy in the serving plane
# ---------------------------------------------------------------------------------
class TestFairTenancy:
    def _submit(self, batcher, tenant, payload):
        batcher.submit(Request(op="op", payload=payload, tenant=tenant))

    def test_round_robin_batch_composition(self):
        policy = BatchingPolicy(max_batch_size=6, max_wait_ms=0.0, fair_tenancy=True)
        batcher = MicroBatcher(policy)
        for i in range(4):
            self._submit(batcher, "a", f"a{i}")
        for i in range(2):
            self._submit(batcher, "b", f"b{i}")
        batch = batcher.next_batch()
        # One per tenant in rotation until b drains, then a fills the rest.
        assert [r.payload for r in batch] == ["a0", "b0", "a1", "b1", "a2", "a3"]

    def test_fair_share_admission_cap(self):
        policy = BatchingPolicy(
            max_batch_size=4, max_wait_ms=50.0, max_queue_depth=8, fair_tenancy=True
        )
        batcher = MicroBatcher(policy)
        # A lone tenant is work-conserving: it may fill the whole queue.
        for i in range(8):
            self._submit(batcher, "hog", i)
        with pytest.raises(ServiceOverloadedError, match="fair share"):
            self._submit(batcher, "hog", 99)
        batcher.next_batch()  # drain 4; hog=4 queued
        # With two active tenants the hog is capped at half the queue.
        self._submit(batcher, "small", 0)
        with pytest.raises(ServiceOverloadedError, match="fair share"):
            self._submit(batcher, "hog", 99)
        # The small tenant still has room up to its own share.
        for i in range(1, 4):
            self._submit(batcher, "small", i)
        assert batcher.depth() == 8

    def test_untenanted_requests_share_one_class(self):
        policy = BatchingPolicy(max_batch_size=4, max_wait_ms=0.0, fair_tenancy=True)
        batcher = MicroBatcher(policy)
        self._submit(batcher, None, "x0")
        self._submit(batcher, "t", "t0")
        self._submit(batcher, None, "x1")
        batch = batcher.next_batch()
        assert sorted(r.payload for r in batch) == ["t0", "x0", "x1"]

    def test_flush_and_close_work_in_fair_mode(self):
        policy = BatchingPolicy(max_batch_size=8, max_wait_ms=10_000.0, fair_tenancy=True)
        batcher = MicroBatcher(policy)
        self._submit(batcher, "a", 1)
        batcher.flush()
        assert [r.payload for r in batcher.next_batch()] == [1]
        self._submit(batcher, "b", 2)
        batcher.close()
        assert [r.payload for r in batcher.next_batch()] == [2]
        assert batcher.next_batch() is None

    def test_default_fifo_path_unchanged(self):
        batcher = MicroBatcher(BatchingPolicy(max_batch_size=3, max_wait_ms=0.0))
        for i in range(5):
            batcher.submit(Request(op="op", payload=i, tenant="ignored"))
        assert [r.payload for r in batcher.next_batch()] == [0, 1, 2]
        assert batcher.depth() == 2

    def test_runtime_threads_tenant_through(self):
        policy = BatchingPolicy(max_batch_size=4, max_wait_ms=1.0, fair_tenancy=True)
        runtime = ServingRuntime({"echo": lambda batch: batch}, policy=policy)
        with runtime:
            futures = [
                runtime.submit("echo", i, tenant="a" if i % 2 else "b") for i in range(10)
            ]
            assert [f.result(timeout=5) for f in futures] == list(range(10))
            assert runtime.call("echo", "solo", tenant="c", timeout=5) == "solo"


# ---------------------------------------------------------------------------------
# Spec plane and deployment wiring
# ---------------------------------------------------------------------------------
class TestShardingSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="shards"):
            ShardingSpec(shards=0)
        with pytest.raises(ConfigurationError, match="replication"):
            ShardingSpec(shards=2, replication=5)
        with pytest.raises(ConfigurationError, match="sharded"):
            ShardingSpec(shard_backend="sharded")
        with pytest.raises(ConfigurationError, match="default_quota"):
            ShardingSpec(default_quota=-1)
        with pytest.raises(ConfigurationError, match="tenant_quotas"):
            ShardingSpec(tenant_quotas={"t": 0})
        with pytest.raises(ConfigurationError, match="invalid parameters"):
            ShardingSpec(shard_params={"no_such_arg": 1})

    def test_round_trip_and_digest_stability(self):
        spec = ShardingSpec(shards=6, replication=2, default_quota=10,
                            tenant_quotas={"a": 5})
        assert ShardingSpec.from_dict(spec.to_dict()) == spec
        system = SystemSpec(index=IndexSpec("sharded"), sharding=spec)
        assert SystemSpec.from_dict(system.to_dict()) == system
        assert SystemSpec.from_json(system.to_json()).digest() == system.digest()

    def test_sharding_requires_sharded_backend(self):
        with pytest.raises(ConfigurationError, match="requires"):
            SystemSpec(sharding=ShardingSpec())
        with pytest.raises(ConfigurationError, match="duplicate"):
            SystemSpec(
                index=IndexSpec("sharded", params={"n_shards": 2}),
                sharding=ShardingSpec(),
            )

    def test_sharded_preset_shape(self):
        spec = preset("sharded")
        assert spec.index.backend == "sharded"
        assert spec.sharding is not None and spec.sharding.shards == 4
        assert spec.serving is not None
        assert spec.serving.batching["fair_tenancy"] is True

    def test_deployment_runs_sharded_preset_end_to_end(self):
        rng = np.random.default_rng(0)
        images = rng.normal(size=(40, 6, 6)).astype(np.float32)
        labels = rng.normal(size=(40, 3)).astype(np.float32)
        dep = Deployment.from_preset("sharded")
        try:
            dep.fit(images, labels)
            stats = dep.fairds.index_stats()
            assert stats["n_shards"] == 4 and stats["unique_keys"] == 40
            with dep.serve() as runtime:
                runtime.call("nearest_labeled", images[0], tenant="userA", timeout=10)
                snap = runtime.telemetry_snapshot()
                assert snap["index_scan"]["n_shards"] == 4
            snap = dep.snapshot()
            assert snap["sharding"]["spec"]["shards"] == 4
            assert snap["sharding"]["stats"]["unique_keys"] == 40
        finally:
            dep.close()

    def test_deployment_merges_sharding_into_index_params(self):
        spec = SystemSpec(
            index=IndexSpec("sharded"),
            sharding=ShardingSpec(shards=3, replication=2, default_quota=500),
            serving=ServingSpec(batching={"fair_tenancy": True}),
        )
        dep = Deployment.from_spec(spec)
        try:
            assert dep.fairds.index_params["n_shards"] == 3
            assert dep.fairds.index_params["replication"] == 2
            assert dep.fairds.index_params["tenant_quota"] == 500
        finally:
            dep.close()
