"""Fig. 11 — prediction error vs dataset distance (JSD), CookieNetAE.

Same protocol as Fig. 10 with the CookieBox application.  Because the
CookieBox data drift *slowly and monotonically* (photon-energy drift rather
than an abrupt configuration change), the error-vs-distance relationship is
closer to monotone than for BraggNN — the behaviour the paper points out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FairDS
from repro.embedding import PCAEmbedder
from repro.utils.stats import correlation

from common import build_cookienetae_zoo, cookiebox_experiment, cookienetae_error, print_table

TEST_SCANS = (8, 9, 10, 11)


@pytest.mark.figure("fig11")
def test_fig11_error_vs_distance_cookienetae(benchmark, report_sink):
    seed = 0
    experiment = cookiebox_experiment(n_scans=12, samples_per_scan=70, seed=seed)
    hist_x, hist_y = experiment.stacked(range(8))
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=8, seed=seed)
    fairds.fit(hist_x, hist_y.reshape(hist_y.shape[0], -1))

    zoo, fairms = build_cookienetae_zoo(
        experiment, fairds, scan_groups=[(0, 1), (2, 3), (4, 5), (6, 7)], epochs=8, seed=seed
    )

    rows = []
    correlations = []
    for test_scan in TEST_SCANS:
        x, y = experiment.stacked([test_scan])
        dist = fairds.dataset_distribution(x, label=f"scan{test_scan}")
        distances, errors = [], []
        for rec in fairms.rank(dist):
            model = fairms.load(rec)
            err = cookienetae_error(model, x, y)
            distances.append(rec.distance)
            errors.append(err)
            rows.append((test_scan, rec.record.name, rec.distance, err))
        correlations.append(correlation(distances, errors))

    print_table("Fig. 11 — CookieNetAE: prediction error vs JSD distance (4 test datasets)",
                ["test_scan", "zoo_model", "jsd_distance", "error_mse"], rows, sink=report_sink)
    print(f"per-dataset correlation(error, distance): {[round(c, 3) for c in correlations]}")

    # Monotone drift -> positive correlation for most test datasets.
    assert np.mean(correlations) > 0.3

    x, _ = experiment.stacked([TEST_SCANS[0]])
    dist = fairds.dataset_distribution(x)
    benchmark(lambda: fairms.rank(dist))
