"""fairDMS core: the FAIR data service (fairDS), model service (fairMS), and
the combined rapid-model-training workflow (fairDMS).

* :class:`~repro.core.fairds.FairDS` — embeds and clusters historical labeled
  data, stores it in the document database indexed by embedding/cluster, and
  answers pseudo-labeling queries: given new *unlabeled* data, return already
  labeled historical data with the same cluster probability distribution, or
  per-sample nearest labeled neighbours within a distance threshold.
* :class:`~repro.core.model_zoo.ModelZoo` — stores trained models together
  with the cluster PDF of their training dataset.
* :class:`~repro.core.fairms.FairMS` — ranks Zoo models against an input
  dataset's distribution by Jensen-Shannon divergence and recommends the best
  foundation model for fine-tuning (or training from scratch when nothing in
  the Zoo is close enough).
* :class:`~repro.core.fairdms.FairDMS` — ties everything together: detect
  degradation, pseudo-label, recommend, fine-tune, register the new model, and
  refresh the system plane when cluster-assignment certainty drops.
"""

from repro.core.distribution import DatasetDistribution
from repro.core.fairds import FairDS, LookupResult
from repro.core.model_zoo import ModelRecord, ModelZoo
from repro.core.fairms import FairMS, Recommendation
from repro.core.fairdms import FairDMS, ModelUpdateReport, UpdatePolicy
from repro.core.planes import FairDMSService, PlaneActivity

__all__ = [
    "FairDMSService",
    "PlaneActivity",
    "DatasetDistribution",
    "FairDS",
    "LookupResult",
    "ModelRecord",
    "ModelZoo",
    "FairMS",
    "Recommendation",
    "FairDMS",
    "ModelUpdateReport",
    "UpdatePolicy",
]
