"""Shared utilities for the fairDMS reproduction.

The :mod:`repro.utils` package collects the small, dependency-free building
blocks used throughout the library: deterministic random-number handling,
wall-clock timing, distribution statistics (histograms, Jensen-Shannon
divergence, percentiles), content-digest LRU caching, light-weight
thread-pool helpers and the common exception hierarchy.
"""

from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    StorageError,
    NotFittedError,
    ValidationError,
    ServingError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.utils.cache import LRUCache, array_digest, row_digests
from repro.utils.rng import default_rng, spawn_rngs, set_global_seed, get_global_seed
from repro.utils.timing import Timer, StopWatch, timed
from repro.utils.stats import (
    jensen_shannon_divergence,
    kl_divergence,
    latency_summary,
    normalize_distribution,
    histogram_pdf,
    percentile_summary,
    running_mean,
)
from repro.utils.parallel import thread_map, WorkerPool

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "NotFittedError",
    "ValidationError",
    "ServingError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "default_rng",
    "spawn_rngs",
    "set_global_seed",
    "get_global_seed",
    "Timer",
    "StopWatch",
    "timed",
    "jensen_shannon_divergence",
    "kl_divergence",
    "normalize_distribution",
    "histogram_pdf",
    "percentile_summary",
    "latency_summary",
    "running_mean",
    "thread_map",
    "WorkerPool",
    "LRUCache",
    "array_digest",
    "row_digests",
]
