"""The ``Executor`` seam: one interface over inline / thread / process compute.

Every CPU-bound plane (data-parallel training, MC-dropout probes, pseudo-Voigt
peak fitting, batched embedding) calls this seam instead of hand-rolling
thread pools, so the backend is a deployment decision — ``ExecutorSpec`` on
``SystemSpec`` picks it by registry name, and call sites never change.

Two calling shapes:

* :meth:`Executor.map` — stateless fan-out: ``fn(item)`` per item, results in
  input order.  Same semantics as ``utils.parallel.thread_map`` (which now
  delegates here), including ``chunk=True`` ceil-division chunking and
  cancel-and-reraise on the first error.
* :meth:`Executor.open_session` — stateful fan-out for hot loops: a
  :class:`Session` pins per-worker state (built once by ``setup``) and a set
  of named shared ndarrays, then ``session.map(fn, items)`` calls
  ``fn(ctx, item)`` with :class:`WorkerContext` giving each task its worker's
  state and array views.  The process backend maps the arrays into
  ``multiprocessing.shared_memory`` so only task metadata is pickled.

Observability: each ``map`` emits one ``executor.task`` trace span and feeds
the ``repro_executor_*`` metrics family (task counter, queue-depth and
utilization gauges, per-task busy-time histogram) — all labeled by executor
kind.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.observability.metrics import default_registry
from repro.observability.tracing import trace_span
from repro.utils.errors import ComputeError, ConfigurationError


class WorkerContext:
    """What a session task sees: who am I, my state, the shared arrays."""

    __slots__ = ("worker_id", "arrays", "state")

    def __init__(self, worker_id: int, arrays: Mapping[str, np.ndarray], state: Any = None):
        self.worker_id = worker_id
        self.arrays = arrays
        self.state = state


class Session:
    """A stateful fan-out scope: per-worker state + named shared arrays.

    Obtained from :meth:`Executor.open_session`; close it (or close the
    executor) to release per-worker state and shared-memory segments.
    """

    def __init__(self, executor: "Executor", arrays: Mapping[str, np.ndarray]):
        self._executor = executor
        self.arrays: Mapping[str, np.ndarray] = arrays
        self._closed = False

    def map(self, fn: Callable[[WorkerContext, Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn(ctx, item)`` per item; results in input order."""
        if self._closed:
            raise ComputeError("session is closed")
        items = list(items)
        if not items:
            return []
        return self._executor._session_map(self, fn, items)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor._close_session(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def chunk_items(items: List[Any], max_workers: int) -> List[List[Any]]:
    """Ceil-division contiguous chunking (``thread_map``'s historical rule):
    9 items / 4 workers → chunks of 3, i.e. ceil(9/4) per chunk."""
    n = -(-len(items) // max(1, max_workers))
    return [items[i : i + n] for i in range(0, len(items), n)]


class Executor:
    """Abstract compute backend.  Subclasses implement ``_run_map`` (stateless)
    and the session hooks; everything observable lives here."""

    kind: str = "abstract"

    def __init__(self, max_workers: int = 1):
        if not isinstance(max_workers, int) or isinstance(max_workers, bool) or max_workers < 1:
            raise ConfigurationError("max_workers must be an integer >= 1")
        self.max_workers = max_workers
        self._closed = False
        self._sessions: List[Session] = []
        self._tasks_completed = 0
        self._busy_seconds = 0.0

    # -- public surface ----------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any], chunk: bool = False) -> List[Any]:
        """Apply ``fn`` to every item; results in input order.  With
        ``chunk=True``, ``fn`` receives contiguous chunks instead (ceil
        division, matching ``thread_map``)."""
        self._require_open()
        items = list(items)
        if chunk and items:
            items = chunk_items(items, self.max_workers)
        if not items:
            return []
        with trace_span("executor.task", kind=self.kind, tasks=len(items)):
            started = perf_counter()
            results, busy = self._run_map(fn, items)
            self._observe(len(items), busy, perf_counter() - started)
        return results

    def open_session(
        self,
        setup: Optional[Callable[..., Any]] = None,
        setup_args: Tuple[Any, ...] = (),
        shared: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Session:
        """Open a stateful fan-out scope.

        ``setup(ctx, *setup_args)`` runs once per worker (its return value
        becomes ``ctx.state`` for that worker's tasks); ``shared`` arrays are
        made visible to every worker as ``ctx.arrays`` — by reference for
        inline/thread backends, through shared-memory segments for the
        process backend.  For the process backend, ``setup``, its args, and
        every ``fn`` passed to ``session.map`` must be picklable (module-level
        functions).
        """
        self._require_open()
        session = self._open_session(setup, tuple(setup_args), dict(shared or {}))
        self._sessions.append(session)
        return session

    def close(self) -> None:
        """Release workers, sessions, and shared memory.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for session in list(self._sessions):
            session.close()
        self._shutdown()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stats(self) -> Dict[str, Any]:
        """Cumulative parent-observed work: task count and busy seconds (sum
        of per-task compute time inside workers, excluding dispatch)."""
        return {
            "kind": self.kind,
            "max_workers": self.max_workers,
            "tasks_completed": self._tasks_completed,
            "busy_seconds": self._busy_seconds,
        }

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"{type(self).__name__}(max_workers={self.max_workers}, {state})"

    # -- subclass hooks ----------------------------------------------------------
    def _run_map(self, fn, items) -> Tuple[List[Any], float]:
        raise NotImplementedError

    def _open_session(self, setup, setup_args, shared) -> Session:
        raise NotImplementedError

    def _session_map(self, session: Session, fn, items) -> List[Any]:
        raise NotImplementedError

    def _close_session(self, session: Session) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    def _shutdown(self) -> None:
        pass

    # -- shared plumbing ---------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise ComputeError(f"{self.kind} executor is closed")

    def _observe(self, tasks: int, busy_seconds: float, wall_seconds: float) -> None:
        self._tasks_completed += tasks
        self._busy_seconds += busy_seconds
        registry = default_registry()
        registry.counter(
            "repro_executor_tasks_total", "Tasks completed by the compute plane", ("kind",)
        ).labels(kind=self.kind).inc(tasks)
        registry.histogram(
            "repro_executor_task_seconds", "Per-task busy time inside workers", ("kind",)
        ).labels(kind=self.kind).observe(busy_seconds / max(1, tasks))
        denominator = max(wall_seconds, 1e-9) * self.max_workers
        registry.gauge(
            "repro_executor_utilization",
            "Busy fraction of the worker pool over the last fan-out",
            ("kind",),
        ).labels(kind=self.kind).set(min(1.0, busy_seconds / denominator))
        registry.gauge(
            "repro_executor_workers", "Configured worker count", ("kind",)
        ).labels(kind=self.kind).set(self.max_workers)

    def _set_queue_depth(self, depth: int) -> None:
        default_registry().gauge(
            "repro_executor_queue_depth", "Tasks dispatched but not yet completed", ("kind",)
        ).labels(kind=self.kind).set(depth)


def _timed_call(fn: Callable[..., Any], *args: Any) -> Tuple[Any, float]:
    started = perf_counter()
    return fn(*args), perf_counter() - started


class InlineExecutor(Executor):
    """Serial reference backend: everything runs in the caller's thread.

    Useful as the parity baseline in tests (same code path as the parallel
    backends, no concurrency) and as the spec default: a deployment without
    an ``executor`` section behaves exactly like one with ``kind="inline"``.
    """

    kind = "inline"

    def __init__(self, max_workers: int = 1):
        super().__init__(max_workers=max_workers)

    def _run_map(self, fn, items):
        results, busy = [], 0.0
        for item in items:
            value, seconds = _timed_call(fn, item)
            results.append(value)
            busy += seconds
        return results, busy

    def _open_session(self, setup, setup_args, shared):
        ctx = WorkerContext(0, shared)
        if setup is not None:
            ctx.state = setup(ctx, *setup_args)
        session = Session(self, shared)
        session._contexts = [ctx]  # type: ignore[attr-defined]
        return session

    def _session_map(self, session, fn, items):
        ctx = session._contexts[0]  # type: ignore[attr-defined]
        with trace_span("executor.task", kind=self.kind, tasks=len(items), session=True):
            started = perf_counter()
            results, busy = [], 0.0
            for item in items:
                value, seconds = _timed_call(fn, ctx, item)
                results.append(value)
                busy += seconds
            self._observe(len(items), busy, perf_counter() - started)
        return results


class ThreadExecutor(Executor):
    """Thread-pool backend: shares the caller's address space, so nothing is
    pickled and shared arrays are plain references.  Best for workloads that
    release the GIL (large-matrix numpy ops, ``least_squares``); pure-Python
    inner loops want the process backend instead."""

    kind = "thread"

    def __init__(self, max_workers: int = 4):
        super().__init__(max_workers=max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="repro-exec"
                )
            return self._pool

    def _collect(self, futures: List[Any]) -> List[Any]:
        """Gather in submission order; on any error cancel what has not
        started and re-raise (``thread_map``'s historical semantics —
        KeyboardInterrupt included)."""
        results = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def _run_map(self, fn, items):
        pool = self._ensure_pool()
        futures = [pool.submit(_timed_call, fn, item) for item in items]
        pairs = self._collect(futures)
        return [value for value, _ in pairs], sum(seconds for _, seconds in pairs)

    def _open_session(self, setup, setup_args, shared):
        contexts = []
        for worker_id in range(self.max_workers):
            ctx = WorkerContext(worker_id, shared)
            if setup is not None:
                ctx.state = setup(ctx, *setup_args)
            contexts.append(ctx)
        session = Session(self, shared)
        session._contexts = contexts  # type: ignore[attr-defined]
        return session

    def _session_map(self, session, fn, items):
        contexts = session._contexts  # type: ignore[attr-defined]
        workers = len(contexts)
        # Round-robin items onto contexts, one runner per context: a context
        # (usually holding a non-thread-safe model replica) never executes
        # two tasks concurrently.
        assignments: List[List[Tuple[int, Any]]] = [[] for _ in range(workers)]
        for index, item in enumerate(items):
            assignments[index % workers].append((index, item))

        def run_slice(ctx: WorkerContext, indexed: List[Tuple[int, Any]]):
            out = []
            for index, item in indexed:
                value, seconds = _timed_call(fn, ctx, item)
                out.append((index, value, seconds))
            return out

        with trace_span("executor.task", kind=self.kind, tasks=len(items), session=True):
            started = perf_counter()
            pool = self._ensure_pool()
            futures = [
                pool.submit(run_slice, ctx, indexed)
                for ctx, indexed in zip(contexts, assignments)
                if indexed
            ]
            slices = self._collect(futures)
            results: List[Any] = [None] * len(items)
            busy = 0.0
            for triples in slices:
                for index, value, seconds in triples:
                    results[index] = value
                    busy += seconds
            self._observe(len(items), busy, perf_counter() - started)
        return results

    def _shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
