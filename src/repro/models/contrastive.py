"""SimCLR-style contrastive representation learning.

Learns an embedding in which two augmented views of the same image are close
and views of different images are far apart, by minimising the NT-Xent loss.
Used by fairDS as one of the pluggable embedding back-ends.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nn.dtype import ensure_float
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import NTXentLoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.rng import SeedLike, default_rng, derive_seed

Augmentation = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class SimCLREncoder:
    """Encoder + projection head trained with the NT-Xent contrastive loss."""

    def __init__(
        self,
        input_dim: int,
        embedding_dim: int = 16,
        projection_dim: int = 8,
        hidden: int = 64,
        temperature: float = 0.5,
        seed: SeedLike = 0,
    ):
        if input_dim < 1 or embedding_dim < 1 or projection_dim < 1:
            raise ValidationError("dimensions must be positive")
        self.input_dim = int(input_dim)
        self.embedding_dim = int(embedding_dim)
        self.encoder = Sequential(
            [
                Dense(input_dim, hidden, seed=derive_seed(seed, 1), name="enc1"),
                ReLU(),
                Dense(hidden, embedding_dim, seed=derive_seed(seed, 2), name="enc2"),
            ],
            name="simclr-encoder",
        )
        self.projector = Sequential(
            [
                Dense(embedding_dim, projection_dim, seed=derive_seed(seed, 3), name="proj"),
            ],
            name="simclr-projector",
        )
        self.loss = NTXentLoss(temperature=temperature)
        self._fitted = False

    def _flatten(self, x: np.ndarray) -> np.ndarray:
        x = ensure_float(x)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValidationError(f"expected (n, {self.input_dim}) input, got {x.shape}")
        return x

    def _forward_full(self, x: np.ndarray, training: bool) -> np.ndarray:
        return self.projector.forward(self.encoder.forward(x, training=training), training=training)

    def _backward_full(self, grad: np.ndarray) -> None:
        self.encoder.backward(self.projector.backward(grad))

    def fit(
        self,
        x: np.ndarray,
        augment: Augmentation,
        epochs: int = 20,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: SeedLike = 0,
    ) -> List[float]:
        """Train with two augmented views per sample; returns per-epoch loss."""
        x = self._flatten(x)
        if x.shape[0] < 2:
            raise ValidationError("contrastive training needs at least 2 samples")
        rng = default_rng(seed)
        params = self.encoder.parameters() + self.projector.parameters()
        optimizer = Adam(params, lr=lr)
        losses: List[float] = []
        n = x.shape[0]
        for _ in range(epochs):
            perm = rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = perm[start : start + batch_size]
                if idx.size < 2:
                    continue
                batch = x[idx]
                view_a = augment(batch, rng)
                view_b = augment(batch, rng)
                za = self._forward_full(view_a, training=True)
                zb = self._forward_full(view_b, training=True)
                # Symmetrised NT-Xent: average of both directions.
                loss_val = 0.5 * (self.loss.forward(za, zb) + self.loss.forward(zb, za))
                grad_a = 0.5 * self.loss.backward(za, zb)
                optimizer.zero_grad()
                self._backward_full(grad_a)
                # Second direction: gradient wrt zb.
                zb2 = self._forward_full(view_b, training=True)
                grad_b = 0.5 * self.loss.backward(zb2, za)
                self._backward_full(grad_b)
                optimizer.step()
                epoch_loss += loss_val
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        self._fitted = True
        return losses

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Return embeddings (without the projection head, as in SimCLR)."""
        if not self._fitted:
            raise NotFittedError("SimCLREncoder.encode() called before fit()")
        return self.encoder.predict(self._flatten(x), batch_size=256)


def train_contrastive(
    x: np.ndarray,
    augment: Augmentation,
    embedding_dim: int = 16,
    epochs: int = 20,
    seed: SeedLike = 0,
    **kwargs,
) -> SimCLREncoder:
    """Convenience one-call constructor + fit."""
    x = ensure_float(x)
    flat_dim = int(np.prod(x.shape[1:]))
    model = SimCLREncoder(flat_dim, embedding_dim=embedding_dim, seed=seed, **kwargs)
    model.fit(x, augment, epochs=epochs, seed=seed)
    return model
