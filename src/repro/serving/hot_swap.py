"""Zero-downtime model hot-swap for the serving runtime.

The continual-learning loop retrains and promotes models while a
:class:`~repro.serving.runtime.ServingRuntime` keeps serving traffic.  The
swap contract is:

* **atomic** — a batch handler snapshots the live ``(version, model)`` pair
  exactly once per batch, so every response was produced by exactly one model
  version (no torn reads where a response carries one version's label and
  another version's prediction);
* **non-disruptive** — batches already executing finish on the model they
  snapshotted; batches that snapshot after the swap see the new model; no
  future is ever dropped or errored by a swap.

:class:`ModelHandle` holds the live pair behind a single reference that is
replaced atomically (one attribute store under the GIL); readers never block
on the swap lock.  :func:`versioned_handler` adapts a model-level batch
function into a :class:`ServingRuntime` handler that applies the snapshot
discipline and stamps every result with the serving version.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Sequence

from repro.observability.tracing import trace_span
from repro.utils.logging import get_logger

logger = get_logger("repro.serving.hot_swap")


@dataclass(frozen=True)
class ModelVersion:
    """An immutable ``(version, model)`` pair — the unit of atomic swap."""

    version: str
    model: Any


@dataclass(frozen=True)
class VersionedResult:
    """One serving response stamped with the model version that produced it."""

    version: str
    value: Any


class ModelHandle:
    """Atomic, versioned reference to the live model.

    Readers call :meth:`get` (a single reference read — never blocks, never
    sees a half-swapped state); writers call :meth:`swap` under an internal
    lock that only serialises concurrent swappers.
    """

    def __init__(self, model: Any, version: str = "v0"):
        self._current = ModelVersion(str(version), model)
        self._lock = threading.RLock()
        self._swap_count = 0
        self._retired: List[str] = []

    def locked(self):
        """Context manager serializing a check-then-swap sequence.

        Readers (:meth:`get`) are never blocked; only other swappers are.
        Use it when the decision to swap depends on external state (e.g. the
        Zoo's current tag holder) that a concurrent swap could invalidate
        between the check and the swap.
        """
        return self._lock

    def get(self) -> ModelVersion:
        """The live ``(version, model)`` pair, as one atomic snapshot."""
        return self._current

    @property
    def version(self) -> str:
        return self._current.version

    @property
    def model(self) -> Any:
        return self._current.model

    @property
    def swap_count(self) -> int:
        return self._swap_count

    @property
    def retired_versions(self) -> List[str]:
        """Version labels replaced by swaps, in retirement order."""
        with self._lock:
            return list(self._retired)

    def swap(self, model: Any, version: str) -> ModelVersion:
        """Install a new live model; returns the pair it replaced.

        In-flight work that already snapshotted the old pair is unaffected.
        """
        replacement = ModelVersion(str(version), model)
        with self._lock:
            old = self._current
            self._current = replacement
            self._swap_count += 1
            self._retired.append(old.version)
        logger.info("hot-swapped model %s -> %s", old.version, replacement.version)
        return old


def versioned_handler(
    handle: ModelHandle, batch_fn: Callable[[Any, List[Any]], Sequence[Any]]
) -> Callable[[List[Any]], List[VersionedResult]]:
    """Wrap ``batch_fn(model, payloads) -> results`` into a serving handler.

    The handle is snapshotted once per batch, so the whole batch runs on one
    model version and every :class:`VersionedResult` is stamped with exactly
    the version that computed it.
    """

    def handler(payloads: List[Any]) -> List[VersionedResult]:
        snapshot = handle.get()
        with trace_span("model.predict", version=snapshot.version, batch=len(payloads)):
            values = batch_fn(snapshot.model, list(payloads))
        return [VersionedResult(snapshot.version, value) for value in values]

    return handler
