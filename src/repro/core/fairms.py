"""fairMS — the FAIR model service.

Given a new dataset's cluster distribution (computed by fairDS), the Model
Manager ranks every model in the Zoo by the Jensen-Shannon divergence between
the new distribution and the distribution of the model's training dataset, and
recommends the closest one as the foundation model for fine-tuning.  A
user-defined distance threshold decides when nothing in the Zoo is close
enough and a model must instead be trained from scratch (paper Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.distribution import DatasetDistribution
from repro.core.model_zoo import ModelRecord, ModelZoo
from repro.nn.network import Sequential
from repro.utils.errors import ConfigurationError, ValidationError


@dataclass
class Recommendation:
    """A ranked Zoo model."""

    record: ModelRecord
    distance: float
    rank: int

    @property
    def model_id(self) -> str:
        return self.record.model_id


class FairMS:
    """The FAIR model service (Model Manager + Zoo access).

    Parameters
    ----------
    zoo:
        The :class:`~repro.core.model_zoo.ModelZoo` holding candidate models.
    distance_threshold:
        Maximum acceptable JSD between the input dataset and a Zoo model's
        training dataset; above it :meth:`should_train_from_scratch` returns
        True.
    """

    def __init__(self, zoo: ModelZoo, distance_threshold: float = 0.5):
        if not 0.0 < distance_threshold <= 1.0:
            raise ConfigurationError("distance_threshold must be in (0, 1]")
        self.zoo = zoo
        self.distance_threshold = float(distance_threshold)

    # -- ranking --------------------------------------------------------------------
    def rank(self, distribution: DatasetDistribution) -> List[Recommendation]:
        """All Zoo models sorted by ascending JSD to ``distribution``."""
        records = self.zoo.records()
        if not records:
            raise ValidationError("the model Zoo is empty")
        scored = sorted(
            (rec for rec in records),
            key=lambda rec: distribution.distance(rec.distribution),
        )
        return [
            Recommendation(record=rec, distance=distribution.distance(rec.distribution), rank=i)
            for i, rec in enumerate(scored)
        ]

    def recommend(self, distribution: DatasetDistribution) -> Recommendation:
        """The best (smallest-distance) Zoo model for ``distribution``."""
        return self.rank(distribution)[0]

    def recommend_best_median_worst(
        self, distribution: DatasetDistribution
    ) -> List[Recommendation]:
        """The best, median and worst ranked models (the Fig. 13/14 comparison set)."""
        ranking = self.rank(distribution)
        return [ranking[0], ranking[len(ranking) // 2], ranking[-1]]

    def should_train_from_scratch(self, distribution: DatasetDistribution) -> bool:
        """True when no Zoo model's training data is within the distance threshold."""
        if len(self.zoo) == 0:
            return True
        return self.recommend(distribution).distance > self.distance_threshold

    # -- retrieval -------------------------------------------------------------------
    def load(self, recommendation: Recommendation) -> Sequential:
        """Load the recommended model ready for fine-tuning."""
        return self.zoo.load_model(recommendation.model_id)

    def register(
        self,
        model: Sequential,
        distribution: DatasetDistribution,
        metrics: Optional[dict] = None,
        **metadata,
    ) -> ModelRecord:
        """Add a newly trained/fine-tuned model to the Zoo (paper: the Zoo
        "can respond with this model in the future if presented with a similar
        data distribution")."""
        return self.zoo.add(model, distribution, metrics=metrics, **metadata)
