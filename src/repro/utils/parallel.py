"""Thread-pool helpers.

The storage and labeling substrates need bounded parallelism: concurrent
readers fetching training mini-batches from the document store, and the
pseudo-Voigt labeler fanning peak fits across workers.  NumPy releases the GIL
for most heavy kernels, so thread-based parallelism is an adequate stand-in
for the multi-process/multi-node execution used in the paper.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _collect_in_order(pool: ThreadPoolExecutor, fn, inputs) -> List:
    """Submit every input and gather results in input order.

    Any ``BaseException`` from a worker — including ``KeyboardInterrupt``,
    which ``concurrent.futures`` captures into the future rather than the
    main thread — is re-raised here after cancelling the not-yet-started
    remainder, so an interrupt in a worker cannot be silently dropped.
    """
    futures = [pool.submit(fn, item) for item in inputs]
    results: List = []
    try:
        for fut in futures:
            results.append(fut.result())
    except BaseException:
        for fut in futures:
            fut.cancel()
        raise
    return results


def thread_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: int = 4,
    chunk: bool = False,
) -> List[R]:
    """Apply ``fn`` to every item using a thread pool, preserving order.

    Parameters
    ----------
    fn:
        Callable applied to each item.
    items:
        Input sequence.
    max_workers:
        Number of worker threads.  ``max_workers <= 1`` runs serially, which
        keeps small workloads free of pool overhead.
    chunk:
        When ``True`` the items are split into at most ``max_workers``
        contiguous chunks and ``fn`` is applied to each chunk instead of each
        item (useful when per-item work is tiny).

    An exception (``KeyboardInterrupt`` included) raised by ``fn`` in any
    worker propagates to the caller; pending items are cancelled.
    """
    items = list(items)
    if not items:
        return []
    if max_workers <= 1:
        if chunk:
            return [fn(items)]  # type: ignore[list-item]
        return [fn(it) for it in items]
    if chunk:
        # Ceil division: floor could leave a tail of up to max_workers - 1
        # extra chunks (9 items / 4 workers -> 5 chunks of [2,2,2,2,1]).
        n = -(-len(items) // max_workers)
        inputs: List = [items[i : i + n] for i in range(0, len(items), n)]
    else:
        inputs = items
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return _collect_in_order(pool, fn, inputs)


class WorkerPool:
    """A long-lived pool of worker threads consuming tasks from a queue.

    Unlike :func:`thread_map`, which is for one-shot fan-out, ``WorkerPool``
    is used by the data loader: workers continuously pull index batches from
    an input queue, fetch the corresponding samples, and push the results onto
    an output queue so the training loop overlaps I/O with computation
    (prefetching).
    """

    def __init__(self, num_workers: int, target: Callable[..., None]) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        self.num_workers = num_workers
        self._target = target
        self._threads: List[threading.Thread] = []
        self._started = False
        self._errors: List[BaseException] = []
        self._errors_lock = threading.Lock()

    def _run(self, worker_id: int, *args, **kwargs) -> None:
        try:
            self._target(worker_id, *args, **kwargs)
        except BaseException as exc:
            # A bare Thread would silently drop anything its target raises
            # (threads have no caller to propagate to).  Record it; interrupts
            # (KeyboardInterrupt/SystemExit — not Exception subclasses) are
            # re-raised in the thread that joins the pool.
            with self._errors_lock:
                self._errors.append(exc)
            if isinstance(exc, Exception):
                raise  # keep the default excepthook traceback for plain bugs

    def start(self, *args, **kwargs) -> None:
        if self._started:
            raise RuntimeError("WorkerPool already started")
        self._started = True
        for worker_id in range(self.num_workers):
            t = threading.Thread(
                target=self._run, args=(worker_id, *args), kwargs=kwargs, daemon=True
            )
            t.start()
            self._threads.append(t)

    def join(self, timeout: Optional[float] = None) -> None:
        """Join all workers, then re-raise any interrupt a worker swallowed.

        A ``KeyboardInterrupt`` (or ``SystemExit``) raised inside a worker
        thread has no path back to the caller on its own; ``join`` is where
        it surfaces, so Ctrl-C during pooled work actually stops the program.
        """
        for t in self._threads:
            t.join(timeout=timeout)
        self.raise_pending_interrupt()

    def raise_pending_interrupt(self) -> None:
        """Re-raise the first captured non-``Exception`` error, if any."""
        with self._errors_lock:
            for i, exc in enumerate(self._errors):
                if not isinstance(exc, Exception):
                    del self._errors[i]
                    raise exc

    @property
    def errors(self) -> List[BaseException]:
        """Errors captured from worker targets (interrupts until re-raised)."""
        with self._errors_lock:
            return list(self._errors)

    @property
    def alive(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())


class ClosableQueue(queue.Queue):
    """A queue with a sentinel-based close protocol for producer/consumer loops."""

    _SENTINEL = object()

    def close(self, n: int = 1) -> None:
        """Signal ``n`` consumers that no more items will arrive."""
        for _ in range(n):
            self.put(self._SENTINEL)

    def __iter__(self):
        while True:
            item = self.get()
            try:
                if item is self._SENTINEL:
                    return
                yield item
            finally:
                self.task_done()
