"""Wire protocol of the network serving plane: length-prefixed JSON frames.

Every message — request or response, either direction — is one **frame**::

    +----------------+----------------------------+
    | length (4B BE) | UTF-8 JSON body (length B) |
    +----------------+----------------------------+

The length prefix makes framing trivial and lets a receiver reject an
oversized frame *before* buffering it (see :func:`read_frame` /
:func:`async_read_frame` and their ``max_frame_bytes`` argument): the body of
a too-large frame is drained in bounded chunks and discarded, the connection
stays usable, and the peer gets a typed ``"frame_too_large"`` error frame
instead of a hang or a desynchronised stream.

Requests and responses are plain dicts:

* request — ``{"id": n, "op": str, "payload": ..., "tenant": str|None,
  "deadline_ms": float|None}``
* success — ``{"id": n, "ok": True, "result": ...}``
* error — ``{"id": n|None, "ok": False, "error": {"type": str,
  "message": str}}`` (``id`` is ``None`` when the offending frame could not
  be parsed at all — e.g. it was oversized).

Payloads and results pass through :func:`encode` / :func:`decode`, a
reversible JSON codec for the value shapes the serving planes exchange:
numpy arrays (dtype + shape + base64 buffer — no precision loss, no
element-wise lists), numpy scalars, tuples (distinguished from lists so
``(images, n_samples)`` lookup payloads survive the wire), ``bytes``, and
:class:`~repro.serving.hot_swap.VersionedResult` (as ``{"version", "value"}``
with a kind marker, so every network response keeps its serving-model stamp).
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Any, Dict, Optional

import numpy as np

from repro.serving.hot_swap import VersionedResult
from repro.utils.errors import FrameTooLargeError, NetworkError

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "ERROR_TYPES",
    "encode",
    "decode",
    "encode_frame",
    "error_body",
    "read_frame",
    "write_frame",
    "async_read_frame",
]

#: Default bound on one frame's JSON body, either direction (16 MiB).
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The typed error codes a server may return (``error.type`` on the wire).
ERROR_TYPES = (
    "overloaded",        # admission control rejected the request
    "closed",            # the serving runtime is not accepting traffic
    "unavailable",       # no healthy replica could accept the request
    "unknown_op",        # the operation is not served here
    "bad_request",       # the frame parsed but the request shape is invalid
    "frame_too_large",   # the frame exceeded max_frame_bytes
    "deadline_exceeded", # the request's deadline expired before dispatch
    "internal",          # the handler raised
)

_KIND = "__repro__"  # marker key of codec-encoded values

_HEADER = struct.Struct(">I")
_DRAIN_CHUNK = 1 << 16


# -- value codec -------------------------------------------------------------------
def encode(value: Any) -> Any:
    """Recursively encode ``value`` into plain JSON types (see module doc)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            _KIND: "ndarray",
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii"),
        }
    if isinstance(value, np.generic):  # numpy scalar -> native
        return encode(value.item())
    if isinstance(value, VersionedResult):
        return {_KIND: "versioned", "version": value.version, "value": encode(value.value)}
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode(v) for v in value]}
    if isinstance(value, (bytes, bytearray)):
        return {_KIND: "bytes", "data": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, list):
        return [encode(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, v in value.items():
            if not isinstance(key, str):
                raise NetworkError(f"cannot encode mapping key {key!r}: keys must be strings")
            out[key] = encode(v)
        return out
    raise NetworkError(
        f"cannot encode value of type {type(value).__name__} for the wire"
    )


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if isinstance(value, list):
        return [decode(v) for v in value]
    if isinstance(value, dict):
        kind = value.get(_KIND)
        if kind is None:
            return {key: decode(v) for key, v in value.items()}
        if kind == "ndarray":
            raw = base64.b64decode(value["data"])
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return arr.reshape(value["shape"]).copy()
        if kind == "tuple":
            return tuple(decode(v) for v in value["items"])
        if kind == "bytes":
            return base64.b64decode(value["data"])
        if kind == "versioned":
            return VersionedResult(value["version"], decode(value["value"]))
        raise NetworkError(f"unknown encoded kind {kind!r}")
    return value


def error_body(
    error_type: str, message: str, request_id: Optional[int] = None
) -> Dict[str, Any]:
    """A typed error response body (``id`` may be unknown for unparseable frames)."""
    if error_type not in ERROR_TYPES:
        raise NetworkError(f"unknown error type {error_type!r}; have {ERROR_TYPES}")
    return {"id": request_id, "ok": False, "error": {"type": error_type, "message": message}}


# -- framing -----------------------------------------------------------------------
def encode_frame(body: Dict[str, Any], max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialise one message into its wire frame (header + JSON body)."""
    data = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(data) > max_frame_bytes:
        raise FrameTooLargeError(
            f"outgoing frame of {len(data)} bytes exceeds max_frame_bytes={max_frame_bytes}"
        )
    return _HEADER.pack(len(data)) + data


def _parse_body(data: bytes) -> Dict[str, Any]:
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetworkError(f"malformed frame body: {exc}") from exc
    if not isinstance(body, dict):
        raise NetworkError(f"frame body must be a JSON object, got {type(body).__name__}")
    return body


# -- blocking socket I/O (sync client) ---------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, _DRAIN_CHUNK))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(
    sock: socket.socket, body: Dict[str, Any],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    sock.sendall(encode_frame(body, max_frame_bytes))


def read_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Read one frame from a blocking socket; raises
    :class:`FrameTooLargeError` (after draining the oversized body, so the
    stream stays framed) or :class:`ConnectionError` on EOF mid-frame."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        remaining = length
        while remaining:
            remaining -= len(sock.recv(min(remaining, _DRAIN_CHUNK)) or b"\x00")
        raise FrameTooLargeError(
            f"incoming frame of {length} bytes exceeds max_frame_bytes={max_frame_bytes}"
        )
    return _parse_body(_recv_exact(sock, length))


# -- asyncio I/O (server + async client) -------------------------------------------
async def async_read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Read one frame from an asyncio stream (same contract as
    :func:`read_frame`); raises :class:`asyncio.IncompleteReadError` on EOF."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > max_frame_bytes:
        remaining = length
        while remaining:
            chunk = await reader.read(min(remaining, _DRAIN_CHUNK))
            if not chunk:
                break  # peer hung up mid-drain; the error below still stands
            remaining -= len(chunk)
        raise FrameTooLargeError(
            f"incoming frame of {length} bytes exceeds max_frame_bytes={max_frame_bytes}"
        )
    return _parse_body(await reader.readexactly(length))
