"""Monte-Carlo dropout uncertainty quantification.

Fig. 2 of the paper plots the 95 % confidence bound of a BraggNN model,
quantified with MC dropout [Gal & Ghahramani 2016], alongside the prediction
error while the experiment drifts.  These helpers implement the same
procedure: run ``n_samples`` stochastic forward passes with dropout active
and summarise the spread of the predictions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.network import Sequential
from repro.utils.errors import ConfigurationError


def mc_dropout_predict(
    model: Sequential, x: np.ndarray, n_samples: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(mean, std)`` of ``n_samples`` stochastic forward passes.

    The model must contain at least one :class:`~repro.nn.layers.Dropout`
    layer, otherwise the passes would be deterministic and the reported
    uncertainty meaningless.
    """
    if n_samples < 2:
        raise ConfigurationError("n_samples must be >= 2 for an uncertainty estimate")
    if not model.has_dropout():
        raise ConfigurationError(
            "MC dropout requires a model with at least one Dropout layer"
        )
    x = np.asarray(x, dtype=np.float64)
    draws = np.stack(
        [model.forward(x, training=True) for _ in range(n_samples)], axis=0
    )
    return draws.mean(axis=0), draws.std(axis=0)


def prediction_interval_width(
    model: Sequential, x: np.ndarray, n_samples: int = 20, confidence: float = 0.95
) -> float:
    """Mean width of the symmetric ``confidence`` interval across outputs.

    For a Gaussian approximation the 95 % interval width is ``2 * 1.96 * std``;
    we report the mean over all samples and output dimensions, matching the
    scalar "uncertainty" series of Fig. 2.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    from scipy.stats import norm

    _, std = mc_dropout_predict(model, x, n_samples=n_samples)
    z = float(norm.ppf(0.5 + confidence / 2.0))
    return float(np.mean(2.0 * z * std))
