"""Property-based tests (hypothesis) on cross-cutting invariants.

These complement the per-module property tests in ``test_utils_stats.py``,
``test_storage.py`` and ``test_clustering.py`` with invariants that span
several components: serialisation round-trips, distribution identities,
sampler guarantees, k-means assignment consistency, and pseudo-Voigt
label recovery.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distribution import DatasetDistribution
from repro.clustering.fuzzy import membership_matrix
from repro.clustering.kmeans import KMeans
from repro.dataio.sampler import WeightedClusterSampler
from repro.labeling.peak_fitting import intensity_centroid
from repro.labeling.pseudo_voigt import PeakParameters, pseudo_voigt_2d
from repro.nn.layers import Dense, ReLU
from repro.nn.network import Sequential
from repro.storage.codecs import CompressedCodec, PickleCodec, RawArrayCodec
from repro.utils.stats import jensen_shannon_divergence, normalize_distribution


# ---------------------------------------------------------------------------------
# Model serialisation
# ---------------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    in_dim=st.integers(1, 8),
    hidden=st.integers(1, 12),
    out_dim=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_model_bytes_roundtrip_preserves_predictions(in_dim, hidden, out_dim, seed):
    model = Sequential(
        [Dense(in_dim, hidden, seed=seed, name="a"), ReLU(), Dense(hidden, out_dim, seed=seed + 1, name="b")]
    )
    restored = Sequential.from_bytes(model.to_bytes())
    x = np.random.default_rng(seed).normal(size=(5, in_dim))
    np.testing.assert_allclose(model.forward(x), restored.forward(x), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
    seed=st.integers(0, 1000),
    dtype=st.sampled_from([np.float64, np.float32, np.int32, np.uint16]),
)
def test_codecs_preserve_dtype_and_values(shape, seed, dtype):
    rng = np.random.default_rng(seed)
    arr = (rng.normal(size=shape) * 100).astype(dtype)
    for codec in (PickleCodec(), CompressedCodec(), RawArrayCodec()):
        out = codec.decode(codec.encode(arr))
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)


# ---------------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    ids=st.lists(st.integers(0, 7), min_size=1, max_size=200),
)
def test_dataset_distribution_pdf_properties(ids):
    dist = DatasetDistribution.from_cluster_ids(ids, n_clusters=8)
    assert dist.pdf.shape == (8,)
    assert dist.pdf.sum() == pytest.approx(1.0)
    assert np.all(dist.pdf >= 0)
    assert dist.n_samples == len(ids)
    # Self-distance is zero; distance to a permuted copy of itself is zero too.
    assert dist.distance(dist) == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    # Subnormal entries (e.g. 5e-324) can underflow to exactly zero when
    # rescaled, which legitimately changes the distribution's support and
    # breaks the invariant being tested.
    p=arrays(np.float64, 6, elements=st.floats(0.0, 10.0, allow_subnormal=False)),
    scale=st.floats(0.1, 50.0),
)
def test_jsd_invariant_to_rescaling(p, scale):
    assume(p.sum() > 0)
    q = p * scale
    assume(np.all(q[p > 0] > 0))  # rescaling must not underflow the support
    assert jensen_shannon_divergence(p, q) == pytest.approx(0.0, abs=1e-9)


# ---------------------------------------------------------------------------------
# Weighted cluster sampler
# ---------------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    n_clusters=st.integers(2, 6),
    n_samples=st.integers(1, 300),
    seed=st.integers(0, 100),
)
def test_weighted_sampler_always_returns_requested_count(n_clusters, n_samples, seed):
    rng = np.random.default_rng(seed)
    cluster_ids = rng.integers(0, n_clusters, size=200)
    pdf = normalize_distribution(rng.random(n_clusters))
    sampler = WeightedClusterSampler(cluster_ids, pdf, n_samples=n_samples, seed=seed)
    drawn = list(sampler)
    assert len(drawn) == n_samples
    assert all(0 <= i < 200 for i in drawn)


# ---------------------------------------------------------------------------------
# K-means / fuzzy memberships
# ---------------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), k=st.integers(2, 5))
def test_kmeans_predict_assigns_nearest_center(seed, k):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(60, 3))
    km = KMeans(n_clusters=k, n_init=1, seed=seed).fit(x)
    query = rng.normal(size=(10, 3))
    labels = km.predict(query)
    distances = km.transform(query)
    np.testing.assert_array_equal(labels, np.argmin(distances, axis=1))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), m=st.floats(1.2, 3.0))
def test_fuzzy_membership_rows_are_distributions(seed, m):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(20, 4))
    centers = rng.normal(size=(5, 4))
    u = membership_matrix(x, centers, m=m)
    assert np.all(u >= -1e-12) and np.all(u <= 1 + 1e-12)
    np.testing.assert_allclose(u.sum(axis=1), 1.0, atol=1e-9)


# ---------------------------------------------------------------------------------
# Pseudo-Voigt generation / labeling consistency
# ---------------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    row=st.floats(4.0, 10.0),
    col=st.floats(4.0, 10.0),
    sigma=st.floats(1.0, 3.0),
    eta=st.floats(0.0, 1.0),
)
def test_centroid_tracks_true_center_for_clean_peaks(row, col, sigma, eta):
    params = PeakParameters(center_row=row, center_col=col, amplitude=1.0,
                            sigma_row=sigma, sigma_col=sigma, eta=eta)
    img = pseudo_voigt_2d((15, 15), params)
    r, c = intensity_centroid(img)
    # The centroid of a clean symmetric peak is biased toward the patch centre
    # when the peak sits near the edge, but stays within ~1 px of the truth in
    # the generator's operating range.
    assert abs(r - row) < 1.0
    assert abs(c - col) < 1.0


@settings(max_examples=25, deadline=None)
@given(
    amplitude=st.floats(0.2, 5.0),
    background=st.floats(0.0, 0.5),
)
def test_pseudo_voigt_peak_height_and_background(amplitude, background):
    params = PeakParameters(center_row=7.0, center_col=7.0, amplitude=amplitude,
                            background=background)
    img = pseudo_voigt_2d((15, 15), params)
    assert img.max() == pytest.approx(background + amplitude, rel=1e-6)
    assert img.min() >= background - 1e-12
