"""Tests for degradation detection and retraining triggers."""

import numpy as np
import pytest

from repro.datasets.bragg import generate_bragg_scan
from repro.datasets.drift import ExperimentCondition, make_two_phase_schedule
from repro.models.braggnn import build_braggnn
from repro.monitoring.drift_detector import DegradationDetector
from repro.monitoring.triggers import CertaintyTrigger, ThresholdTrigger
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.errors import ConfigurationError, ValidationError


# -- triggers ---------------------------------------------------------------------
def test_threshold_trigger_below_direction():
    trig = ThresholdTrigger(80.0, direction="below")
    assert not trig.observe(95.0)
    assert not trig.observe(81.0)
    assert trig.observe(79.0)
    assert trig.times_fired == 1
    assert trig.history == [95.0, 81.0, 79.0]


def test_threshold_trigger_above_direction():
    trig = ThresholdTrigger(0.3, direction="above")
    assert not trig.observe(0.1)
    assert trig.observe(0.5)


def test_threshold_trigger_cooldown_suppresses_repeat_firing():
    trig = ThresholdTrigger(80.0, direction="below", cooldown=2)
    assert trig.observe(10.0)
    assert not trig.observe(10.0)  # cooldown
    assert not trig.observe(10.0)  # cooldown
    assert trig.observe(10.0)
    assert trig.times_fired == 2


def test_trigger_validation():
    with pytest.raises(ConfigurationError):
        ThresholdTrigger(1.0, direction="sideways")
    with pytest.raises(ConfigurationError):
        ThresholdTrigger(1.0, cooldown=-1)
    with pytest.raises(ConfigurationError):
        CertaintyTrigger(threshold_percent=0.0)


def test_certainty_trigger_defaults_to_below_80():
    trig = CertaintyTrigger()
    assert not trig.observe(97.0)
    assert trig.observe(60.0)


# -- DegradationDetector --------------------------------------------------------------
def _trained_braggnn_on_phase0(seed=0):
    schedule = make_two_phase_schedule(n_scans=12, change_at=6, seed=seed)
    early = [generate_bragg_scan(schedule.condition(i), n_peaks=80, seed=i) for i in range(3)]
    x = np.concatenate([s.images for s in early])
    y = np.concatenate([s.normalized_centers for s in early])
    model = build_braggnn(width=4, seed=seed)
    Trainer(model).fit((x, y), val=(x, y),
                       config=TrainingConfig(epochs=12, batch_size=32, lr=3e-3, seed=seed))
    return model, schedule


def test_degradation_detector_flags_phase_change():
    """Reproduces the Fig. 2 behaviour: error jumps after the configuration change."""
    model, schedule = _trained_braggnn_on_phase0()
    detector = DegradationDetector(model, baseline_scans=3, error_factor=1.5, mc_samples=5, error_metric="mse")
    for i in range(12):
        scan = generate_bragg_scan(schedule.condition(i), n_peaks=40, seed=100 + i)
        detector.evaluate_scan(i, scan.images, scan.normalized_centers)
    series = detector.series()
    assert len(series["scan_index"]) == 12
    onset = detector.degradation_onset()
    assert onset is not None and onset >= 6  # degradation only after the phase change
    early_err = np.mean(series["prediction_error"][:6])
    late_err = np.mean(series["prediction_error"][6:])
    assert late_err > early_err


def test_degradation_detector_baseline_not_available_early():
    model, _ = _trained_braggnn_on_phase0()
    detector = DegradationDetector(model, baseline_scans=3, mc_samples=5)
    assert detector.baseline_error is None
    scan = generate_bragg_scan(ExperimentCondition(0), n_peaks=10, seed=0)
    rec = detector.evaluate_scan(0, scan.images, scan.centers / 15.0)
    assert not rec.degraded  # cannot be degraded before a baseline exists


def test_degradation_detector_validation():
    model = build_braggnn(width=4)
    with pytest.raises(ConfigurationError):
        DegradationDetector(model, baseline_scans=0)
    with pytest.raises(ConfigurationError):
        DegradationDetector(model, error_factor=1.0)
    with pytest.raises(ConfigurationError):
        DegradationDetector(model, mc_samples=1)
    with pytest.raises(ConfigurationError):
        DegradationDetector(model, error_metric="bogus")
    detector = DegradationDetector(model, mc_samples=5)
    with pytest.raises(ValidationError):
        detector.evaluate_scan(0, np.zeros((0, 1, 15, 15)), np.zeros((0, 2)))


def test_trigger_reset_rearms_cooldown_and_last_value_tracks_history():
    from repro.monitoring import ThresholdTrigger

    trigger = ThresholdTrigger(threshold=10.0, direction="below", cooldown=3)
    assert trigger.last_value is None
    assert trigger.observe(5.0)           # fires, arms the 3-observation cooldown
    assert not trigger.observe(4.0)       # suppressed by cooldown
    trigger.reset()
    assert trigger.observe(3.0)           # re-armed: fires immediately
    assert trigger.last_value == 3.0
    assert trigger.times_fired == 2
