"""Fuzzy c-means memberships and cluster-assignment certainty.

Fig. 16 of the paper quantifies how *certain* the clustering model is about a
new dataset: for each sample the fuzzy membership of its best cluster is
computed, and the dataset-level certainty is the percentage of samples whose
best membership exceeds 50 %.  When that percentage drops below a threshold
(80 % in the paper), the system plane retrains the embedding and clustering
models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.rng import SeedLike, default_rng
from repro.utils.stats import pairwise_squared_distances

_EPS = 1e-12


def membership_matrix(x: np.ndarray, centers: np.ndarray, m: float = 2.0) -> np.ndarray:
    """Fuzzy membership of each sample (rows) in each cluster (columns).

    Standard fuzzy c-means membership: ``u_ik = 1 / sum_j (d_ik / d_ij)^(2/(m-1))``.
    Samples coinciding with a centre get membership 1 for that centre.
    """
    if m <= 1.0:
        raise ValidationError("fuzzifier m must be > 1")
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
    d2 = pairwise_squared_distances(x, centers)
    d = np.sqrt(d2) + _EPS
    power = 2.0 / (m - 1.0)
    # ratio[i, k, j] = (d_ik / d_ij) ** power ; summed over j.
    inv = (d[:, :, None] / d[:, None, :]) ** power
    u = 1.0 / inv.sum(axis=2)
    # Handle exact coincidence with a centre.
    zero_rows, zero_cols = np.nonzero(d2 <= _EPS)
    if zero_rows.size:
        u[zero_rows] = 0.0
        u[zero_rows, zero_cols] = 1.0
    return u


def assignment_certainty(
    x: np.ndarray, centers: np.ndarray, m: float = 2.0, confidence: float = 0.5
) -> float:
    """Percentage of samples assigned to their best cluster with >= ``confidence`` membership.

    This is the y-axis of Fig. 16 ("percent confidence").  The one-dataset
    special case of :func:`assignment_certainty_batch`, so the single and
    batched monitoring paths can never drift apart.
    """
    return assignment_certainty_batch([x], centers, m=m, confidence=confidence)[0]


def assignment_certainty_batch(
    xs, centers: np.ndarray, m: float = 2.0, confidence: float = 0.5
) -> "list[float]":
    """Per-dataset assignment certainty for a batch of embedding arrays.

    The fuzzy membership matrix is computed once over the concatenated rows of
    all datasets and split back, so a batch of monitoring probes costs one
    distance computation instead of one per dataset.
    """
    if not 0.0 < confidence < 1.0:
        raise ValidationError("confidence must be in (0, 1)")
    datasets = [np.atleast_2d(np.asarray(x, dtype=np.float64)) for x in xs]
    if not datasets:
        return []
    lengths = [d.shape[0] for d in datasets]
    u = membership_matrix(np.vstack(datasets), centers, m=m)
    best = u.max(axis=1)
    out: "list[float]" = []
    start = 0
    for n in lengths:
        out.append(float(100.0 * np.mean(best[start : start + n] >= confidence)))
        start += n
    return out


class FuzzyCMeans:
    """Fuzzy c-means clustering (Bezdek) — soft assignments with fuzzifier ``m``."""

    def __init__(
        self,
        n_clusters: int = 8,
        m: float = 2.0,
        max_iter: int = 100,
        tol: float = 1e-5,
        seed: SeedLike = 0,
    ):
        if n_clusters < 1:
            raise ValidationError("n_clusters must be >= 1")
        if m <= 1.0:
            raise ValidationError("fuzzifier m must be > 1")
        self.n_clusters = int(n_clusters)
        self.m = float(m)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.cluster_centers_: Optional[np.ndarray] = None
        self.n_iter_: int = 0

    def fit(self, x: np.ndarray) -> "FuzzyCMeans":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValidationError("expected 2-D input")
        if x.shape[0] < self.n_clusters:
            raise ValidationError("need at least n_clusters samples")
        rng = default_rng(self.seed)
        u = rng.random((x.shape[0], self.n_clusters))
        u /= u.sum(axis=1, keepdims=True)
        centers = np.zeros((self.n_clusters, x.shape[1]))
        for iteration in range(1, self.max_iter + 1):
            um = u**self.m
            centers = (um.T @ x) / np.maximum(um.sum(axis=0)[:, None], _EPS)
            new_u = membership_matrix(x, centers, m=self.m)
            change = float(np.abs(new_u - u).max())
            u = new_u
            if change <= self.tol:
                break
        self.cluster_centers_ = centers
        self.membership_ = u
        self.n_iter_ = iteration
        return self

    def predict_membership(self, x: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("FuzzyCMeans.predict_membership() called before fit()")
        return membership_matrix(x, self.cluster_centers_, m=self.m)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_membership(x), axis=1)

    def certainty(self, x: np.ndarray, confidence: float = 0.5) -> float:
        if self.cluster_centers_ is None:
            raise NotFittedError("FuzzyCMeans.certainty() called before fit()")
        return assignment_certainty(x, self.cluster_centers_, m=self.m, confidence=confidence)
