"""repro — a from-scratch reproduction of *fairDMS: Rapid Model Training by
Data and Model Reuse* (CLUSTER 2022).

The top-level package re-exports the main user-facing entry points; see the
sub-packages for the full substrates:

* :mod:`repro.core` — fairDS, fairMS, fairDMS.
* :mod:`repro.embedding` / :mod:`repro.clustering` — representation learning
  and clustering services.
* :mod:`repro.storage` / :mod:`repro.dataio` — document store, file store and
  data loaders.
* :mod:`repro.models` / :mod:`repro.nn` — application models and the NumPy
  neural-network framework they are built on.
* :mod:`repro.datasets` / :mod:`repro.labeling` — synthetic scientific
  datasets and the conventional pseudo-Voigt labeling baseline.
* :mod:`repro.workflow` / :mod:`repro.monitoring` — orchestration and
  degradation monitoring.
* :mod:`repro.api` — the declarative plane: :class:`~repro.api.spec.SystemSpec`
  configs, the package-wide component registry, and the
  :class:`~repro.api.deployment.Deployment` facade (``python -m repro`` CLI).
"""

from repro.core import (
    DatasetDistribution,
    FairDMS,
    FairDS,
    FairMS,
    LookupResult,
    ModelRecord,
    ModelUpdateReport,
    ModelZoo,
    Recommendation,
    UpdatePolicy,
)

__version__ = "1.1.0"

#: Declarative-plane names re-exported lazily (PEP 562): the spec/deployment
#: modules pull in serving + workflow, which plain data-plane users of
#: ``import repro`` should not pay for.
_API_EXPORTS = {
    "Deployment": "repro.api.deployment",
    "SystemSpec": "repro.api.spec",
    "preset": "repro.api.spec",
}

__all__ = [
    "DatasetDistribution",
    "Deployment",
    "FairDS",
    "FairMS",
    "FairDMS",
    "LookupResult",
    "ModelRecord",
    "ModelUpdateReport",
    "ModelZoo",
    "Recommendation",
    "SystemSpec",
    "UpdatePolicy",
    "preset",
    "__version__",
]


def __getattr__(name: str):
    try:
        module_name = _API_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_API_EXPORTS))
