"""Deterministic random-number helpers.

All stochastic components in the library (weight initialisation, data
generators, samplers, k-means initialisation, augmentations) accept either an
integer seed or a :class:`numpy.random.Generator`.  These helpers provide the
single conversion point so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

_GLOBAL_SEED: int = 0


def set_global_seed(seed: int) -> None:
    """Set the library-wide default seed used when ``seed=None`` is passed."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)


def get_global_seed() -> int:
    """Return the library-wide default seed."""
    return _GLOBAL_SEED


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use the global seed), an integer, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` statistically independent generators from ``seed``.

    Used to give each data-loader worker / parallel labeling worker its own
    stream without correlated draws.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the parent's bit generator.
        children = seed.bit_generator.seed_seq.spawn(n)  # type: ignore[union-attr]
        return [np.random.default_rng(c) for c in children]
    if seed is None:
        seed = _GLOBAL_SEED
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(c) for c in ss.spawn(n)]


def derive_seed(seed: SeedLike, *salt: int) -> int:
    """Derive a deterministic integer seed from ``seed`` and salt values."""
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    elif seed is None:
        base = _GLOBAL_SEED
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    else:
        base = int(seed)
    mixed = np.random.SeedSequence([base, *[int(s) for s in salt]])
    return int(mixed.generate_state(1)[0] % (2**31 - 1))


def shuffled_indices(n: int, seed: SeedLike = None) -> np.ndarray:
    """Return a random permutation of ``range(n)``."""
    return default_rng(seed).permutation(n)


def bootstrap_indices(n: int, size: Optional[int] = None, seed: SeedLike = None) -> np.ndarray:
    """Sample ``size`` indices from ``range(n)`` with replacement."""
    rng = default_rng(seed)
    return rng.integers(0, n, size=n if size is None else size)


def weighted_choice(
    weights: Sequence[float], size: int, seed: SeedLike = None
) -> np.ndarray:
    """Draw ``size`` indices proportionally to ``weights`` (with replacement)."""
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        # Degenerate: fall back to uniform.
        p = np.full(w.size, 1.0 / w.size)
    else:
        p = w / total
    return default_rng(seed).choice(w.size, size=size, p=p)
