#!/usr/bin/env python
"""HEDM scenario: detect degradation, compare fairDMS against conventional relabeling.

Reproduces, at example scale, the story of the paper's BraggNN case study
(Section III-H):

* a BraggNN model trained on the early phase of an HEDM experiment degrades
  when the sample deforms (the experiment's configuration changes),
* the degradation is detected from prediction error + MC-dropout uncertainty,
* the model is then updated two ways:
    (a) the legacy workflow — label the new scan with pseudo-Voigt fitting and
        retrain from scratch, and
    (b) the fairDMS workflow — pseudo-label from the historical store and
        fine-tune the fairMS-recommended Zoo model,
  and the end-to-end times and resulting accuracies are compared.

Run with:  python examples/hedm_bragg_experiment.py
"""

from __future__ import annotations

import numpy as np

from repro import FairDMS, FairDS, UpdatePolicy
from repro.datasets import BraggPeakDataset, make_two_phase_schedule
from repro.embedding import PCAEmbedder
from repro.labeling import VOIGT_80, LabelingEngine
from repro.models import build_braggnn
from repro.monitoring import DegradationDetector
from repro.nn.metrics import euclidean_pixel_error
from repro.nn.trainer import Trainer, TrainingConfig
from repro.utils.timing import Timer


def main() -> None:
    seed = 0
    schedule = make_two_phase_schedule(n_scans=16, change_at=8, seed=seed)
    experiment = BraggPeakDataset(schedule, peaks_per_scan=100, seed=seed)

    # --- bootstrap on the early phase -------------------------------------------------
    hist_images, hist_labels = experiment.stacked(range(4))
    fairds = FairDS(PCAEmbedder(embedding_dim=8), n_clusters=8, seed=seed)
    config = TrainingConfig(epochs=15, batch_size=32, lr=3e-3, seed=seed)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=4, seed=seed),
        training_config=config,
        policy=UpdatePolicy(distance_threshold=0.7, certainty_threshold=60.0),
        seed=seed,
    )
    record = dms.bootstrap(hist_images, hist_labels)
    deployed = dms.fairms.zoo.load_model(record.model_id)
    print(f"Deployed BraggNN trained on scans 0-3 ({hist_images.shape[0]} peaks).")

    # --- monitor scans for degradation (Fig. 2 style) -----------------------------------
    detector = DegradationDetector(deployed, baseline_scans=3, error_factor=1.5,
                                   mc_samples=8, error_metric="mse")
    print("\nscan  pred.error  uncertainty  degraded")
    onset = None
    for i in range(4, 16):
        scan = experiment.scan(i)
        rec = detector.evaluate_scan(i, scan.images, scan.normalized_centers)
        print(f"{i:4d}  {rec.prediction_error:10.5f}  {rec.uncertainty:11.5f}  {rec.degraded}")
        if rec.degraded and onset is None:
            onset = i
            break
    if onset is None:
        onset = 12
    print(f"\nDegradation detected at scan {onset}; updating the model for scan {onset}.")
    new_scan = experiment.scan(onset)

    # --- legacy workflow: pseudo-Voigt labeling + train from scratch ----------------------
    with Timer() as legacy_timer:
        labeling = LabelingEngine(cost_model=VOIGT_80, local_workers=2, sample_fraction=0.5)
        report_label = labeling.label(new_scan.images[:, 0])
        legacy_model = build_braggnn(width=4, seed=seed + 1)
        Trainer(legacy_model).fit(
            (new_scan.images, report_label.labels / 15.0),
            val=(new_scan.images, new_scan.normalized_centers),
            config=config,
        )
    legacy_total = report_label.simulated_wall_clock + legacy_timer.elapsed

    # --- fairDMS workflow -------------------------------------------------------------------
    report = dms.update_model(new_scan.images, label=f"scan-{onset}")

    # --- compare ------------------------------------------------------------------------------
    truth = new_scan.centers
    legacy_err = np.median(euclidean_pixel_error(legacy_model.predict(new_scan.images) * 15, truth))
    fair_err = np.median(euclidean_pixel_error(report.model.predict(new_scan.images) * 15, truth))

    print("\n=== model update comparison ===")
    print(f"legacy  (Voigt-80 + scratch): {legacy_total:9.1f} s simulated "
          f"(labeling {report_label.simulated_wall_clock:.1f} s), median error {legacy_err:.3f} px")
    print(f"fairDMS (reuse + fine-tune) : {report.end_to_end_time:9.3f} s "
          f"(label {report.label_time:.3f} s, train {report.train_time:.3f} s), "
          f"median error {fair_err:.3f} px")
    speedup = legacy_total / max(report.end_to_end_time, 1e-9)
    print(f"end-to-end speedup          : {speedup:.0f}x")


if __name__ == "__main__":
    main()
