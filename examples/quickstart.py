#!/usr/bin/env python
"""Quickstart: rapid model updating with fairDMS in ~30 seconds on a laptop.

The script walks through the paper's core loop end to end, configured
entirely through the declarative API plane — the whole system is ten lines
of :class:`~repro.api.spec.SystemSpec`, materialised by
:class:`~repro.api.deployment.Deployment`:

1. generate a synthetic HEDM experiment whose conditions drift over time,
2. ``fit()`` the deployment on the early, already-labeled scans (this trains
   the embedding + clustering models, fills the data store, and registers an
   initial BraggNN in the model Zoo),
3. pretend a later scan arrives *unlabeled* after the deployed model has
   degraded, and
4. ``update_model()``: pseudo-label via fairDS, pick the best Zoo model via
   fairMS, fine-tune it, and report the timing breakdown.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Deployment, SystemSpec
from repro.api.spec import ClusteringSpec, EmbedderSpec, ModelSpec
from repro.datasets import BraggPeakDataset, make_two_phase_schedule
from repro.nn.metrics import euclidean_pixel_error


def main() -> None:
    # The whole system, declaratively.  Every component is named by its
    # registry key; swap "pca" for "byol", or "braggnn" for "cookienetae",
    # and nothing else changes.
    spec = SystemSpec(
        name="quickstart",
        seed=0,
        embedder=EmbedderSpec("pca", {"embedding_dim": 8}),
        clustering=ClusteringSpec("kmeans", n_clusters=8),
        model=ModelSpec("braggnn", {"width": 4},
                        training={"epochs": 15, "batch_size": 32, "lr": 3e-3}),
        policy={"distance_threshold": 0.6, "certainty_threshold": 60.0},
    )
    print(f"SystemSpec {spec.name!r}, digest {spec.digest()[:12]}")

    # 1. A drifting experiment: 20 scans, configuration change at scan 12.
    schedule = make_two_phase_schedule(n_scans=20, change_at=12, seed=spec.seed)
    experiment = BraggPeakDataset(schedule, peaks_per_scan=120, seed=spec.seed)

    with Deployment.from_spec(spec) as dep:
        # 2. Bootstrap on the first 4 (labeled) scans.
        hist_images, hist_labels = experiment.stacked(range(4))
        print("Bootstrapping fairDMS on 4 historical scans "
              f"({hist_images.shape[0]} labeled Bragg peaks)...")
        dep.fit(hist_images, hist_labels)
        print(f"  data store: {dep.fairds.store_size()} samples "
              f"in {dep.fairds.n_clusters} clusters")
        print(f"  model Zoo : {len(dep.zoo)} model(s)")

        # 3. A new scan arrives unlabeled (still phase 0, so the Zoo is useful).
        new_scan = experiment.scan(6)
        print("\nScan 6 arrives unlabeled; requesting a model update...")
        report = dep.update_model(new_scan.images, label="scan-6")

        print(f"  strategy            : {report.strategy}")
        if report.recommendation is not None:
            print(f"  recommended model   : {report.recommendation.record.name} "
                  f"(JSD = {report.recommendation.distance:.3f})")
        print(f"  cluster certainty   : {report.certainty:.1f}%")
        print(f"  pseudo-label time   : {report.label_time * 1e3:.1f} ms")
        print(f"  training time       : {report.train_time:.2f} s "
              f"({report.history.epochs_run} epochs)")
        print(f"  end-to-end time     : {report.end_to_end_time:.2f} s")

        # 4. Check the updated model on the new scan's ground truth.
        pred = report.model.predict(new_scan.images)
        err = euclidean_pixel_error(pred * 15.0, new_scan.centers)
        print(f"\nUpdated model error on scan 6: median {np.median(err):.3f} px, "
              f"P95 {np.percentile(err, 95):.3f} px")
        print(f"Model Zoo now holds {len(dep.zoo)} models.")


if __name__ == "__main__":
    main()
