"""ReadWriteLock behaviour under real threads.

The document database leans on this lock for "parallel reads during training,
exclusive writes during data updates", so the guarantees are exercised with
actual thread interleavings: reader concurrency, writer preference over
late-arriving readers, and absence of deadlock/starvation under a mixed
read/write hammer.
"""

import threading
import time

import pytest

from repro.storage.concurrency import ReadWriteLock

JOIN_TIMEOUT = 20.0


def _join_all(threads):
    for t in threads:
        t.join(JOIN_TIMEOUT)
    alive = [t.name for t in threads if t.is_alive()]
    assert not alive, f"threads deadlocked: {alive}"


def test_many_concurrent_readers_overlap():
    """N readers must be able to hold the lock simultaneously."""
    lock = ReadWriteLock()
    n = 8
    barrier = threading.Barrier(n, timeout=JOIN_TIMEOUT)
    failures = []

    def reader():
        with lock.read():
            try:
                # Every reader waits inside the critical section until all n
                # are inside it at once — impossible unless reads overlap.
                barrier.wait()
            except threading.BrokenBarrierError:  # pragma: no cover
                failures.append("barrier broke: readers did not overlap")

    threads = [threading.Thread(target=reader, name=f"reader-{i}") for i in range(n)]
    for t in threads:
        t.start()
    _join_all(threads)
    assert not failures


def test_writer_preference_blocks_new_readers():
    """A reader arriving while a writer waits must run *after* the writer."""
    lock = ReadWriteLock()
    order = []
    first_reader_in = threading.Event()
    writer_waiting = threading.Event()

    def long_reader():
        with lock.read():
            first_reader_in.set()
            # Hold the lock until the writer is queued and a late reader exists.
            writer_waiting.wait(JOIN_TIMEOUT)
            time.sleep(0.05)
        order.append("reader-1-done")

    def writer():
        first_reader_in.wait(JOIN_TIMEOUT)
        writer_waiting.set()  # set just before blocking on acquire
        with lock.write():
            order.append("writer")

    def late_reader():
        writer_waiting.wait(JOIN_TIMEOUT)
        time.sleep(0.01)  # ensure the writer is already parked in acquire_write
        with lock.read():
            order.append("late-reader")

    threads = [
        threading.Thread(target=long_reader, name="long_reader"),
        threading.Thread(target=writer, name="writer"),
        threading.Thread(target=late_reader, name="late_reader"),
    ]
    for t in threads:
        t.start()
    _join_all(threads)
    # Writer preference: the late reader saw writers_waiting > 0 and yielded.
    assert order.index("writer") < order.index("late-reader")


def test_writer_excludes_all_readers_and_writers():
    lock = ReadWriteLock()
    state = {"writers": 0, "readers": 0}
    violations = []

    def writer():
        for _ in range(20):
            with lock.write():
                state["writers"] += 1
                if state["writers"] != 1 or state["readers"] != 0:
                    violations.append(dict(state))
                state["writers"] -= 1

    def reader():
        for _ in range(50):
            with lock.read():
                state["readers"] += 1
                if state["writers"] != 0:
                    violations.append(dict(state))
                state["readers"] -= 1

    threads = [threading.Thread(target=writer, name=f"w{i}") for i in range(2)] + [
        threading.Thread(target=reader, name=f"r{i}") for i in range(4)
    ]
    for t in threads:
        t.start()
    _join_all(threads)
    assert not violations


def test_no_starvation_deadlock_under_mixed_hammer():
    """A sustained read storm with interleaved writers completes: writers are
    not starved by readers, and readers drain after every writer burst."""
    lock = ReadWriteLock()
    done = {"reads": 0, "writes": 0}
    count_lock = threading.Lock()

    def reader():
        for _ in range(100):
            with lock.read():
                pass
            with count_lock:
                done["reads"] += 1

    def writer():
        for _ in range(25):
            with lock.write():
                time.sleep(0.0005)
            with count_lock:
                done["writes"] += 1

    threads = [threading.Thread(target=reader, name=f"r{i}") for i in range(6)] + [
        threading.Thread(target=writer, name=f"w{i}") for i in range(2)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    _join_all(threads)
    assert done == {"reads": 600, "writes": 50}
    assert time.perf_counter() - start < JOIN_TIMEOUT
    assert lock.active_readers == 0
