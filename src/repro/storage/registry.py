"""Name-based registry for storage and index backends (back-compat shim).

The scalability ablations of the paper swap the storage/lookup configuration
— document DB vs file store, flat vs cluster-partitioned index — between
otherwise identical runs.  This module makes those backends constructible by
name from configuration instead of hard-coded imports:

    >>> from repro.storage.registry import create_index_backend
    >>> index = create_index_backend("flat", dim=16)
    >>> db = create_storage_backend("documentdb", codec="blosc")

Since the declarative API plane landed, the authoritative store is the
**package-wide component registry** (:mod:`repro.api.registry`), which also
covers embedders, clustering algorithms, models, triggers, and policies.
This module remains as a thin delegating shim over its ``"storage"`` and
``"index"`` kinds — backends registered through either module are visible to
both — plus the two backend protocols:

* ``"storage"`` — sample/document persistence (``"file"``, ``"documentdb"``),
  described by the :class:`StorageBackend` protocol.
* ``"index"`` — nearest-neighbour lookup (``"flat"``, ``"clustered"``),
  described by the :class:`IndexBackend` protocol.

:func:`create_from_config` is **deprecated** in favour of
:func:`repro.api.registry.create_from_spec` (identical semantics, all kinds).
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Protocol, runtime_checkable

import numpy as np

from repro.api import registry as _unified
from repro.storage.vector_index import QueryResult
from repro.utils.errors import ConfigurationError

_BACKEND_KINDS = ("storage", "index")


@runtime_checkable
class StorageBackend(Protocol):
    """Minimal surface every storage backend exposes."""

    def storage_bytes(self) -> int:
        """Total payload bytes currently held by the backend."""
        ...


@runtime_checkable
class IndexBackend(Protocol):
    """Minimal surface every vector-lookup backend exposes."""

    def __len__(self) -> int: ...

    def query(self, vector: np.ndarray, k: int = 1) -> QueryResult: ...

    def query_batch(self, vectors: np.ndarray, k: int = 1) -> List[QueryResult]: ...


@dataclass(frozen=True)
class IndexCapabilities:
    """What an index backend instance's surface actually supports.

    The built-in backends differ structurally — ``clustered`` demands per-row
    ``cluster_ids`` on ``add``, ``flat`` and ``ivf`` refuse them; ``ivf``
    alone exposes the live ``n_probe`` knob and scan statistics; a minimal
    custom backend may only implement single-vector ``query``.  Probing these
    once, here, lets every wiring layer (``FairDS``, the ``Deployment``
    facade, benchmarks) compose any conforming backend without name-based
    special cases.
    """

    #: ``add(keys, vectors, cluster_ids)`` vs ``add(keys, vectors)``.
    takes_cluster_ids: bool
    #: Has a batched ``query_batch``; otherwise callers loop ``query``.
    supports_query_batch: bool
    #: Has the atomic live ``set_n_probe`` knob (IVF-style backends).
    supports_n_probe: bool
    #: Reports cumulative ``scan_stats()`` counters.
    supports_scan_stats: bool


def probe_index_capabilities(index: Any) -> IndexCapabilities:
    """Inspect an index backend instance's signatures exactly once.

    ``add`` is probed for a ``cluster_ids`` parameter (uninspectable C
    callables are assumed to take it, preserving the clustered-backend
    default); the rest are attribute probes.  Call at construction and keep
    the result — per-call ``inspect`` on a hot path is exactly what this
    exists to avoid.
    """
    add = getattr(index, "add", None)
    takes_cluster_ids = False
    if add is not None:
        try:
            takes_cluster_ids = "cluster_ids" in inspect.signature(add).parameters
        except (TypeError, ValueError):  # builtins / C callables without signatures
            takes_cluster_ids = True
    return IndexCapabilities(
        takes_cluster_ids=takes_cluster_ids,
        supports_query_batch=callable(getattr(index, "query_batch", None)),
        supports_n_probe=callable(getattr(index, "set_n_probe", None)),
        supports_scan_stats=callable(getattr(index, "scan_stats", None)),
    )


def _check_kind(kind: str) -> str:
    if kind not in _BACKEND_KINDS:
        raise ConfigurationError(
            f"unknown backend kind {kind!r}; expected one of {sorted(_BACKEND_KINDS)}"
        )
    return kind


def register_backend(
    kind: str,
    name: str,
    factory: Optional[Callable[..., Any]] = None,
    overwrite: bool = False,
):
    """Register ``factory`` (a class or callable) under ``(kind, name)``.

    Usable directly (``register_backend("index", "flat", VectorIndex)``) or as
    a decorator (``@register_backend("index", "annoy")``).  Duplicate names
    raise unless ``overwrite=True``.  Registers into the package-wide
    component registry, so the backend is equally constructible through
    :func:`repro.api.registry.create_component`.
    """
    return _unified.register_component(_check_kind(kind), name, factory, overwrite=overwrite)


def unregister_backend(kind: str, name: str) -> bool:
    """Remove a registered backend; returns True if it existed.

    Mainly for tests and plugins that add temporary backends and must not
    leak them into the process-wide registry.
    """
    return _unified.unregister_component(_check_kind(kind), name)


def available_backends(kind: str) -> List[str]:
    """Names registered for ``kind`` (``"storage"`` or ``"index"``)."""
    return _unified.available_components(_check_kind(kind))


def create_backend(kind: str, name: str, **kwargs: Any) -> Any:
    """Instantiate the backend registered under ``(kind, name)``."""
    return _unified.create_component(_check_kind(kind), name, **kwargs)


def create_storage_backend(name: str, **kwargs: Any) -> StorageBackend:
    return create_backend("storage", name, **kwargs)


def create_index_backend(name: str, **kwargs: Any) -> IndexBackend:
    return create_backend("index", name, **kwargs)


def create_from_config(config: Mapping[str, Any]) -> Any:
    """Instantiate a backend from ``{"kind": ..., "name": ..., "params": {...}}``.

    .. deprecated::
        Use :func:`repro.api.registry.create_from_spec`, which accepts every
        component kind.  This shim validates the kind against the two storage
        kinds and delegates; results are identical for storage/index configs.
    """
    warnings.warn(
        "repro.storage.registry.create_from_config is deprecated; use "
        "repro.api.registry.create_from_spec instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if "kind" not in config or "name" not in config:
        raise ConfigurationError("backend config requires 'kind' and 'name' entries")
    _check_kind(config["kind"])
    return _unified.create_from_spec(config)
