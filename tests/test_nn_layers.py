"""Gradient checks and behavioural tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1d,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    col2im,
    im2col,
)
from repro.utils.errors import ConfigurationError

from tests.conftest import check_layer_gradients, numerical_gradient


# -- Dense ---------------------------------------------------------------------
def test_dense_forward_shape(rng):
    layer = Dense(4, 3, seed=0)
    out = layer.forward(rng.normal(size=(5, 4)))
    assert out.shape == (5, 3)


def test_dense_gradients(rng):
    layer = Dense(4, 3, seed=0)
    check_layer_gradients(layer, rng.normal(size=(6, 4)))


def test_dense_no_bias_gradients(rng):
    layer = Dense(3, 2, bias=False, seed=1)
    assert len(layer.parameters()) == 1
    check_layer_gradients(layer, rng.normal(size=(4, 3)))


def test_dense_rejects_bad_input_shape(rng):
    layer = Dense(4, 3)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(5, 7)))
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(5, 4, 1)))


def test_dense_invalid_config():
    with pytest.raises(ConfigurationError):
        Dense(0, 3)


def test_dense_backward_before_forward_raises(rng):
    layer = Dense(2, 2)
    with pytest.raises(RuntimeError):
        layer.backward(rng.normal(size=(3, 2)))


# -- im2col / col2im --------------------------------------------------------------
def test_im2col_col2im_roundtrip_counts(rng):
    x = rng.normal(size=(2, 3, 6, 6))
    cols, oh, ow = im2col(x, 3, 3, stride=1, pad=1)
    assert cols.shape == (3 * 3 * 3, 2 * oh * ow)
    # col2im of the im2col output sums each pixel as many times as it appears
    # in a patch; with a ones input this gives the patch-coverage count.
    ones = np.ones_like(x)
    cols1, _, _ = im2col(ones, 3, 3, stride=1, pad=1)
    back = col2im(cols1, x.shape, 3, 3, stride=1, pad=1)
    assert back.min() >= 1  # every pixel covered at least once
    assert back.max() <= 9


# -- Conv2D ------------------------------------------------------------------------
def test_conv2d_output_shape(rng):
    layer = Conv2D(2, 4, kernel_size=3, stride=1, padding=1, seed=0)
    x = rng.normal(size=(3, 2, 8, 8))
    out = layer.forward(x)
    assert out.shape == (3, 4, 8, 8)
    assert layer.output_shape(8, 8) == (8, 8)


def test_conv2d_stride_and_no_padding(rng):
    layer = Conv2D(1, 2, kernel_size=3, stride=2, padding=0, seed=0)
    out = layer.forward(rng.normal(size=(2, 1, 7, 7)))
    assert out.shape == (2, 2, 3, 3)


def test_conv2d_gradients(rng):
    layer = Conv2D(2, 3, kernel_size=3, stride=1, padding=1, seed=0)
    check_layer_gradients(layer, rng.normal(size=(2, 2, 5, 5)), atol=1e-4)


def test_conv2d_gradients_stride2(rng):
    layer = Conv2D(1, 2, kernel_size=2, stride=2, padding=0, seed=3)
    check_layer_gradients(layer, rng.normal(size=(2, 1, 4, 4)), atol=1e-4)


def test_conv2d_channel_mismatch(rng):
    layer = Conv2D(3, 2)
    with pytest.raises(ValueError):
        layer.forward(rng.normal(size=(1, 2, 5, 5)))


def test_conv2d_matches_naive_convolution(rng):
    # float64 so the comparison against the float64 naive loop is exact.
    layer = Conv2D(1, 1, kernel_size=3, stride=1, padding=0, bias=False, seed=0, dtype=np.float64)
    x = rng.normal(size=(1, 1, 5, 5))
    out = layer.forward(x)
    w = layer.weight.data[0, 0]
    naive = np.zeros((3, 3))
    for i in range(3):
        for j in range(3):
            naive[i, j] = np.sum(x[0, 0, i : i + 3, j : j + 3] * w)
    np.testing.assert_allclose(out[0, 0], naive, atol=1e-10)


# -- MaxPool2D ---------------------------------------------------------------------
def test_maxpool_forward(rng):
    layer = MaxPool2D(2)
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    out = layer.forward(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_gradients(rng):
    layer = MaxPool2D(2)
    check_layer_gradients(layer, rng.normal(size=(2, 2, 4, 4)), atol=1e-5)


def test_maxpool_invalid_spatial_dims(rng):
    with pytest.raises(ValueError):
        MaxPool2D(3).forward(rng.normal(size=(1, 1, 4, 4)))


# -- activations -------------------------------------------------------------------
@pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh, Softmax])
def test_activation_gradients(layer_cls, rng):
    layer = layer_cls()
    check_layer_gradients(layer, rng.normal(size=(4, 6)))


def test_relu_zeroes_negatives():
    out = ReLU().forward(np.array([[-1.0, 0.5]]))
    np.testing.assert_array_equal(out, [[0.0, 0.5]])


def test_leaky_relu_slope():
    out = LeakyReLU(0.1).forward(np.array([[-2.0, 2.0]]))
    np.testing.assert_allclose(out, [[-0.2, 2.0]])


def test_sigmoid_range_and_stability():
    out = Sigmoid().forward(np.array([[-1000.0, 0.0, 1000.0]]))
    assert np.all(np.isfinite(out))
    assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
    assert out[0, 1] == pytest.approx(0.5)
    assert out[0, 2] == pytest.approx(1.0)


def test_softmax_rows_sum_to_one(rng):
    out = Softmax().forward(rng.normal(size=(5, 7)))
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-6)  # float32 compute


# -- shape layers --------------------------------------------------------------------
def test_flatten_roundtrip(rng):
    layer = Flatten()
    x = rng.normal(size=(3, 2, 4, 4))
    out = layer.forward(x, training=True)
    assert out.shape == (3, 32)
    back = layer.backward(out)
    assert back.shape == x.shape


def test_reshape_roundtrip(rng):
    layer = Reshape((2, 8))
    x = rng.normal(size=(3, 16))
    out = layer.forward(x, training=True)
    assert out.shape == (3, 2, 8)
    assert layer.backward(out).shape == x.shape


# -- Dropout --------------------------------------------------------------------------
def test_dropout_identity_in_eval_mode(rng):
    layer = Dropout(0.5, seed=0)
    x = rng.normal(size=(10, 10)).astype(layer.dtype)
    out = layer.forward(x, training=False)
    assert out is x  # identity, not even a cast copy


def test_dropout_masks_in_training_mode(rng):
    layer = Dropout(0.5, seed=0)
    x = np.ones((200, 50))
    out = layer.forward(x, training=True)
    zero_fraction = np.mean(out == 0)
    assert 0.3 < zero_fraction < 0.7
    # Inverted dropout preserves the expected value.
    assert out.mean() == pytest.approx(1.0, rel=0.1)


def test_dropout_backward_uses_same_mask(rng):
    layer = Dropout(0.5, seed=0)
    x = rng.normal(size=(20, 20))
    out = layer.forward(x, training=True)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad == 0, out == 0)


def test_dropout_invalid_rate():
    with pytest.raises(ConfigurationError):
        Dropout(1.0)
    with pytest.raises(ConfigurationError):
        Dropout(-0.1)


# -- BatchNorm1d ------------------------------------------------------------------------
def test_batchnorm_normalises_batch(rng):
    layer = BatchNorm1d(4)
    x = rng.normal(loc=5.0, scale=3.0, size=(64, 4))
    out = layer.forward(x, training=True)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-6)  # float32 compute
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_gradients(rng):
    layer = BatchNorm1d(3)
    check_layer_gradients(layer, rng.normal(size=(8, 3)), atol=1e-4)


def test_batchnorm_eval_uses_running_stats(rng):
    layer = BatchNorm1d(2, momentum=0.0)  # running stats = last batch stats
    x = rng.normal(loc=2.0, size=(32, 2))
    layer.forward(x, training=True)
    out_eval = layer.forward(x, training=False)
    out_train = layer.forward(x, training=True)
    np.testing.assert_allclose(out_eval, out_train, atol=1e-6)


def test_batchnorm_state_dict_includes_running_stats(rng):
    layer = BatchNorm1d(2)
    layer.forward(rng.normal(size=(16, 2)), training=True)
    state = layer.state_dict()
    assert any("running_mean" in k for k in state)
    fresh = BatchNorm1d(2)
    fresh.load_state_dict(state)
    np.testing.assert_array_equal(fresh.running_mean, layer.running_mean)


def test_batchnorm_shape_validation(rng):
    with pytest.raises(ValueError):
        BatchNorm1d(3).forward(rng.normal(size=(4, 5)))


# -- freeze/unfreeze --------------------------------------------------------------------
def test_freeze_and_unfreeze():
    layer = Dense(3, 2)
    layer.freeze()
    assert all(not p.trainable for p in layer.parameters())
    layer.unfreeze()
    assert all(p.trainable for p in layer.parameters())


def test_state_dict_roundtrip_dense(rng):
    a = Dense(4, 3, seed=0)
    b = Dense(4, 3, seed=99)
    b.load_state_dict(a.state_dict())
    x = rng.normal(size=(2, 4))
    np.testing.assert_allclose(a.forward(x), b.forward(x))


def test_load_state_dict_shape_mismatch():
    a = Dense(4, 3, seed=0, name="d")
    bad_state = {k: v[:2] for k, v in a.state_dict().items()}
    with pytest.raises((ValueError, KeyError)):
        a.load_state_dict(bad_state)
