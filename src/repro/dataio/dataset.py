"""Dataset abstractions returning ``(sample, target)`` pairs by index."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.storage.documentdb import Collection
from repro.storage.file_store import FileStore
from repro.utils.errors import ValidationError

Sample = Tuple[np.ndarray, np.ndarray]


class Dataset:
    """Abstract index-addressable dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Sample:
        raise NotImplementedError

    def fetch_batch(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Fetch several samples and stack them; subclasses may override with a
        vectorised / bulk-fetch implementation."""
        xs, ys = zip(*(self[i] for i in indices))
        return np.stack(xs), np.stack(ys)


class ArrayDataset(Dataset):
    """Dataset over in-memory arrays (the fastest possible baseline)."""

    def __init__(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValidationError("x and y must have the same number of samples")
        if x.shape[0] == 0:
            raise ValidationError("dataset cannot be empty")
        self.x = x
        self.y = y

    def __len__(self) -> int:
        return self.x.shape[0]

    def __getitem__(self, index: int) -> Sample:
        return self.x[index], self.y[index]

    def fetch_batch(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(indices, dtype=int)
        return self.x[idx], self.y[idx]


class DocumentDBDataset(Dataset):
    """Dataset whose samples live as encoded payloads in a document collection.

    Each document must carry a ``payload`` (the sample array, stored through
    the collection's codec) and a ``label`` field (list or array).  Fetching a
    batch decodes each payload — this is the deserialisation cost that the
    Blosc/Pickle configurations of Figs. 6-8 pay and the NFS path does not.
    """

    def __init__(self, collection: Collection, doc_ids: Optional[Sequence[str]] = None):
        self.collection = collection
        self._ids: List[str] = list(doc_ids) if doc_ids is not None else collection.ids()
        if not self._ids:
            raise ValidationError("collection holds no documents")

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, index: int) -> Sample:
        doc = self.collection.get(self._ids[index], decode_payload=True)
        return np.asarray(doc["payload"]), np.asarray(doc.get("label"))

    def fetch_batch(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        ids = [self._ids[i] for i in indices]
        payloads = self.collection.fetch_payloads(ids)
        labels = [self.collection.get(i).get("label") for i in ids]
        return np.stack([np.asarray(p) for p in payloads]), np.stack(
            [np.asarray(l) for l in labels]
        )


class FileStoreDataset(Dataset):
    """Dataset reading samples from a :class:`FileStore` (the "NFS" path)."""

    def __init__(self, store: FileStore, labels: np.ndarray):
        labels = np.asarray(labels)
        if len(store) == 0:
            raise ValidationError("file store is empty")
        if labels.shape[0] != len(store):
            raise ValidationError("labels must match the number of stored samples")
        self.store = store
        self.labels = labels

    def __len__(self) -> int:
        return len(self.store)

    def __getitem__(self, index: int) -> Sample:
        return self.store.read(index), self.labels[index]


class TransformDataset(Dataset):
    """Applies a transform to the samples of a wrapped dataset on the fly."""

    def __init__(self, base: Dataset, transform: Callable[[np.ndarray], np.ndarray]):
        self.base = base
        self.transform = transform

    def __len__(self) -> int:
        return len(self.base)

    def __getitem__(self, index: int) -> Sample:
        x, y = self.base[index]
        return self.transform(x), y
