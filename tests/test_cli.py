"""Tests of the ``python -m repro`` CLI (repro.__main__)."""

import json

import pytest

from repro.__main__ import main
from repro.api.spec import preset


@pytest.fixture()
def specs_dir(tmp_path):
    directory = tmp_path / "specs"
    directory.mkdir()
    for name in ("minimal", "serving", "continual", "ann"):
        preset(name).save(directory / f"{name}.json")
    return directory


def test_presets_lists_all_and_writes_files(tmp_path, capsys):
    out_dir = tmp_path / "out"
    assert main(["presets", "--write", str(out_dir)]) == 0
    out = capsys.readouterr().out
    for name in ("minimal", "serving", "continual", "ann"):
        assert name in out
        written = out_dir / f"{name}.json"
        assert written.exists()
        assert json.loads(written.read_text())["name"] == name


def test_validate_accepts_good_specs_and_prints_digests(specs_dir, capsys):
    paths = [str(specs_dir / f"{n}.json") for n in ("minimal", "serving", "continual", "ann")]
    assert main(["validate", *paths]) == 0
    out = capsys.readouterr().out
    assert out.count("ok ") == 4
    assert preset("serving").digest() in out


def test_validate_rejects_bad_specs_with_exit_1(specs_dir, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"embedder": {"name": "no-such-embedder"}}))
    null_spec = tmp_path / "null.json"
    null_spec.write_text("null")
    bad_type = tmp_path / "bad_type.json"
    bad_type.write_text(json.dumps({"continual": {"gate_factor": "2.0"},
                                    "model": {"architecture": "braggnn"}}))
    good = str(specs_dir / "minimal.json")
    assert main(["validate", good, str(bad), str(tmp_path / "missing.json"),
                 str(null_spec), str(bad_type)]) == 1
    out = capsys.readouterr().out
    assert out.count("INVALID") == 4  # every bad file reported, none crashed the loop
    assert out.count("ok ") == 1
    assert "no-such-embedder" in out
    assert "gate_factor" in out


def test_run_minimal_exercises_the_data_plane(specs_dir, capsys):
    assert main(["run", str(specs_dir / "minimal.json"), "--scans", "5", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "data plane only" in out and "lookup returned" in out


def test_run_serving_spec_updates_a_model(specs_dir, capsys):
    assert main(["run", str(specs_dir / "serving.json"), "--scans", "5", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "updating model" in out and "strategy=" in out
    assert "zoo holds 2 model(s)" in out


def test_run_continual_spec_closes_the_loop(specs_dir, capsys):
    assert main(["run", str(specs_dir / "continual.json"),
                 "--scans", "7", "--change-at", "5", "--peaks", "40", "--json"]) == 0
    out = capsys.readouterr().out
    assert "TRIGGERED" in out and "hot-swapped" in out
    snapshot = json.loads(out[out.index("{"):])
    assert snapshot["continual"]["times_fired"] >= 1
    assert snapshot["zoo"]["promoted_version"] != "v0"


def test_run_ann_spec_exercises_the_ivf_data_plane(specs_dir, capsys):
    assert main(["run", str(specs_dir / "ann.json"), "--scans", "5", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "data plane only" in out and "lookup returned" in out


def test_serve_ann_spec_serves_with_ivf_index(specs_dir, capsys):
    assert main(["serve", str(specs_dir / "ann.json"),
                 "--requests", "8", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "'predict'" not in out
    assert "served 8 requests" in out


def test_run_and_serve_report_missing_spec_without_traceback(capsys):
    assert main(["run", "no-such-spec.json"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: no-such-spec.json: file not found")
    assert main(["serve", "no-such-spec.json"]) == 1
    assert "file not found" in capsys.readouterr().err


def test_run_rejects_bad_scan_counts(specs_dir, capsys):
    assert main(["run", str(specs_dir / "minimal.json"), "--scans", "3"]) == 1
    assert "--scans" in capsys.readouterr().err
    assert main(["run", str(specs_dir / "minimal.json"),
                 "--scans", "6", "--change-at", "2"]) == 1
    assert "--change-at" in capsys.readouterr().err


def test_serve_answers_a_burst_and_prints_telemetry(specs_dir, capsys):
    assert main(["serve", str(specs_dir / "serving.json"),
                 "--requests", "24", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "'predict'" in out
    assert "served 24 requests" in out


def test_serve_minimal_spec_serves_certainty(specs_dir, capsys):
    assert main(["serve", str(specs_dir / "minimal.json"),
                 "--requests", "8", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "'predict'" not in out
    assert "served 8 requests" in out


def test_observe_writes_parseable_metrics_and_traces(tmp_path, capsys):
    from repro.observability.exporters import parse_prometheus_text, series_names

    spec_path = preset("observed").save(tmp_path / "observed.json")
    metrics_out = tmp_path / "metrics.txt"
    traces_out = tmp_path / "traces.jsonl"
    assert main(["observe", str(spec_path), "--requests", "16", "--peaks", "40",
                 "--metrics-out", str(metrics_out),
                 "--traces-out", str(traces_out)]) == 0
    out = capsys.readouterr().out
    assert "traces sampled" in out and "served 16 requests" in out
    assert "lifetime" in out  # cumulative rejected_total surfaced next to windowed

    # The CI smoke assertion: the scrape is parseable and the core series
    # of the naming scheme are all present.
    names = series_names(parse_prometheus_text(metrics_out.read_text()))
    assert "repro_requests_total" in names
    assert "repro_batch_size_count" in names
    assert "repro_index_scans_total" in names

    spans = [json.loads(line) for line in traces_out.read_text().splitlines()]
    assert spans, "no spans exported"
    by_name = {s["name"] for s in spans}
    assert {"serving.request", "serving.admission", "serving.flush",
            "serving.batch", "serving.completion", "index.scan"} <= by_name


def test_observe_auto_enables_instrumentation_on_unobserved_specs(tmp_path, capsys):
    spec_path = preset("ann").save(tmp_path / "ann.json")
    assert main(["observe", str(spec_path), "--requests", "8", "--peaks", "40"]) == 0
    out = capsys.readouterr().out
    assert "sample_rate=1.0" in out       # full sampling switched on
    assert "8/8 traces sampled" in out    # ...and every root really sampled
    assert "repro_requests_total" in out  # exposition printed to stdout


def test_serve_network_mode_serves_on_the_wire_and_drains_on_sigterm(tmp_path):
    """``repro serve --replicas N`` binds a TCP endpoint, answers wire
    requests, and a SIGTERM triggers a graceful drain with a final telemetry
    line and exit code 0 (the CLI satellite of the network serving plane)."""
    import os
    import re
    import signal
    import subprocess
    import sys
    import time

    import numpy as np

    from repro.net import NetworkClient

    spec_path = preset("networked").save(tmp_path / "networked.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(spec_path),
         "--peaks", "40", "--port", "0", "--replicas", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
    )
    try:
        address = None
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"network serving on ([\d.]+):(\d+) replicas=(\d+)", line)
            if match:
                address = (match.group(1), int(match.group(2)))
                assert int(match.group(3)) == 2
                break
        assert address is not None, "server never announced its address"

        with NetworkClient(*address, timeout_s=60.0) as client:
            assert client.ping()
            probe = np.random.RandomState(0).rand(2, 15, 15)
            certainty = client.call("certainty", probe)
            assert np.isfinite(float(np.asarray(certainty).mean()))

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0
    assert "draining" in out
    drained = re.search(r"drained: served (\d+) requests across (\d+) replica",
                        out)
    assert drained is not None, out
    assert int(drained.group(1)) >= 1  # the wire call above was counted
