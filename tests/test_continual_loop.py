"""End-to-end tests of the continual-learning loop.

A drifting synthetic experiment feeds the monitor; the phase change drops
fairDS cluster-assignment certainty to ~0 %, which triggers pseudo-labeling,
retraining, Zoo promotion, and a hot-swap of the live serving model — all
while client threads keep getting answers.  Plus: crash-resume from
checkpoints, the validation gate, and a 32-thread hot-swap stress test
asserting no torn reads.
"""

import threading

import numpy as np
import pytest

from repro.core import FairDMS, FairDS, UpdatePolicy
from repro.datasets import BraggPeakDataset, make_two_phase_schedule
from repro.embedding import PCAEmbedder
from repro.models import build_braggnn
from repro.monitoring.triggers import CertaintyTrigger
from repro.nn.trainer import TrainingConfig
from repro.serving import BatchingPolicy, ModelHandle, ServingRuntime, VersionedResult, versioned_handler
from repro.storage import DocumentDB
from repro.workflow.continual import PIPELINE_NAME, ContinualLearningPipeline
from repro.workflow.pipeline import CheckpointStore, COMPLETED, FAILED, RESUMED, SKIPPED

BENIGN_SCAN = 5     # same phase as the bootstrap data -> certainty ~33-45 %
DRIFTED_SCAN = 9    # after the phase change at scan 8 -> certainty ~0 %
TRIGGER_THRESHOLD = 20.0


@pytest.fixture(scope="module")
def experiment():
    return BraggPeakDataset(make_two_phase_schedule(n_scans=14, change_at=8, seed=0),
                            peaks_per_scan=60, seed=0)


def _bootstrap(experiment, checkpoints=None, **clp_kwargs):
    """A bootstrapped DMS with a promoted v0 model and a continual pipeline."""
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=6, seed=0)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=4, seed=0),
        training_config=TrainingConfig(epochs=6, batch_size=32, lr=3e-3, seed=0),
        policy=UpdatePolicy(distance_threshold=0.7, certainty_threshold=10.0),
        seed=0,
    )
    hist_x, hist_y = experiment.stacked(range(3))
    record = dms.bootstrap(hist_x, hist_y)
    zoo = dms.fairms.zoo
    assert zoo.promote(record.model_id) == "v0"
    handle = ContinualLearningPipeline.bootstrap_handle(dms)
    assert handle.version == "v0"
    clp = ContinualLearningPipeline(
        dms, handle,
        trigger=CertaintyTrigger(TRIGGER_THRESHOLD),
        checkpoints=checkpoints,
        **clp_kwargs,
    )
    return dms, handle, clp, record


# ---------------------------------------------------------------------------------
# The headline end-to-end path
# ---------------------------------------------------------------------------------
def test_drift_triggers_retrain_promotion_and_hot_swap(experiment):
    dms, handle, clp, boot_record = _bootstrap(experiment)
    zoo = dms.fairms.zoo
    benign = experiment.scan(BENIGN_SCAN).images
    drifted = experiment.scan(DRIFTED_SCAN).images
    probes = experiment.scan(BENIGN_SCAN).images[:24]

    futures = []
    with clp.runtime(policy=BatchingPolicy(max_batch_size=8, max_wait_ms=1.0),
                     num_workers=2) as runtime:
        # Phase 0 traffic: everything served by v0.
        early = [runtime.call("predict", x) for x in probes[:8]]
        assert all(isinstance(r, VersionedResult) and r.version == "v0" for r in early)

        # A benign scan does not trigger anything — and takes the fast path
        # (one observation, no DAG, no checkpoint traffic).
        report = clp.process_scan(benign, run_id="benign")
        assert not report.triggered and not report.swapped
        assert report.signal > TRIGGER_THRESHOLD
        assert report.statuses == {"monitor": COMPLETED}
        assert len(zoo) == 1

        # Submit in-flight traffic, then process the drifted scan.
        futures = [runtime.submit("predict", x) for x in probes]
        report = clp.process_scan(drifted, run_id="drifted")
        assert report.triggered and report.signal < TRIGGER_THRESHOLD
        assert report.gate_passed and report.promoted_version == "v1"
        assert report.swapped and handle.version == "v1"
        assert report.strategy in ("fine-tune", "scratch")
        assert len(zoo) == 2
        assert zoo.resolve("latest") == report.model_id

        # No in-flight future was dropped or errored by the swap...
        inflight = [f.result(timeout=10.0) for f in futures]
        # ...and post-swap traffic is served by the promoted model.
        runtime.drain(timeout=10.0)
        late = [runtime.call("predict", x) for x in probes[:8]]

    model_v0 = zoo.load_model(boot_record.model_id)
    model_v1 = zoo.load_model(report.model_id)
    by_version = {"v0": model_v0, "v1": model_v1}
    for response, x in zip(inflight + late, list(probes) + list(probes[:8])):
        assert response.version in by_version
        expected = by_version[response.version].predict(x[None])[0]
        # The response must match the model its version label claims produced
        # it — a torn read (label from one model, prediction from the other)
        # would break this.
        np.testing.assert_allclose(response.value, expected, rtol=1e-5, atol=1e-6)
    assert all(r.version == "v1" for r in late)


def test_untriggered_cycles_leave_the_system_untouched(experiment):
    dms, handle, clp, _ = _bootstrap(experiment)
    for i, scan_idx in enumerate((3, 4, BENIGN_SCAN)):
        report = clp.process_scan(experiment.scan(scan_idx).images)
        assert not report.triggered and not report.swapped
        assert report.strategy is None and report.promoted_version is None
    assert handle.version == "v0"
    assert len(dms.fairms.zoo) == 1
    assert clp.trigger.times_fired == 0


def test_validation_gate_blocks_promotion(experiment):
    dms, handle, clp, _ = _bootstrap(experiment, absolute_gate=1e-12)
    report = clp.process_scan(experiment.scan(DRIFTED_SCAN).images)
    assert report.triggered
    assert report.gate_passed is False
    assert report.promoted_version is None and not report.swapped
    assert handle.version == "v0"
    assert len(dms.fairms.zoo) == 1  # the rejected candidate was never registered


def test_rollback_restores_previous_serving_lineage(experiment):
    dms, handle, clp, boot_record = _bootstrap(experiment)
    zoo = dms.fairms.zoo
    report = clp.process_scan(experiment.scan(DRIFTED_SCAN).images)
    assert zoo.resolve("latest") == report.model_id
    assert zoo.rollback("latest") == boot_record.model_id
    assert zoo.resolve("latest") == boot_record.model_id
    # The rolled-back-to model is byte-identical to the bootstrap artifact.
    restored = zoo.load_tag("latest")
    for key, value in zoo.load_model(boot_record.model_id).state_dict().items():
        assert np.array_equal(restored.state_dict()[key], value)


# ---------------------------------------------------------------------------------
# Crash-resume: a killed cycle continues from its checkpoints
# ---------------------------------------------------------------------------------
def test_killed_cycle_resumes_from_checkpoint_without_retraining(experiment):
    db = DocumentDB()
    store = CheckpointStore(db)
    dms, handle, clp, _ = _bootstrap(experiment, checkpoints=store)
    drifted = experiment.scan(DRIFTED_SCAN).images

    calls = {"label": 0, "train": 0}
    original_label = dms.pseudo_label_batch
    original_train = dms.train_on_lookup

    def counting_label(*args, **kwargs):
        calls["label"] += 1
        return original_label(*args, **kwargs)

    def counting_train(*args, **kwargs):
        calls["train"] += 1
        return original_train(*args, **kwargs)

    dms.pseudo_label_batch = counting_label
    dms.train_on_lookup = counting_train

    # First invocation dies at the promote step ("kill -9 mid-run").
    first = clp.build(drifted)
    original_promote = first.step("promote").fn
    first.step("promote").fn = lambda ctx: (_ for _ in ()).throw(RuntimeError("killed"))
    result1 = first.run(run_id="crash-1")
    assert not result1.succeeded
    assert result1.statuses["train"] == COMPLETED
    assert result1.statuses["promote"] == FAILED
    assert result1.statuses["hot_swap"] == SKIPPED
    assert handle.version == "v0"
    assert calls == {"label": 1, "train": 1}

    # Re-invoking the same run resumes: no re-labeling, no re-training.
    second = clp.build(drifted)
    assert second.step("promote").fn is not original_promote  # fresh build
    result2 = second.run(run_id="crash-1")
    assert result2.succeeded
    assert set(result2.resumed) == {"monitor", "pseudo_label", "train", "validate"}
    assert result2.statuses["promote"] == COMPLETED
    assert result2.statuses["hot_swap"] == COMPLETED
    assert calls == {"label": 1, "train": 1}  # the expensive steps did not re-run
    assert handle.version == "v1"
    assert dms.fairms.zoo.resolve("latest") == result2.context["promotion"]["model_id"]


def test_replayed_scan_after_completed_cycle_promotes_a_fresh_model(experiment):
    """The promote idempotency guard keys on an actual resume: a byte-identical
    scan genuinely re-processed after a completed cycle must register and
    promote its freshly trained model, not silently reuse the old record."""
    store = CheckpointStore()
    dms, handle, clp, _ = _bootstrap(experiment, checkpoints=store, gate_factor=10.0)
    zoo = dms.fairms.zoo
    drifted = experiment.scan(DRIFTED_SCAN).images

    first = clp.process_scan(drifted)
    assert first.swapped and first.promoted_version == "v1"
    second = clp.process_scan(drifted)  # same content digest -> same run id
    assert second.triggered and second.swapped
    assert second.promoted_version == "v2"
    assert second.model_id != first.model_id  # a new artifact, not the stale one
    assert len(zoo) == 3 and handle.version == "v2"


def test_resume_after_operator_rollback_does_not_repromote(experiment):
    """Cycle A crashes in the promote crash window; an operator rolls the tag
    back.  Resuming A must honour the rollback (tombstoned lineage), not
    re-promote and re-swap the withdrawn model."""
    store = CheckpointStore()
    dms, handle, clp, boot_record = _bootstrap(experiment, checkpoints=store)
    zoo = dms.fairms.zoo
    drifted = experiment.scan(DRIFTED_SCAN).images

    result_a = clp.build(drifted).run({"run_id": "A"}, run_id="A")
    assert result_a.succeeded and zoo.promoted_version() == "v1"
    assert store.collection.delete_many({"run_id": "A", "step": "promote"}) == 1

    assert zoo.rollback() == boot_record.model_id  # operator withdraws v1
    handle.swap(zoo.load_model(boot_record.model_id), "v0")

    resumed = clp.build(drifted).run({"run_id": "A"}, run_id="A")
    assert resumed.succeeded
    assert resumed.context["promotion"]["version"] == "v1"  # reported, not re-applied
    assert zoo.resolve() == boot_record.model_id  # rollback still holds
    assert zoo.promotion_count() == 2  # no third promotion minted
    assert resumed.context["swap"] is None and handle.version == "v0"


def test_resumed_cycle_does_not_repromote_over_a_newer_model(experiment):
    """Cycle A crashes in the window after promote but before its checkpoint;
    cycle B then promotes a newer model.  Resuming A must neither re-promote
    A's older model nor hot-swap it over B's."""
    store = CheckpointStore()
    dms, handle, clp, _ = _bootstrap(experiment, checkpoints=store)
    zoo = dms.fairms.zoo
    drifted = experiment.scan(DRIFTED_SCAN).images

    result_a = clp.build(drifted).run({"run_id": "A"}, run_id="A")
    assert result_a.succeeded and handle.version == "v1"
    # Crash window: A's promote checkpoint never landed.
    assert store.collection.delete_many({"run_id": "A", "step": "promote"}) == 1

    # Cycle B supersedes A's promotion (and swaps the newer model live).
    newer = dms.model_builder()
    rec_b = dms.fairms.register(newer, result_a.context["lookup"].input_distribution,
                                origin="manual")
    assert zoo.promote(rec_b.model_id) == "v2"
    handle.swap(zoo.load_model(rec_b.model_id), "v2")

    resumed = clp.build(drifted).run({"run_id": "A"}, run_id="A")
    assert resumed.succeeded
    # A's promotion is reported under its original label, not re-applied...
    assert resumed.context["promotion"]["version"] == "v1"
    assert zoo.promotion_count() == 3  # v0, v1 (A), v2 (B) — no fourth layer
    assert zoo.resolve() == rec_b.model_id
    # ...and the live model is still B's (the swap was skipped).
    assert resumed.context["swap"] is None
    assert handle.version == "v2"


def test_default_run_id_is_content_derived():
    """A restarted process handed the same scan resumes its own checkpoints;
    a different scan can never collide with them (no counter reuse)."""
    scan_a = np.arange(12.0).reshape(3, 2, 2)
    scan_b = scan_a + 1.0
    assert ContinualLearningPipeline.run_id_for(scan_a) == ContinualLearningPipeline.run_id_for(scan_a.copy())
    assert ContinualLearningPipeline.run_id_for(scan_a) != ContinualLearningPipeline.run_id_for(scan_b)
    # Same values, different shape -> different run.
    assert ContinualLearningPipeline.run_id_for(scan_a) != ContinualLearningPipeline.run_id_for(scan_a.reshape(3, 4))


def test_process_scan_clears_checkpoints_after_success(experiment):
    store = CheckpointStore()
    _, _, clp, _ = _bootstrap(experiment, checkpoints=store)
    report = clp.process_scan(experiment.scan(DRIFTED_SCAN).images, run_id="ok-1")
    assert report.swapped  # the full DAG ran (and wrote checkpoints)...
    assert store.completed(PIPELINE_NAME, "ok-1") == {}  # ...then cleaned up


def test_untriggered_fast_path_writes_no_checkpoints(experiment):
    store = CheckpointStore()
    _, _, clp, _ = _bootstrap(experiment, checkpoints=store)
    report = clp.process_scan(experiment.scan(BENIGN_SCAN).images, run_id="quiet")
    assert not report.triggered
    assert store.collection.count() == 0  # fast path: nothing ever persisted


def test_promote_step_is_idempotent_across_checkpoint_crash_window(experiment):
    """Crash between the promote step completing and its checkpoint landing:
    the re-run must not register a duplicate model or stack a bogus
    promotion-history layer (rollback must still reach the true previous model)."""
    store = CheckpointStore()
    dms, handle, clp, boot_record = _bootstrap(experiment, checkpoints=store)
    zoo = dms.fairms.zoo
    drifted = experiment.scan(DRIFTED_SCAN).images

    first = clp.build(drifted)
    result1 = first.run({"run_id": "win-1"}, run_id="win-1")
    assert result1.succeeded
    promoted_first = result1.context["promotion"]
    assert len(zoo) == 2 and zoo.promotion_count() == 2

    # Simulate the crash window: the promote checkpoint never landed.
    assert store.collection.delete_many({"run_id": "win-1", "step": "promote"}) == 1

    second = clp.build(drifted)
    result2 = second.run({"run_id": "win-1"}, run_id="win-1")
    assert result2.succeeded
    assert result2.statuses["promote"] == COMPLETED  # re-ran...
    assert result2.context["promotion"] == promoted_first  # ...but reused the registration
    assert len(zoo) == 2 and zoo.promotion_count() == 2  # no duplicate, no extra layer
    assert zoo.rollback() == boot_record.model_id  # lineage intact


# ---------------------------------------------------------------------------------
# Hot-swap stress: 32 clients, repeated swaps, no torn reads
# ---------------------------------------------------------------------------------
def test_hot_swap_stress_no_torn_reads_across_32_threads():
    # "Models" are integer offsets so correctness is exact: version "red"
    # must add 1_000, version "blue" must add 2_000.
    offsets = {"red": 1_000.0, "blue": 2_000.0}
    handle = ModelHandle(offsets["red"], version="red")
    handler = versioned_handler(handle, lambda offset, payloads: [p + offset for p in payloads])
    runtime = ServingRuntime(
        {"predict": handler},
        policy=BatchingPolicy(max_batch_size=16, max_wait_ms=0.5, max_queue_depth=4096),
        num_workers=4,
    )

    stop = threading.Event()
    start_gate = threading.Barrier(33, timeout=10.0)
    responses = [[] for _ in range(32)]
    errors = []

    def client(idx):
        start_gate.wait()
        i = 0
        while not stop.is_set() or i == 0:  # every client serves at least once
            payload = float(idx * 10_000 + i)
            try:
                result = runtime.call("predict", payload, timeout=10.0)
            except Exception as exc:  # noqa: BLE001 — collected for the assertion
                errors.append(exc)
                return
            responses[idx].append((payload, result))
            i += 1

    def swapper():
        start_gate.wait()
        for swap_idx in range(50):
            version = "blue" if swap_idx % 2 == 0 else "red"
            handle.swap(offsets[version], version)
            stop.wait(0.002)
        stop.set()

    with runtime:
        threads = [threading.Thread(target=client, args=(i,)) for i in range(32)]
        swap_thread = threading.Thread(target=swapper)
        for t in threads:
            t.start()
        swap_thread.start()
        for t in threads:
            t.join(timeout=30.0)
        swap_thread.join(timeout=30.0)
        assert runtime.drain(timeout=10.0)

    assert not errors
    seen_versions = set()
    total = 0
    for client_responses in responses:
        assert client_responses  # nobody starved
        for payload, result in client_responses:
            total += 1
            seen_versions.add(result.version)
            # Exactly one of the two versions produced this response: the
            # version label and the arithmetic must agree.
            assert result.value - payload == offsets[result.version]
    # 50 swaps happened while traffic was flowing, so both versions served.
    assert seen_versions == {"red", "blue"}
    assert handle.swap_count == 50
    assert total >= 32


def test_monitor_retry_after_transient_refresh_failure_does_not_reobserve(experiment):
    """A transient system-plane refresh failure is retried WITHOUT observing
    the trigger again — under a cooldown, a second observation would report
    triggered=False and silently swallow the drift event."""
    dms, handle, clp, _ = _bootstrap(experiment)
    clp.trigger = CertaintyTrigger(TRIGGER_THRESHOLD, cooldown=2)
    clp.step_retries = 1
    failures = {"n": 0}
    original_refresh = dms.fairds.refresh

    def flaky_refresh(*args, **kwargs):
        if failures["n"] == 0:
            failures["n"] += 1
            raise RuntimeError("transient store hiccup")
        return original_refresh(*args, **kwargs)

    dms.fairds.refresh = flaky_refresh
    result = clp.build(experiment.scan(DRIFTED_SCAN).images).run({"run_id": "retry-1"})
    assert result.succeeded
    assert result.step_attempts["monitor"] == 1  # observation untouched by the retry
    assert result.step_attempts["refresh"] == 2
    assert failures["n"] == 1
    assert result.context["monitor"]["triggered"]
    assert result.context["refresh"] == {"refreshed": True}
    # The trigger saw exactly one observation despite the refresh retry.
    assert len(clp.trigger.history) == 1 and clp.trigger.times_fired == 1


def test_reinvoked_failed_cycle_under_cooldown_keeps_the_drift_event(experiment):
    """The firing observation is persisted before anything can fail: a cycle
    that dies right after triggering (e.g. refresh outage) and is re-invoked
    must resume as triggered — re-observing under the armed cooldown would
    report triggered=False and permanently drop the event."""
    store = CheckpointStore()
    dms, handle, clp, _ = _bootstrap(experiment, checkpoints=store)
    clp.trigger = CertaintyTrigger(TRIGGER_THRESHOLD, cooldown=5)
    drifted = experiment.scan(DRIFTED_SCAN).images

    def outage(*args, **kwargs):
        raise RuntimeError("store outage")

    original_refresh = dms.fairds.refresh
    dms.fairds.refresh = outage
    with pytest.raises(RuntimeError, match="store outage"):
        clp.process_scan(drifted)

    dms.fairds.refresh = original_refresh
    report = clp.process_scan(drifted)  # same content digest -> same run id
    assert "monitor" in report.resumed  # the observation was not repeated
    assert report.triggered and report.swapped and report.promoted_version == "v1"
    assert len(clp.trigger.history) == 1  # one observation total, not two


def test_crashed_cycle_after_a_completed_same_scan_cycle_registers_fresh_model(experiment):
    """The promote idempotency key is per cycle attempt (monitor checkpoint
    id), not per scan digest: a crash-resume of cycle 2 over the same scan
    content must not match cycle 1's completed registration."""
    store = CheckpointStore()
    dms, handle, clp, _ = _bootstrap(experiment, checkpoints=store, gate_factor=10.0)
    zoo = dms.fairms.zoo
    drifted = experiment.scan(DRIFTED_SCAN).images
    run_id = clp.run_id_for(drifted)

    first_cycle = clp.process_scan(drifted)  # completes; checkpoints cleared
    assert first_cycle.promoted_version == "v1"

    # Cycle 2, same scan content: crashes in the promote crash window.
    crashing = clp.build(drifted)
    result = crashing.run({"run_id": run_id}, run_id=run_id)
    assert result.succeeded
    assert store.collection.delete_many({"run_id": run_id, "step": "promote"}) == 1
    second_promotion = result.context["promotion"]
    assert second_promotion["version"] == "v2"

    resumed = clp.build(drifted).run({"run_id": run_id}, run_id=run_id)
    assert resumed.succeeded
    # The resume reuses CYCLE 2's registration (crash-window idempotency)...
    assert resumed.context["promotion"] == second_promotion
    # ...and never matched cycle 1's model despite the identical run id.
    assert resumed.context["promotion"]["model_id"] != first_cycle.model_id
    assert zoo.promotion_count() == 3  # v0, v1 (cycle 1), v2 (cycle 2) — no v3
