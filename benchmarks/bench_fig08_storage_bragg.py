"""Fig. 8 — BraggPeaks data: storage backend vs training/I-O time.

Same protocol as Figs. 6-7 with the Bragg patch dataset: very many tiny
(15x15) items, so per-fetch latency rather than payload bandwidth dominates.
In the paper this is the configuration where direct NFS reads beat the remote
DB unless many prefetch workers are used — the trend asserted below.
"""

from __future__ import annotations

import pytest

from common import bragg_experiment, print_table
from storage_study import build_backends, check_storage_trends, epoch_time_vs_batch_size, io_time_vs_workers

BATCH_SIZES = (32, 64, 128)
WORKER_COUNTS = (0, 2, 4, 8)


@pytest.mark.figure("fig8")
def test_fig08_storage_study_bragg(benchmark, report_sink):
    experiment = bragg_experiment(n_scans=6, change_at=3, peaks_per_scan=200)
    images, labels = experiment.stacked(range(6))
    backends, store = build_backends(images, labels)
    try:
        epoch_rows = epoch_time_vs_batch_size(backends, BATCH_SIZES, workers=4,
                                              compute_per_batch=0.0005)
        io_rows = io_time_vs_workers(backends, WORKER_COUNTS, batch_size=64)
        print_table("Fig. 8a — BraggPeaks: epoch time [s] vs batch size (4 workers)",
                    ["backend", "batch_size", "epoch_s"], epoch_rows, sink=report_sink)
        print_table("Fig. 8b — BraggPeaks: I/O time [ms/batch] vs #workers (batch 64)",
                    ["backend", "workers", "ms_per_batch"], io_rows, sink=report_sink)
        check_storage_trends(io_rows)

        # The latency-bound effect: with a single reader, the DB path (per-fetch
        # latency + deserialisation of many small items) is slower than NFS.
        io = {(name, w): ms for name, w, ms in io_rows}
        assert io[("pickle", 0)] > io[("nfs", 0)] * 0.8

        from repro.dataio import DataLoader

        benchmark(lambda: sum(bx.shape[0] for bx, _ in DataLoader(backends["pickle"], batch_size=64, num_workers=8)))
    finally:
        store.cleanup()
