"""A small, self-contained neural-network framework built on NumPy.

The paper trains its application models (BraggNN, CookieNetAE, TomoGAN) with
PyTorch on a V100 GPU.  This package reproduces the pieces of that stack the
evaluation actually depends on — mini-batch gradient-descent training,
fine-tuning from a checkpoint with optionally frozen layers, dropout-based
uncertainty quantification, and state-dict style model serialisation — using
vectorised NumPy kernels with hand-written backward passes.

Public API
----------
* :class:`repro.nn.network.Sequential` — ordered container of layers.
* :mod:`repro.nn.layers` — ``Dense``, ``Conv2D``, ``MaxPool2D``, activations,
  ``Dropout``, ``BatchNorm1d``, ``Flatten``.
* :mod:`repro.nn.losses` — ``MSELoss``, ``MAELoss``, ``BCELoss``,
  ``SoftmaxCrossEntropy``, ``NTXentLoss``, ``BYOLLoss``.
* :mod:`repro.nn.optimizers` — ``SGD``, ``Adam``.
* :class:`repro.nn.trainer.Trainer` — fit / evaluate / fine-tune loops with
  early stopping and learning-curve history.
* :func:`repro.nn.mc_dropout.mc_dropout_predict` — MC-dropout uncertainty
  (batched: the sample dimension is folded into the batch).
* :mod:`repro.nn.dtype` — the compute-precision policy (float32 default,
  float64 opt-in via ``dtype=`` arguments or ``dtype_scope``).
"""

from repro.nn.dtype import (
    DtypePolicy,
    dtype_scope,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn.parameter import Parameter
from repro.nn.layers import (
    Layer,
    Dense,
    Conv2D,
    MaxPool2D,
    Flatten,
    Reshape,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Softmax,
    Dropout,
    BatchNorm1d,
)
from repro.nn.losses import (
    Loss,
    MSELoss,
    MAELoss,
    BCELoss,
    SoftmaxCrossEntropy,
    NTXentLoss,
    BYOLLoss,
)
from repro.nn.optimizers import Optimizer, SGD, Adam
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer, TrainingHistory, TrainingConfig
from repro.nn.mc_dropout import mc_dropout_predict, prediction_interval_width
from repro.nn.metrics import mean_squared_error, mean_absolute_error, r2_score

__all__ = [
    "DtypePolicy",
    "dtype_scope",
    "get_default_dtype",
    "set_default_dtype",
    "Parameter",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "Reshape",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "BatchNorm1d",
    "Loss",
    "MSELoss",
    "MAELoss",
    "BCELoss",
    "SoftmaxCrossEntropy",
    "NTXentLoss",
    "BYOLLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "Trainer",
    "TrainingHistory",
    "TrainingConfig",
    "mc_dropout_predict",
    "prediction_interval_width",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
]
