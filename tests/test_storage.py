"""Tests for the storage substrate: codecs, document DB, file store, vector indexes."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.codecs import (
    CompressedCodec,
    PickleCodec,
    RawArrayCodec,
    get_codec,
    register_codec,
    Codec,
)
from repro.storage.concurrency import ReadWriteLock
from repro.storage.document import Document, new_object_id
from repro.storage.documentdb import DocumentDB, NetworkModel
from repro.storage.file_store import FileStore
from repro.storage.vector_index import ClusteredVectorIndex, VectorIndex
from repro.utils.errors import ConfigurationError, StorageError, ValidationError


# -- codecs ---------------------------------------------------------------------
@pytest.mark.parametrize("codec", [PickleCodec(), CompressedCodec(), RawArrayCodec()])
def test_codec_roundtrip_array(codec, rng):
    arr = rng.normal(size=(7, 5)).astype(np.float32)
    out = codec.decode(codec.encode(arr))
    np.testing.assert_array_equal(out, arr)
    assert out.dtype == arr.dtype


def test_compressed_codec_is_smaller_for_redundant_data():
    arr = np.zeros((256, 256))
    assert len(CompressedCodec().encode(arr)) < len(PickleCodec().encode(arr))


def test_compressed_codec_invalid_level():
    with pytest.raises(ConfigurationError):
        CompressedCodec(level=99)


def test_raw_codec_rejects_garbage():
    with pytest.raises(StorageError):
        RawArrayCodec().decode(b"xx")


def test_pickle_codec_rejects_non_bytes():
    with pytest.raises(StorageError):
        PickleCodec().decode(123)  # type: ignore[arg-type]


def test_get_codec_by_name():
    assert isinstance(get_codec("pickle"), PickleCodec)
    assert isinstance(get_codec("blosc"), CompressedCodec)
    assert isinstance(get_codec("raw"), RawArrayCodec)
    with pytest.raises(ConfigurationError):
        get_codec("nope")


def test_register_custom_codec():
    class UpperCodec(Codec):
        name = "upper"

        def encode(self, obj):
            return str(obj).upper().encode()

        def decode(self, payload):
            return payload.decode()

    register_codec(UpperCodec)
    assert get_codec("upper").encode("hi") == b"HI"


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    seed=st.integers(0, 1000),
)
def test_codec_roundtrip_property(shape, seed):
    arr = np.random.default_rng(seed).normal(size=shape)
    for codec in (PickleCodec(), CompressedCodec(), RawArrayCodec()):
        np.testing.assert_array_equal(codec.decode(codec.encode(arr)), arr)


# -- Document ---------------------------------------------------------------------
def test_document_assigns_unique_ids():
    a, b = Document({"x": 1}), Document({"x": 2})
    assert a.id != b.id
    assert a["x"] == 1
    assert a.without_id() == {"x": 1}


def test_new_object_ids_unique_under_threads():
    ids = []
    lock = threading.Lock()

    def gen():
        for _ in range(200):
            i = new_object_id()
            with lock:
                ids.append(i)

    threads = [threading.Thread(target=gen) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(ids) == len(set(ids))


def test_document_matches_equality_and_ranges():
    doc = Document({"cluster": 3, "scan": 17})
    assert doc.matches({"cluster": 3})
    assert not doc.matches({"cluster": 4})
    assert doc.matches({"scan": {"$gte": 10, "$lte": 20}})
    assert not doc.matches({"scan": {"$gt": 17}})
    assert doc.matches({"scan": {"$in": [17, 18]}})
    assert doc.matches({"scan": {"$ne": 4}})
    assert not doc.matches({"missing": 1})


def test_document_rejects_non_mapping():
    with pytest.raises(ValidationError):
        Document([1, 2, 3])  # type: ignore[arg-type]


# -- ReadWriteLock ------------------------------------------------------------------
def test_rwlock_allows_concurrent_readers():
    lock = ReadWriteLock()
    active = []

    def reader():
        with lock.read():
            active.append(1)
            time.sleep(0.05)
            active.pop()

    threads = [threading.Thread(target=reader) for _ in range(4)]
    peak = 0

    def watcher():
        nonlocal peak
        for _ in range(50):
            peak = max(peak, len(active))
            time.sleep(0.005)

    w = threading.Thread(target=watcher)
    w.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    w.join()
    assert peak >= 2


def test_rwlock_writer_excludes_readers():
    lock = ReadWriteLock()
    log = []

    def writer():
        with lock.write():
            log.append("w-start")
            time.sleep(0.05)
            log.append("w-end")

    def reader():
        time.sleep(0.01)
        with lock.read():
            log.append("r")

    tw = threading.Thread(target=writer)
    tr = threading.Thread(target=reader)
    tw.start()
    tr.start()
    tw.join()
    tr.join()
    assert log.index("w-end") < log.index("r")


# -- DocumentDB -------------------------------------------------------------------------
def _populated_collection(codec_name="pickle", n=20):
    db = DocumentDB(codec=get_codec(codec_name))
    coll = db.collection("bragg")
    rng = np.random.default_rng(0)
    metas = [{"cluster_id": int(i % 4), "scan": int(i), "label": [float(i), float(i)]} for i in range(n)]
    payloads = [rng.normal(size=(15, 15)) for _ in range(n)]
    coll.insert_many(metas, payloads)
    return db, coll, payloads


def test_insert_and_count():
    _, coll, _ = _populated_collection()
    assert coll.count() == 20
    assert coll.count({"cluster_id": 1}) == 5


def test_find_with_filters_and_limit():
    _, coll, _ = _populated_collection()
    docs = coll.find({"scan": {"$gte": 15}})
    assert len(docs) == 5
    limited = coll.find({}, limit=3)
    assert len(limited) == 3


def test_find_decode_payload_roundtrip():
    _, coll, payloads = _populated_collection("blosc")
    doc = coll.find_one({"scan": 7}, decode_payload=True)
    np.testing.assert_allclose(doc["payload"], payloads[7])


def test_get_and_fetch_payloads():
    _, coll, payloads = _populated_collection()
    ids = coll.ids()
    fetched = coll.fetch_payloads(ids[:5])
    for got, want in zip(fetched, payloads[:5]):
        np.testing.assert_allclose(got, want)
    with pytest.raises(StorageError):
        coll.get("missing-id")
    with pytest.raises(StorageError):
        coll.fetch_payloads(["missing-id"])


def test_secondary_index_used_for_equality_queries():
    _, coll, _ = _populated_collection()
    coll.create_index("cluster_id")
    assert coll.indexed_fields() == ["cluster_id"]
    docs = coll.find({"cluster_id": 2})
    assert len(docs) == 5
    assert all(d["cluster_id"] == 2 for d in docs)


def test_index_stays_consistent_after_update_and_delete():
    _, coll, _ = _populated_collection()
    coll.create_index("cluster_id")
    assert coll.update_one({"scan": 3}, {"cluster_id": 99})
    assert coll.count({"cluster_id": 99}) == 1
    deleted = coll.delete_many({"cluster_id": 99})
    assert deleted == 1
    assert coll.count({"cluster_id": 99}) == 0
    assert coll.count() == 19


def test_update_one_missing_returns_false():
    _, coll, _ = _populated_collection()
    assert not coll.update_one({"scan": 12345}, {"cluster_id": 1})


def test_insert_many_payload_length_mismatch():
    db = DocumentDB()
    with pytest.raises(StorageError):
        db.collection("x").insert_many([{"a": 1}], [np.zeros(2), np.zeros(2)])


def test_db_collection_management():
    db = DocumentDB()
    db.collection("a").insert_one({"k": 1}, payload=np.zeros(3))
    db.collection("b")
    assert db.collection_names() == ["a", "b"]
    stats = db.stats()
    assert stats["a"]["documents"] == 1
    assert stats["a"]["payload_bytes"] > 0
    db.drop_collection("a")
    assert db.collection_names() == ["b"]
    with pytest.raises(ConfigurationError):
        db.collection("")


def test_network_model_latency_slows_fetches():
    fast_db = DocumentDB(network=NetworkModel.local())
    slow_db = DocumentDB(network=NetworkModel(latency_s=0.002))
    for db in (fast_db, slow_db):
        db.collection("c").insert_many(
            [{"i": i} for i in range(10)], [np.zeros(4) for _ in range(10)]
        )
    start = time.perf_counter()
    fast_db.collection("c").fetch_payloads(fast_db.collection("c").ids())
    fast_time = time.perf_counter() - start
    start = time.perf_counter()
    slow_db.collection("c").fetch_payloads(slow_db.collection("c").ids())
    slow_time = time.perf_counter() - start
    assert slow_time > fast_time


def test_network_model_validation():
    with pytest.raises(ConfigurationError):
        NetworkModel(latency_s=-1)
    with pytest.raises(ConfigurationError):
        NetworkModel(bandwidth_bytes_per_s=0)


def test_concurrent_reads_during_writes_are_safe():
    db, coll, _ = _populated_collection(n=50)
    errors = []

    def reader():
        try:
            for _ in range(30):
                coll.find({"cluster_id": 1})
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    def writer():
        try:
            for i in range(30):
                coll.insert_one({"cluster_id": 1, "scan": 1000 + i, "label": [0, 0]},
                                payload=np.zeros((4, 4)))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(3)] + [threading.Thread(target=writer)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert coll.count({"cluster_id": 1}) >= 5 + 30


# -- FileStore -------------------------------------------------------------------------------
def test_file_store_roundtrip(rng):
    with FileStore() as store:
        arrays = [rng.normal(size=(8, 8)) for _ in range(5)]
        idxs = store.write_many(arrays)
        assert idxs == [0, 1, 2, 3, 4]
        assert len(store) == 5
        np.testing.assert_allclose(store.read(3), arrays[3])
        batch = store.read_many([0, 4])
        np.testing.assert_allclose(batch[1], arrays[4])
        assert store.storage_bytes() > 0


def test_file_store_missing_sample_raises():
    with FileStore() as store:
        with pytest.raises(StorageError):
            store.read(0)


def test_file_store_context_manager_removes_owned_tempdir(rng):
    with FileStore() as store:
        store.write(rng.normal(size=(4, 4)))
        root = store.root
        assert root.exists()
    assert not root.exists()  # __exit__ cleaned up the owned temp directory
    assert len(store) == 0


def test_file_store_context_manager_keeps_user_root(tmp_path, rng):
    with FileStore(root=str(tmp_path / "kept")) as store:
        store.write(rng.normal(size=(2,)))
    assert (tmp_path / "kept").exists()  # user-provided roots are never deleted


def test_file_store_explicit_root(tmp_path, rng):
    store = FileStore(root=str(tmp_path / "data"))
    store.write(rng.normal(size=(3,)))
    assert (tmp_path / "data").exists()
    store.cleanup()  # does not delete user-provided roots
    assert (tmp_path / "data").exists()


# -- VectorIndex ----------------------------------------------------------------------------------
def test_vector_index_exact_nearest(rng):
    index = VectorIndex(dim=4)
    vectors = rng.normal(size=(20, 4))
    keys = [f"k{i}" for i in range(20)]
    index.add(keys, vectors)
    assert len(index) == 20
    query = vectors[7] + 1e-6
    results = index.query(query, k=3)
    assert results[0][0] == "k7"
    assert results[0][1] == pytest.approx(0.0, abs=1e-3)
    assert len(results) == 3
    assert results[0][1] <= results[1][1] <= results[2][1]


def test_vector_index_validation(rng):
    index = VectorIndex(dim=3)
    with pytest.raises(ValidationError):
        index.add(["a"], rng.normal(size=(1, 4)))
    with pytest.raises(ValidationError):
        index.add(["a", "b"], rng.normal(size=(1, 3)))
    with pytest.raises(StorageError):
        index.query(np.zeros(3))
    index.add(["a"], np.zeros((1, 3)))
    with pytest.raises(ValidationError):
        index.query(np.zeros(4))
    with pytest.raises(ValidationError):
        index.query(np.zeros(3), k=0)
    with pytest.raises(ValidationError):
        VectorIndex(dim=0)


def test_clustered_index_matches_exact_for_probed_cluster(rng):
    vectors = np.vstack([
        rng.normal(loc=0.0, size=(30, 3)),
        rng.normal(loc=10.0, size=(30, 3)),
    ])
    keys = [f"k{i}" for i in range(60)]
    cluster_ids = np.array([0] * 30 + [1] * 30)
    centers = np.array([[0.0, 0.0, 0.0], [10.0, 10.0, 10.0]])
    cindex = ClusteredVectorIndex(centers, n_probe=1)
    cindex.add(keys, vectors, cluster_ids)
    assert len(cindex) == 60

    flat = VectorIndex(3)
    flat.add(keys, vectors)

    query = rng.normal(loc=10.0, size=3)
    assert cindex.query(query, k=1)[0][0] == flat.query(query, k=1)[0][0]


def test_vector_index_contiguous_storage_and_growth(rng):
    index = VectorIndex(dim=5)
    for start in range(0, 100, 10):
        keys = [f"k{i}" for i in range(start, start + 10)]
        index.add(keys, rng.normal(size=(10, 5)))
    assert len(index) == 100
    assert index.vectors.shape == (100, 5)
    assert index.vectors.flags["C_CONTIGUOUS"]
    assert index.vectors.dtype == np.float32
    with pytest.raises(ValueError):
        index.vectors[0, 0] = 1.0  # read-only view


def test_query_batch_matches_per_vector_query_flat(rng):
    index = VectorIndex(dim=8)
    index.add([f"k{i}" for i in range(500)], rng.normal(size=(500, 8)))
    queries = rng.normal(size=(64, 8))
    batched = index.query_batch(queries, k=3)
    singles = [index.query(q, k=3) for q in queries]
    assert len(batched) == 64
    for one, many in zip(singles, batched):
        assert [key for key, _ in one] == [key for key, _ in many]
        np.testing.assert_allclose(
            [d for _, d in one], [d for _, d in many], rtol=1e-9, atol=1e-12
        )


def test_query_batch_matches_per_vector_query_clustered(rng):
    centers = rng.normal(scale=8.0, size=(6, 4))
    assignments = rng.integers(0, 6, size=300)
    vectors = centers[assignments] + rng.normal(size=(300, 4))
    cindex = ClusteredVectorIndex(centers, n_probe=2)
    cindex.add([f"k{i}" for i in range(300)], vectors, assignments)
    queries = centers[rng.integers(0, 6, size=48)] + rng.normal(size=(48, 4))
    batched = cindex.query_batch(queries, k=3)
    singles = [cindex.query(q, k=3) for q in queries]
    for one, many in zip(singles, batched):
        assert [key for key, _ in one] == [key for key, _ in many]
        np.testing.assert_allclose(
            [d for _, d in one], [d for _, d in many], rtol=1e-9, atol=1e-12
        )


def test_query_batch_k_larger_than_store(rng):
    index = VectorIndex(dim=3)
    index.add(["a", "b"], rng.normal(size=(2, 3)))
    results = index.query_batch(rng.normal(size=(4, 3)), k=10)
    for row in results:
        assert len(row) == 2
        assert row[0][1] <= row[1][1]


def test_clustered_index_validation(rng):
    centers = np.zeros((2, 3))
    cindex = ClusteredVectorIndex(centers)
    with pytest.raises(StorageError):
        cindex.query(np.zeros(3))
    with pytest.raises(ValidationError):
        cindex.add(["a"], np.zeros((1, 3)), [5])
    with pytest.raises(ValidationError):
        ClusteredVectorIndex(centers, n_probe=0)
    cindex.add(["a"], np.zeros((1, 3)), [0])
    with pytest.raises(ValidationError):
        cindex.query(np.zeros(4))


# -- Collection.upsert_one -----------------------------------------------------------
def test_upsert_one_inserts_when_no_match_and_seeds_query_fields():
    coll = DocumentDB().collection("ckpt")
    doc_id = coll.upsert_one({"run": "r1", "step": "a"}, {"status": "done"})
    doc = coll.get(doc_id)
    assert doc["run"] == "r1" and doc["step"] == "a" and doc["status"] == "done"
    assert coll.count() == 1


def test_upsert_one_updates_existing_match_in_place():
    coll = DocumentDB().collection("ckpt")
    first = coll.upsert_one({"run": "r1", "step": "a"}, {"attempt": 1})
    second = coll.upsert_one({"run": "r1", "step": "a"}, {"attempt": 2})
    assert first == second
    assert coll.count() == 1
    assert coll.get(first)["attempt"] == 2


def test_upsert_one_replaces_payload_and_maintains_indexes():
    coll = DocumentDB().collection("ckpt")
    coll.create_index("run")
    coll.upsert_one({"run": "r1", "step": "a"}, {}, payload=np.arange(3))
    coll.upsert_one({"run": "r1", "step": "a"}, {}, payload=np.arange(5))
    docs = coll.find({"run": "r1"}, decode_payload=True)
    assert len(docs) == 1
    np.testing.assert_array_equal(docs[0]["payload"], np.arange(5))
    assert docs[0]["payload_bytes"] > 0


def test_upsert_one_range_query_terms_do_not_seed_insert():
    coll = DocumentDB().collection("c")
    doc_id = coll.upsert_one({"x": {"$gte": 3}, "name": "n"}, {"y": 1})
    doc = coll.get(doc_id)
    assert "x" not in doc and doc["name"] == "n" and doc["y"] == 1


# -- Collection.transform_one ---------------------------------------------------------
def test_transform_one_updates_inserts_and_snapshots():
    coll = DocumentDB().collection("tags")
    # Insert path (transform sees None).
    doc_id = coll.transform_one({"tag": "latest"}, lambda doc: {"n": 1} if doc is None else None)
    assert coll.get(doc_id)["n"] == 1 and coll.get(doc_id)["tag"] == "latest"
    # Update path (read-modify-write).
    assert coll.transform_one({"tag": "latest"}, lambda doc: {"n": doc["n"] + 1}) == doc_id
    assert coll.get(doc_id)["n"] == 2
    # Returning None aborts: a consistent read-only snapshot.
    seen = {}
    assert coll.transform_one({"tag": "latest"}, lambda doc: seen.update(doc)) == doc_id
    assert seen["n"] == 2 and coll.get(doc_id)["n"] == 2
    # No match + abort -> no insert, None returned.
    assert coll.transform_one({"tag": "ghost"}, lambda doc: None) is None
    assert coll.count() == 1


def test_transform_one_read_modify_write_is_atomic_under_contention():
    coll = DocumentDB().collection("counters")
    coll.insert_one({"key": "k", "n": 0})
    n_threads, per_thread = 8, 50

    def bump():
        for _ in range(per_thread):
            coll.transform_one({"key": "k"}, lambda doc: {"n": doc["n"] + 1})

    threads = [threading.Thread(target=bump) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # A find_one/update_one interleaving would lose increments.
    assert coll.find_one({"key": "k"})["n"] == n_threads * per_thread


def test_snapshot_one_returns_consistent_copy():
    coll = DocumentDB().collection("tags")
    coll.insert_one({"tag": "latest", "model_id": "m1", "version": "v0"})
    snap = coll.snapshot_one({"tag": "latest"})
    assert snap["model_id"] == "m1" and snap["version"] == "v0"
    # It's a copy: mutating it does not touch the stored document...
    snap["model_id"] = "tampered"
    assert coll.find_one({"tag": "latest"})["model_id"] == "m1"
    # ...and a miss returns None.
    assert coll.snapshot_one({"tag": "ghost"}) is None


# ---------------------------------------------------------------------------------
# mmap vector index
# ---------------------------------------------------------------------------------
def _mmap_fixture_index(rng, n=40, dim=6):
    index = VectorIndex(dim, dtype=np.float32)
    vectors = rng.normal(size=(n, dim)).astype(np.float32)
    index.add([f"k{i}" for i in range(n)], vectors)
    return index, vectors


def test_save_mmap_and_open_match_source_index(tmp_path, rng):
    from repro.storage.vector_index import open_mmap, save_mmap

    index, vectors = _mmap_fixture_index(rng)
    path = save_mmap(index, tmp_path / "idx")
    opened = open_mmap(path)
    assert len(opened) == len(index) and opened.dim == index.dim
    queries = rng.normal(size=(7, 6))
    assert opened.query_batch(queries, k=3) == index.query_batch(queries, k=3)


def test_mmap_index_is_shared_read_only_across_processes(tmp_path, rng):
    import multiprocessing

    from repro.storage.vector_index import open_mmap, save_mmap

    index, _vectors = _mmap_fixture_index(rng)
    path = save_mmap(index, tmp_path / "idx")
    queries = rng.normal(size=(5, 6))
    expected = index.query_batch(queries, k=2)

    def reader(q):
        q.put(open_mmap(path).query_batch(queries, k=2))

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    queue = ctx.Queue()
    procs = [ctx.Process(target=reader, args=(queue,)) for _ in range(2)]
    for p in procs:
        p.start()
    results = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    # Both processes see the identical store (pages shared via the OS cache).
    assert results[0] == expected and results[1] == expected


def test_mmap_index_rejects_writes_with_clear_error(tmp_path, rng):
    from repro.storage.vector_index import open_mmap, save_mmap

    index, _ = _mmap_fixture_index(rng)
    opened = open_mmap(save_mmap(index, tmp_path / "idx"))
    with pytest.raises(StorageError, match="read-only"):
        opened.add(["x"], np.zeros((1, 6), dtype=np.float32))


def test_save_mmap_input_validation(tmp_path):
    from repro.storage.vector_index import save_mmap

    with pytest.raises(StorageError, match="flat VectorIndex"):
        save_mmap(object(), tmp_path / "idx")
    with pytest.raises(StorageError, match="empty"):
        save_mmap(VectorIndex(4), tmp_path / "idx")


def test_open_mmap_rejects_missing_or_corrupt_directories(tmp_path, rng):
    import json as json_module

    from repro.storage.vector_index import open_mmap, save_mmap

    with pytest.raises(StorageError, match="no meta.json"):
        open_mmap(tmp_path / "nothing")

    index, _ = _mmap_fixture_index(rng)
    path = save_mmap(index, tmp_path / "idx")
    meta = json_module.loads((path / "meta.json").read_text())
    meta["format"] = "someone-elses-format"
    (path / "meta.json").write_text(json_module.dumps(meta))
    with pytest.raises(StorageError, match="unrecognised"):
        open_mmap(path)
    meta["format"] = "repro-mmap-index"
    meta["size"] = 999
    (path / "meta.json").write_text(json_module.dumps(meta))
    with pytest.raises(StorageError, match="inconsistent"):
        open_mmap(path)


def test_mmap_index_available_through_component_registry(tmp_path, rng):
    from repro.api.registry import create_component
    from repro.storage.vector_index import MmapVectorIndex, save_mmap

    index, _ = _mmap_fixture_index(rng)
    path = save_mmap(index, tmp_path / "idx")
    opened = create_component("index", "mmap", path=path)
    assert isinstance(opened, MmapVectorIndex)
    assert len(opened) == len(index)
