"""fairDS — the FAIR data service.

Responsibilities (paper Section II-A):

1. **Indexing** — train a self-supervised embedding model on historical data,
   cluster the embedding space with k-means (K chosen by the elbow method when
   not given), and write every labeled historical sample to the data store
   together with its embedding and cluster id.
2. **Discovery / pseudo-labeling** — given new *unlabeled* data, compute its
   cluster probability distribution and return the same number of already
   labeled historical samples drawn to follow that distribution
   (:meth:`FairDS.lookup`), or retrieve, per input sample, the nearest labeled
   historical sample within a distance threshold
   (:meth:`FairDS.nearest_labeled`) as in the Fig. 9 protocol.
3. **System plane** — monitor cluster-assignment certainty on incoming data
   (:meth:`FairDS.certainty`) and rebuild the embedding/clustering models and
   the store index from accumulated data when it degrades
   (:meth:`FairDS.refresh`).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.registry import component_factory, filter_supported_kwargs, is_registered
from repro.clustering.elbow import select_k_elbow
from repro.clustering.fuzzy import assignment_certainty_batch
from repro.clustering.kmeans import KMeans
from repro.core.distribution import DatasetDistribution
from repro.dataio.sampler import WeightedClusterSampler
from repro.embedding.base import Embedder
from repro.observability.tracing import trace_span
from repro.storage.documentdb import Collection, DocumentDB
from repro.storage.registry import IndexCapabilities, probe_index_capabilities
from repro.utils.cache import LRUCache, row_digests
from repro.utils.errors import ConfigurationError, NotFittedError, ValidationError
from repro.utils.rng import SeedLike, default_rng, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.executor import Executor


# -- process-executor worker functions (module-level: pickled by reference) ----
def _embedder_session_setup(ctx, embedder_blob: bytes):
    return pickle.loads(embedder_blob)


def _embedder_transform_task(ctx, images: np.ndarray) -> np.ndarray:
    return np.asarray(ctx.state.transform(np.asarray(images, dtype=np.float64)), dtype=np.float64)


@dataclass
class LookupResult:
    """Labeled data returned by a fairDS pseudo-labeling lookup."""

    images: np.ndarray
    labels: np.ndarray
    doc_ids: List[str]
    input_distribution: DatasetDistribution
    retrieved_distribution: DatasetDistribution

    def __len__(self) -> int:
        return self.images.shape[0]


class FairDS:
    """The FAIR data service.

    Parameters
    ----------
    embedder:
        Any :class:`~repro.embedding.base.Embedder`; the paper's default for
        Bragg peaks is BYOL, but PCA keeps tests fast.
    n_clusters:
        Number of k-means clusters, or ``"auto"`` to select K with the elbow
        method (the paper's YellowBrick-based automation).
    db:
        Backing :class:`~repro.storage.documentdb.DocumentDB`; an in-process
        one is created when omitted.
    collection:
        Name of the collection holding labeled historical samples.
    seed:
        RNG seed for clustering and sampling.
    embedding_cache_size:
        Capacity of the LRU embedding cache keyed on per-sample content
        digests: samples already embedded since the last (re)fit skip the
        embedder entirely on repeated lookups/monitoring probes.  ``0``
        disables caching (use this for stochastic embedders whose transform
        is not a pure per-sample function).
    index_dtype:
        Storage dtype of the nearest-neighbour index.  The index answers
        queries against a cached float64 mirror either way, so float32
        (default) trades ~1e-7 relative distance error for a smaller
        authoritative store; pass ``np.float64`` to hold one full-precision
        copy (the mirror becomes a free view) and make
        :meth:`nearest_labeled` thresholds exact.
    clustering_algorithm / clustering_params:
        Registry name (kind ``"clustering"``) and extra constructor kwargs of
        the clustering model fitted over the embedding space.  The component
        must expose the KMeans-style surface (``fit`` / ``predict`` /
        ``labels_`` / ``cluster_centers_`` / ``n_clusters``).
    index_backend / index_params:
        Registry name (kind ``"index"``) and extra constructor kwargs of the
        nearest-neighbour index.  ``"clustered"`` (default) partitions by
        cluster id; ``"flat"`` scans exactly.  Custom backends are built with
        ``(centers=..., dtype=...)`` when their factory accepts them, and fed
        through ``add(keys, vectors[, cluster_ids])``.
    """

    def __init__(
        self,
        embedder: Embedder,
        n_clusters: Union[int, str] = "auto",
        db: Optional[DocumentDB] = None,
        collection: str = "fairds_samples",
        max_auto_clusters: int = 15,
        seed: SeedLike = 0,
        embedding_cache_size: int = 4096,
        index_dtype=np.float32,
        clustering_algorithm: str = "kmeans",
        clustering_params: Optional[Dict[str, Any]] = None,
        index_backend: str = "clustered",
        index_params: Optional[Dict[str, Any]] = None,
        executor: Optional["Executor"] = None,
    ):
        if isinstance(n_clusters, str):
            if n_clusters != "auto":
                raise ConfigurationError("n_clusters must be an integer or 'auto'")
        elif n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1")
        if max_auto_clusters < 2:
            raise ConfigurationError("max_auto_clusters must be >= 2")
        self.embedder = embedder
        self._requested_clusters = n_clusters
        self.max_auto_clusters = int(max_auto_clusters)
        if embedding_cache_size < 0:
            raise ConfigurationError("embedding_cache_size must be non-negative")
        if not is_registered("clustering", clustering_algorithm):
            raise ConfigurationError(
                f"unknown clustering algorithm {clustering_algorithm!r}; "
                "register it under kind 'clustering' first"
            )
        if not is_registered("index", index_backend):
            raise ConfigurationError(
                f"unknown index backend {index_backend!r}; register it under kind 'index' first"
            )
        self.db = db or DocumentDB()
        self.collection_name = collection
        self.seed = seed
        self.clustering_algorithm = clustering_algorithm
        self.clustering_params = dict(clustering_params or {})
        self.index_backend = index_backend
        self.index_params = dict(index_params or {})
        self._kmeans = None  # the fitted clustering model (KMeans-style surface)
        self._index = None
        self._index_caps: Optional[IndexCapabilities] = None
        self._lookup_counter = 0
        self._embed_cache = LRUCache(embedding_cache_size)
        self._embed_generation = 0
        self.index_dtype = np.dtype(index_dtype)
        #: Optional parallel compute plane for multi-dataset embedding fans
        #: (certainty/distribution batches).  ``None`` keeps every serial
        #: code path — and the embedding LRU cache — exactly as before.
        self.executor = executor
        self._executor_session = None
        self._executor_session_generation = -1

    # -- helpers -----------------------------------------------------------------
    @property
    def collection(self) -> Collection:
        return self.db.collection(self.collection_name)

    @property
    def is_fitted(self) -> bool:
        return self._kmeans is not None

    @property
    def n_clusters(self) -> int:
        if self._kmeans is None:
            raise NotFittedError("fairDS has not been fitted yet")
        return self._kmeans.n_clusters

    def store_size(self) -> int:
        return self.collection.count()

    @staticmethod
    def _validate_images_labels(images: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if images.shape[0] == 0:
            raise ValidationError("images must be non-empty")
        if images.shape[0] != labels.shape[0]:
            raise ValidationError("images and labels must have the same length")
        return images, labels

    def _embed(self, images: np.ndarray) -> np.ndarray:
        """Embed ``images``, serving repeated samples from the LRU cache.

        Samples are keyed by ``(fit_generation, content_digest)``: the digest
        covers the sample's raw bytes, and the generation counter advances on
        every (re)fit, so an embedding computed with an old representation —
        even one put by a thread racing a concurrent refresh — can never be
        served against the new clustering.  Only cache misses are pushed
        through the embedder.
        """
        images = np.asarray(images, dtype=np.float64)
        cache = self._embed_cache
        if cache.maxsize == 0:
            return np.asarray(self.embedder.transform(images), dtype=np.float64)
        if images.ndim == 1:
            # One flat sample (Embedder.flatten semantics), not a batch of scalars.
            images = images.reshape(1, -1)
        generation = self._embed_generation
        keys = [(generation, digest) for digest in row_digests(images)]
        cached = [cache.get(key) for key in keys]
        missing = [i for i, hit in enumerate(cached) if hit is None]
        if len(missing) == len(keys):
            embeddings = np.asarray(self.embedder.transform(images), dtype=np.float64)
            for i, key in enumerate(keys):
                cache.put(key, embeddings[i].copy())
            return embeddings
        if missing:
            fresh = np.asarray(self.embedder.transform(images[missing]), dtype=np.float64)
            for row, i in enumerate(missing):
                cache.put(keys[i], fresh[row].copy())
                cached[i] = fresh[row]
        return np.stack([np.asarray(vec, dtype=np.float64) for vec in cached])

    def embedding_cache_info(self) -> Dict[str, float]:
        """Hit/miss counters of the embedding LRU cache."""
        return self._embed_cache.info()

    def _embed_batches(self, batches: List[np.ndarray]) -> List[np.ndarray]:
        """Embed several datasets; fans out across :attr:`executor` when one
        is configured.  The parallel path pushes whole datasets through the
        pure ``embedder.transform`` (identical results, no LRU round-trip) —
        a win exactly when several genuinely new datasets arrive together,
        which is the monitoring/batched-certainty shape."""
        executor = self.executor
        if (
            executor is None
            or executor.closed
            or executor.max_workers <= 1
            or len(batches) <= 1
        ):
            return [self._embed(images) for images in batches]
        if executor.kind == "process":
            return self._embed_batches_process(batches)
        return executor.map(self._transform64, batches)

    def _transform64(self, images: np.ndarray) -> np.ndarray:
        return np.asarray(self.embedder.transform(images), dtype=np.float64)

    def _embed_batches_process(self, batches: List[np.ndarray]) -> List[np.ndarray]:
        """Process fan-out over a persistent worker session holding the
        (pickled-once) embedder; the session is rebuilt whenever a (re)fit
        advances the embedding generation."""
        session = self._executor_session
        if (
            session is None
            or session.closed
            or self._executor_session_generation != self._embed_generation
        ):
            if session is not None:
                session.close()
            session = self.executor.open_session(
                setup=_embedder_session_setup,
                setup_args=(pickle.dumps(self.embedder),),
            )
            self._executor_session = session
            self._executor_session_generation = self._embed_generation
        return session.map(_embedder_transform_task, batches)

    # -- indexing -----------------------------------------------------------------------
    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        metadata: Optional[Sequence[Dict]] = None,
        embedder_kwargs: Optional[Dict] = None,
    ) -> "FairDS":
        """Train the embedding + clustering models and populate the data store."""
        images, labels = self._validate_images_labels(images, np.asarray(labels))
        if metadata is not None and len(metadata) != images.shape[0]:
            raise ValidationError("metadata must match the number of images")

        self.embedder.fit(images, **(embedder_kwargs or {}))
        # The representation changed: advance the cache generation (so even
        # in-flight embeddings keyed to the old representation die unread)
        # and drop the stale entries.
        self._embed_generation += 1
        self._embed_cache.clear()
        embeddings = self._embed(images)

        if self._requested_clusters == "auto":
            k_max = min(self.max_auto_clusters, embeddings.shape[0])
            k, _ = select_k_elbow(embeddings, k_min=2, k_max=k_max, seed=derive_seed(self.seed, 1))
        else:
            k = int(self._requested_clusters)
        if embeddings.shape[0] < k:
            raise ValidationError(
                f"need at least n_clusters={k} samples to fit fairDS, got {embeddings.shape[0]}"
            )
        self._kmeans = self._make_clusterer(k).fit(embeddings)
        cluster_ids = self._kmeans.labels_

        # Reset the collection so repeated fits don't accumulate stale copies.
        self.db.drop_collection(self.collection_name)
        coll = self.collection
        coll.create_index("cluster_id")
        self._write_samples(coll, images, labels, embeddings, cluster_ids, metadata)
        self._rebuild_index()
        return self

    def _write_samples(
        self,
        coll: Collection,
        images: np.ndarray,
        labels: np.ndarray,
        embeddings: np.ndarray,
        cluster_ids: np.ndarray,
        metadata: Optional[Sequence[Dict]],
    ) -> List[str]:
        metas = []
        for i in range(images.shape[0]):
            meta = {
                "label": np.asarray(labels[i]).tolist(),
                "embedding": embeddings[i].tolist(),
                "cluster_id": int(cluster_ids[i]),
            }
            if metadata is not None:
                meta.update(metadata[i])
            metas.append(meta)
        return coll.insert_many(metas, list(images))

    def _make_clusterer(self, k: int):
        """The clustering model named by ``clustering_algorithm``, through the
        unified component registry.

        ``n_clusters`` (and any ``clustering_params``) are passed always;
        the derived ``seed`` only when the factory's signature accepts it —
        so a custom algorithm that validated at spec time (where no seed is
        offered) constructs identically here.
        """
        factory = component_factory("clustering", self.clustering_algorithm)
        if factory is KMeans and not self.clustering_params:
            # Fast path only when "kmeans" still resolves to the builtin — a
            # user overwrite through the registry must win.
            return KMeans(n_clusters=k, seed=derive_seed(self.seed, 2))
        optional = filter_supported_kwargs(factory, {"seed": derive_seed(self.seed, 2)})
        return factory(**{"n_clusters": k, **optional, **self.clustering_params})

    def _make_index(self):
        """The lookup index named by ``index_backend``.

        No name-based special cases: every backend is *offered* one superset
        of wiring context — the embedding dimensionality, the fitted cluster
        centres, the index dtype, a conservative ``n_probe`` default, and a
        derived seed — and receives exactly the subset its factory signature
        declares (``"flat"`` takes ``dim``/``dtype``, ``"clustered"`` takes
        ``centers``/``n_probe``, ``"ivf"`` takes ``dim``/``n_probe``/``seed``;
        a custom backend takes whatever it asks for).  ``index_params`` is
        merged last, so explicit configuration always wins.  The constructed
        instance's surface is probed **once**
        (:func:`~repro.storage.registry.probe_index_capabilities`) to learn
        how to feed and query it — see :meth:`_index_add` and
        :meth:`_index_query_batch`.
        """
        assert self._kmeans is not None
        centers = np.asarray(self._kmeans.cluster_centers_, dtype=np.float64)
        factory = component_factory("index", self.index_backend)
        offered = {
            "dim": centers.shape[1],
            "centers": centers,
            "dtype": self.index_dtype,
            "n_probe": 2,
            "seed": derive_seed(self.seed, 3),
        }
        kwargs = {**filter_supported_kwargs(factory, offered), **self.index_params}
        index = factory(**kwargs)
        self._index_caps = probe_index_capabilities(index)
        return index

    @property
    def index_capabilities(self) -> Optional[IndexCapabilities]:
        """Probed surface of the current index (``None`` before fit)."""
        return self._index_caps

    def _index_add(self, keys: List[str], vectors: np.ndarray, cluster_ids: np.ndarray) -> None:
        assert self._index is not None and self._index_caps is not None
        if self._index_caps.takes_cluster_ids:
            self._index.add(keys, vectors, cluster_ids)
        else:
            self._index.add(keys, vectors)

    def _index_query_batch(self, vectors: np.ndarray, k: int = 1):
        """Batched lookup against any backend: one ``query_batch`` call when
        the backend has it, a per-row ``query`` loop otherwise."""
        assert self._index is not None and self._index_caps is not None
        queries = int(np.atleast_2d(vectors).shape[0])
        with trace_span("index.scan", backend=self.index_backend, queries=queries, k=k):
            if self._index_caps.supports_query_batch:
                return self._index.query_batch(vectors, k=k)
            return [self._index.query(row, k=k) for row in np.atleast_2d(vectors)]

    # -- live index knobs --------------------------------------------------------
    def set_index_n_probe(self, n_probe: int) -> int:
        """Atomically retune the index's ``n_probe`` scan width (no rebuild).

        Only supported by backends exposing ``set_n_probe`` (``"ivf"``);
        raises :class:`ConfigurationError` otherwise so a serving knob wired
        to the wrong backend fails loudly, not silently.
        """
        if self._index is None or self._index_caps is None:
            raise NotFittedError("set_index_n_probe() requires fit() first")
        if not self._index_caps.supports_n_probe:
            raise ConfigurationError(
                f"index backend {self.index_backend!r} has no live n_probe knob"
            )
        return int(self._index.set_n_probe(n_probe))

    @property
    def index_n_probe(self) -> Optional[int]:
        """The index's current ``n_probe`` (``None`` when not applicable)."""
        index = self._index
        n_probe = getattr(index, "n_probe", None) if index is not None else None
        return int(n_probe) if n_probe is not None else None

    def index_stats(self) -> Dict[str, int]:
        """The index's cumulative scan counters (empty when unsupported)."""
        if self._index is None or self._index_caps is None \
                or not self._index_caps.supports_scan_stats:
            return {}
        return dict(self._index.scan_stats())

    def _rebuild_index(self) -> None:
        docs = self.collection.find()
        self._index = self._make_index()
        if docs:
            keys = [d.id for d in docs]
            vectors = np.array([d["embedding"] for d in docs], dtype=np.float64)
            cluster_ids = np.array([d["cluster_id"] for d in docs], dtype=int)
            self._index_add(keys, vectors, cluster_ids)

    def ingest(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        metadata: Optional[Sequence[Dict]] = None,
    ) -> List[str]:
        """Add newly labeled data to the store using the existing embedding/clustering."""
        if not self.is_fitted:
            raise NotFittedError("fairDS.ingest() requires fit() first")
        images, labels = self._validate_images_labels(images, np.asarray(labels))
        embeddings = self._embed(images)
        cluster_ids = self._kmeans.predict(embeddings)
        ids = self._write_samples(self.collection, images, labels, embeddings, cluster_ids, metadata)
        self._index_add(ids, embeddings, cluster_ids)
        return ids

    # -- discovery ----------------------------------------------------------------------------
    def dataset_distribution(self, images: np.ndarray, label: str = "") -> DatasetDistribution:
        """Cluster PDF of an (unlabeled) input dataset — the one-dataset
        special case of :meth:`dataset_distribution_batch`."""
        return self.dataset_distribution_batch([images], labels=[label])[0]

    def dataset_distribution_batch(
        self, batches: Sequence[np.ndarray], labels: Optional[Sequence[str]] = None
    ) -> List[DatasetDistribution]:
        """Cluster PDFs for a batch of datasets — one per input array.

        Embeddings are resolved per dataset through the LRU cache, then all
        cluster assignments are predicted in a single pass over the
        concatenated rows instead of one ``predict`` call per dataset.
        """
        if not self.is_fitted:
            raise NotFittedError("fairDS.dataset_distribution_batch() requires fit() first")
        if labels is not None and len(labels) != len(batches):
            raise ValidationError("labels must match the number of batches")
        if not len(batches):
            return []
        validated = []
        for images in batches:
            images = np.asarray(images, dtype=np.float64)
            if images.shape[0] == 0:
                raise ValidationError("images must be non-empty")
            validated.append(images)
        embeddings = self._embed_batches(validated)
        cluster_ids = self._kmeans.predict(np.vstack(embeddings))
        out: List[DatasetDistribution] = []
        start = 0
        for i, emb in enumerate(embeddings):
            label = labels[i] if labels is not None else ""
            out.append(
                DatasetDistribution.from_cluster_ids(
                    cluster_ids[start : start + emb.shape[0]], self.n_clusters, label=label
                )
            )
            start += emb.shape[0]
        return out

    def lookup(
        self,
        images: np.ndarray,
        n_samples: Optional[int] = None,
        label: str = "",
    ) -> LookupResult:
        """Retrieve labeled historical data matching the input dataset's distribution.

        Returns the same number of labeled samples as the input (unless
        ``n_samples`` overrides it), drawn cluster-by-cluster according to the
        input's cluster PDF — the paper's pseudo-labeling operation.
        """
        return self.lookup_batch([images], n_samples=n_samples, labels=[label])[0]

    def lookup_batch(
        self,
        batches: Sequence[np.ndarray],
        n_samples: Optional[Union[int, Sequence[Optional[int]]]] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[LookupResult]:
        """Pseudo-label several datasets in one round trip.

        Results are *identical* to calling :meth:`lookup` once per dataset, in
        order, but the historical store is scanned once for the whole batch
        and all retrieved payloads are fetched in a single call — the per-call
        cost that dominates a lookup storm of small datasets.

        ``n_samples`` may be a single override applied to every dataset, or a
        per-dataset sequence (``None`` entries fall back to the dataset size).
        """
        if not self.is_fitted:
            raise NotFittedError("fairDS.lookup() requires fit() first")
        if not len(batches):
            return []
        if labels is None:
            labels = [""] * len(batches)
        elif len(labels) != len(batches):
            raise ValidationError("labels must match the number of batches")
        if n_samples is None or not hasattr(n_samples, "__len__"):
            n_samples = [n_samples] * len(batches)  # scalar (incl. float) applied to every dataset
        elif len(n_samples) != len(batches):
            raise ValidationError("n_samples must be a scalar or match the number of batches")
        n_outs = []
        for images, n_override in zip(batches, n_samples):
            n_out = int(n_override) if n_override is not None else int(np.asarray(images).shape[0])
            if n_out < 1:
                raise ValidationError("n_samples must be >= 1")
            n_outs.append(n_out)

        docs = self.collection.find()
        if not docs:
            raise ValidationError("the fairDS store is empty; ingest historical data first")
        store_cluster_ids = np.array([d["cluster_id"] for d in docs], dtype=int)

        # Everything that can fail happens above/in this call, before any
        # sampler seed is consumed — a rejected batch leaves the lookup
        # counter (and thus reproducibility vs N single calls) untouched.
        distributions = self.dataset_distribution_batch(batches, labels=labels)

        plans = []
        all_chosen_ids: List[str] = []
        for distribution, n_out, label in zip(distributions, n_outs, labels):
            sampler = WeightedClusterSampler(
                store_cluster_ids,
                distribution.pdf,
                n_samples=n_out,
                seed=derive_seed(self.seed, 101, self._lookup_counter),
            )
            self._lookup_counter += 1
            chosen = list(sampler)
            chosen_ids = [docs[i].id for i in chosen]
            plans.append((distribution, chosen, chosen_ids, label))
            all_chosen_ids.extend(chosen_ids)

        payloads = self.collection.fetch_payloads(all_chosen_ids)
        results: List[LookupResult] = []
        cursor = 0
        for distribution, chosen, chosen_ids, label in plans:
            batch_payloads = payloads[cursor : cursor + len(chosen_ids)]
            cursor += len(chosen_ids)
            retrieved_images = np.stack([np.asarray(p) for p in batch_payloads])
            retrieved_labels = np.array([docs[i]["label"] for i in chosen], dtype=np.float64)
            retrieved_dist = DatasetDistribution.from_cluster_ids(
                store_cluster_ids[chosen], self.n_clusters, label=f"{label}:retrieved"
            )
            results.append(
                LookupResult(
                    images=retrieved_images,
                    labels=retrieved_labels,
                    doc_ids=chosen_ids,
                    input_distribution=distribution,
                    retrieved_distribution=retrieved_dist,
                )
            )
        return results

    def nearest_labeled(
        self, images: np.ndarray, threshold: Optional[float] = None
    ) -> List[Tuple[Optional[np.ndarray], float]]:
        """Per-sample nearest labeled historical sample within ``threshold``.

        Returns a list of ``(label, distance)``; ``label`` is ``None`` when no
        historical sample lies within the embedding-space threshold, in which
        case the caller should fall back to conventional labeling (Fig. 9's
        ``|b - p| >= T`` branch).  ``threshold=None`` disables the gate — the
        nearest label is always returned (the serving path applies per-request
        thresholds client-side).  All samples are resolved against the index
        in one batched query.
        """
        if not self.is_fitted or self._index is None:
            raise NotFittedError("fairDS.nearest_labeled() requires fit() first")
        if threshold is None:
            threshold = np.inf
        elif threshold <= 0:
            raise ValidationError("threshold must be positive")
        embeddings = self._embed(np.asarray(images, dtype=np.float64))
        hits = self._index_query_batch(embeddings, k=1)
        results: List[Tuple[Optional[np.ndarray], float]] = []
        for (doc_id, dist), in hits:
            if dist < threshold:
                doc = self.collection.get(doc_id)
                results.append((np.asarray(doc["label"], dtype=np.float64), dist))
            else:
                results.append((None, dist))
        return results

    # -- system plane ---------------------------------------------------------------------------
    def certainty(self, images: np.ndarray, confidence: float = 0.5, fuzzifier: float = 2.0) -> float:
        """Cluster-assignment certainty (percent) of the input dataset (Fig. 16 metric).

        ``fuzzifier`` is the fuzzy c-means ``m`` parameter: values closer to 1
        sharpen memberships, which is appropriate when the embedding space has
        many nearby clusters (as with the 15-cluster Bragg space of the paper).
        The one-dataset special case of :meth:`certainty_batch`.
        """
        return self.certainty_batch([images], confidence=confidence, fuzzifier=fuzzifier)[0]

    def certainty_batch(
        self,
        batches: Sequence[np.ndarray],
        confidence: float = 0.5,
        fuzzifier: float = 2.0,
    ) -> List[float]:
        """Cluster-assignment certainty for several datasets at once.

        Embeddings come from the shared LRU cache where possible, and the
        fuzzy memberships of all datasets are computed in a single pass.
        """
        if not self.is_fitted:
            raise NotFittedError("fairDS.certainty_batch() requires fit() first")
        embeddings = self._embed_batches(
            [np.asarray(images, dtype=np.float64) for images in batches]
        )
        return assignment_certainty_batch(
            embeddings, self._kmeans.cluster_centers_, m=fuzzifier, confidence=confidence
        )

    def refresh(self, embedder_kwargs: Optional[Dict] = None) -> "FairDS":
        """Retrain the embedding and clustering models from the accumulated store.

        This is the system-plane action fired by the uncertainty trigger: all
        stored samples are re-embedded, the clustering is re-fit, every
        document's embedding/cluster fields are updated, and the lookup index
        rebuilt.
        """
        if not self.is_fitted:
            raise NotFittedError("fairDS.refresh() requires fit() first")
        docs = self.collection.find()
        if not docs:
            raise ValidationError("cannot refresh an empty store")
        ids = [d.id for d in docs]
        payloads = self.collection.fetch_payloads(ids)
        images = np.stack([np.asarray(p) for p in payloads])
        labels = np.array([d["label"] for d in docs], dtype=np.float64)
        extra = [
            {k: v for k, v in d.items() if k not in ("_id", "label", "embedding", "cluster_id", "payload", "payload_bytes")}
            for d in docs
        ]
        return self.fit(images, labels, metadata=extra, embedder_kwargs=embedder_kwargs)
