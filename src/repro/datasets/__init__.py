"""Synthetic scientific datasets standing in for the paper's experimental data.

The paper evaluates on three datasets that we cannot redistribute (and that
need APS/LCLS beamtime to regenerate):

* **BraggPeaks** — 1.8 M 15x15-pixel patches, each containing one Bragg
  diffraction peak, from 27 HEDM experiments.
* **CookieBox** — simulated 128x128 energy-histogram images of the CookieBox
  angular array of electron spectrometers.
* **Tomography** — 2048x2048 synchrotron CT slices.

Each generator here produces data with the same structure and, crucially, a
parameterised **experiment drift model** (:mod:`repro.datasets.drift`) so that
successive "scans" slowly change their distribution — the property that makes
ML models degrade over time (Fig. 2) and makes data/model reuse possible at
all (similar scans exist in the history).
"""

from repro.datasets.drift import ExperimentCondition, DriftSchedule, make_two_phase_schedule
from repro.datasets.bragg import BraggPeakDataset, generate_bragg_scan
from repro.datasets.cookiebox import CookieBoxDataset, generate_cookiebox_scan
from repro.datasets.tomography import TomographyDataset, generate_tomography_scan
from repro.datasets.splits import train_val_test_split, holdout_split

__all__ = [
    "ExperimentCondition",
    "DriftSchedule",
    "make_two_phase_schedule",
    "BraggPeakDataset",
    "generate_bragg_scan",
    "CookieBoxDataset",
    "generate_cookiebox_scan",
    "TomographyDataset",
    "generate_tomography_scan",
    "train_val_test_split",
    "holdout_split",
]
