"""BYOL embedder — the method the paper adopted for Bragg peaks."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.dataio.transforms import bragg_augmentation
from repro.embedding.base import Embedder, register_embedder
from repro.models.byol import BYOLLearner
from repro.utils.errors import NotFittedError
from repro.utils.rng import SeedLike


@register_embedder
class BYOLEmbedder(Embedder):
    """Embeds samples with a BYOL online encoder.

    Trained with physics-inspired augmentations (rotations, flips, detector
    noise) so that physically equivalent peaks — e.g. a peak and its rotation
    — map to nearby embeddings.
    """

    name = "byol"

    def __init__(
        self,
        embedding_dim: int = 16,
        hidden: int = 64,
        epochs: int = 15,
        batch_size: int = 64,
        lr: float = 1e-3,
        ema_decay: float = 0.99,
        augment: Optional[Callable] = None,
        seed: SeedLike = 0,
    ):
        super().__init__(embedding_dim)
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.ema_decay = float(ema_decay)
        self.augment = augment or bragg_augmentation
        self.seed = seed
        self._model: Optional[BYOLLearner] = None

    def fit(self, x: np.ndarray, **kwargs) -> "BYOLEmbedder":
        flat = self.flatten(x)
        self._model = BYOLLearner(
            flat.shape[1],
            embedding_dim=self.embedding_dim,
            hidden=self.hidden,
            ema_decay=self.ema_decay,
            seed=self.seed,
        )
        self._model.fit(
            flat, self.augment, epochs=self.epochs, batch_size=self.batch_size,
            lr=self.lr, seed=self.seed,
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise NotFittedError("BYOLEmbedder.transform() called before fit()")
        return self._model.encode(self.flatten(x))
