"""fairDMS — the end-to-end rapid model-training workflow.

Combines fairDS and fairMS into the user-plane operation the paper evaluates
in Section III-G/H: when a model has degraded, update it for the new data as
fast as possible by

1. transferring the new (unlabeled) data to the compute facility,
2. checking fairDS cluster-assignment certainty and, if it has dropped below
   the configured threshold, refreshing the system plane (retrain embedding +
   clustering, update the store and model index),
3. pseudo-labeling the new data with fairDS instead of running the expensive
   physics-based labeling code,
4. asking fairMS for the closest Zoo model and fine-tuning it (or training
   from scratch when nothing in the Zoo is within the distance threshold),
5. registering the updated model (and its training-data distribution) back
   into the Zoo, and
6. transferring the model back to the user.

Every step is timed so the label/train/end-to-end breakdown of Fig. 15 can be
reported directly from the returned :class:`ModelUpdateReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distribution import DatasetDistribution
from repro.core.fairds import FairDS, LookupResult
from repro.core.fairms import FairMS, Recommendation
from repro.core.model_zoo import ModelRecord, ModelZoo
from repro.monitoring.triggers import CertaintyTrigger
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.rng import SeedLike
from repro.utils.timing import StopWatch
from repro.workflow.transfer import TransferService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.executor import Executor


@dataclass
class UpdatePolicy:
    """Knobs controlling a fairDMS model update."""

    #: JSD above which no Zoo model is considered a useful foundation.
    distance_threshold: float = 0.5
    #: Cluster-assignment certainty (percent) below which the system plane is refreshed.
    certainty_threshold: float = 80.0
    #: Learning-rate scale applied when fine-tuning relative to from-scratch training.
    fine_tune_lr_scale: float = 0.5
    #: Number of leading parameterised layers to freeze during fine-tuning.
    freeze_layers: int = 0
    #: Fraction of the pseudo-labeled data held out for validation during training.
    validation_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.distance_threshold <= 1.0:
            raise ConfigurationError("distance_threshold must be in (0, 1]")
        if not 0.0 < self.certainty_threshold <= 100.0:
            raise ConfigurationError("certainty_threshold must be in (0, 100]")
        if not 0.0 < self.fine_tune_lr_scale <= 1.0:
            raise ConfigurationError("fine_tune_lr_scale must be in (0, 1]")
        if self.freeze_layers < 0:
            raise ConfigurationError("freeze_layers must be non-negative")
        if not 0.0 < self.validation_fraction < 1.0:
            raise ConfigurationError("validation_fraction must be in (0, 1)")


@dataclass
class TrainingOutcome:
    """Result of the recommend+train stage of a model update."""

    model: Sequential
    history: TrainingHistory
    strategy: str
    recommendation: Optional[Recommendation]


@dataclass
class ModelUpdateReport:
    """Everything the user gets back from :meth:`FairDMS.update_model`."""

    model: Sequential
    history: TrainingHistory
    strategy: str
    recommendation: Optional[Recommendation]
    input_distribution: DatasetDistribution
    lookup: LookupResult
    zoo_record: ModelRecord
    certainty: float
    triggered_refresh: bool
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def label_time(self) -> float:
        return self.timings.get("label", 0.0)

    @property
    def train_time(self) -> float:
        return self.timings.get("train", 0.0)

    @property
    def end_to_end_time(self) -> float:
        return float(sum(self.timings.values()))


class FairDMS:
    """End-to-end rapid model training service.

    Parameters
    ----------
    fairds:
        A fitted (or to-be-bootstrapped) :class:`FairDS` instance.
    fairms:
        The model service; created around a fresh Zoo when omitted.
    model_builder:
        Zero-argument callable returning a freshly initialised model of the
        application architecture (used for from-scratch training and for the
        initial bootstrap model).
    training_config:
        Default :class:`TrainingConfig` for from-scratch training; fine-tuning
        uses the same config with the policy's learning-rate scale.
    transfer:
        Optional :class:`TransferService` to account data/model movement.
    policy:
        :class:`UpdatePolicy` thresholds.
    executor:
        Optional :class:`repro.compute.Executor` handed to every
        :class:`Trainer` this service builds (bootstrap, from-scratch
        retraining, fine-tuning), enabling data-parallel training without
        any call-site change.  Defaults to the fairDS executor when that is
        set, so a deployment wires the compute plane once.
    """

    def __init__(
        self,
        fairds: FairDS,
        model_builder: Callable[[], Sequential],
        training_config: TrainingConfig,
        fairms: Optional[FairMS] = None,
        transfer: Optional[TransferService] = None,
        policy: Optional[UpdatePolicy] = None,
        seed: SeedLike = 0,
        executor: Optional["Executor"] = None,
    ):
        self.fairds = fairds
        self.policy = policy or UpdatePolicy()
        self.fairms = fairms or FairMS(
            ModelZoo(db=fairds.db), distance_threshold=self.policy.distance_threshold
        )
        self.model_builder = model_builder
        self.training_config = training_config
        self.transfer = transfer
        self.seed = seed
        self.executor = executor if executor is not None else fairds.executor
        self.certainty_trigger = CertaintyTrigger(self.policy.certainty_threshold)

    def _trainer(self, model: Sequential) -> Trainer:
        return Trainer(model, executor=self.executor)

    # -- bootstrap -----------------------------------------------------------------------
    def bootstrap(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        metadata=None,
        train_initial_model: bool = True,
    ) -> Optional[ModelRecord]:
        """Populate fairDS with historical labeled data and (optionally) train
        and register an initial model on it."""
        self.fairds.fit(images, labels, metadata=metadata)
        if not train_initial_model:
            return None
        model = self.model_builder()
        x_train, y_train, x_val, y_val = self._split(images, labels)
        self._trainer(model).fit((x_train, y_train), val=(x_val, y_val), config=self.training_config)
        distribution = self.fairds.dataset_distribution(images, label="bootstrap")
        return self.fairms.register(model, distribution, origin="bootstrap")

    # -- helpers ----------------------------------------------------------------------------
    def _split(self, images: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = images.shape[0]
        if n < 4:
            raise ValidationError("need at least 4 samples to split train/validation")
        n_val = max(1, int(round(n * self.policy.validation_fraction)))
        return images[n_val:], labels[n_val:], images[:n_val], labels[:n_val]

    # -- batched pseudo-labeling ---------------------------------------------------------
    def pseudo_label_batch(
        self, datasets: "Sequence[np.ndarray]", label: str = "batch"
    ) -> "List[LookupResult]":
        """Pseudo-label several arriving datasets in one user-plane call.

        Equivalent to one ``FairDS.lookup(dataset, label=label)`` per dataset
        (results are identical, in order), but the historical store is
        scanned once and all payloads are fetched in a single round trip —
        the batched discipline the lookup engine provides end to end.
        """
        return self.fairds.lookup_batch(datasets, labels=[label] * len(datasets))

    def train_on_lookup(
        self, lookup: LookupResult, watch: Optional[StopWatch] = None
    ) -> TrainingOutcome:
        """Produce an updated model from an existing pseudo-label lookup.

        The recommend/fine-tune-or-scratch stage of :meth:`update_model`,
        exposed on its own so the continual-learning pipeline can run
        labeling and training as separate (checkpointed) DAG steps.  When a
        ``watch`` is given, the ``recommend`` and ``train`` phases are timed
        into it.
        """
        watch = watch if watch is not None else StopWatch()
        x_train, y_train, x_val, y_val = self._split(lookup.images, lookup.labels)
        input_distribution = lookup.input_distribution
        recommendation: Optional[Recommendation] = None
        scratch = len(self.fairms.zoo) == 0 or self.fairms.should_train_from_scratch(input_distribution)
        if scratch:
            strategy = "scratch"
            model = self.model_builder()
            with watch.measure("train"):
                history = self._trainer(model).fit(
                    (x_train, y_train), val=(x_val, y_val), config=self.training_config
                )
        else:
            strategy = "fine-tune"
            with watch.measure("recommend"):
                recommendation = self.fairms.recommend(input_distribution)
                model = self.fairms.load(recommendation)
            with watch.measure("train"):
                history = self._trainer(model).fine_tune(
                    (x_train, y_train),
                    val=(x_val, y_val),
                    config=self.training_config,
                    freeze_layers=self.policy.freeze_layers,
                    lr_scale=self.policy.fine_tune_lr_scale,
                )
        return TrainingOutcome(
            model=model, history=history, strategy=strategy, recommendation=recommendation
        )

    # -- the headline operation ---------------------------------------------------------------
    def update_model(
        self,
        new_images: np.ndarray,
        label: str = "update",
        register: bool = True,
    ) -> ModelUpdateReport:
        """Produce an updated model for ``new_images`` (which arrive unlabeled)."""
        new_images = np.asarray(new_images, dtype=np.float64)
        if new_images.shape[0] < 4:
            raise ValidationError("need at least 4 new samples to update a model")
        watch = StopWatch()

        # 1. Transfer the new data to the compute facility.
        if self.transfer is not None:
            record = self.transfer.transfer_array(new_images, label=f"{label}:data")
            watch.add("transfer_data", record.simulated_seconds)

        # 2. System-plane health check: refresh when certainty drops.
        with watch.measure("certainty"):
            certainty = self.fairds.certainty(new_images)
        triggered = self.certainty_trigger.observe(certainty)
        if triggered:
            with watch.measure("system_refresh"):
                self.fairds.refresh()

        # 3. Pseudo-label via fairDS (reuse historical labels).
        with watch.measure("label"):
            lookup = self.fairds.lookup(new_images, label=label)
        input_distribution = lookup.input_distribution

        # 4. Model recommendation and training.
        outcome = self.train_on_lookup(lookup, watch=watch)
        model, history = outcome.model, outcome.history
        strategy, recommendation = outcome.strategy, outcome.recommendation

        # 5. Register the updated model in the Zoo.
        metrics = {"val_loss": history.best_val_loss, "epochs": float(history.epochs_run)}
        zoo_record = None
        if register:
            with watch.measure("register"):
                zoo_record = self.fairms.register(
                    model, input_distribution, metrics=metrics, origin=label, strategy=strategy
                )

        # 6. Transfer the model back to the user.
        if self.transfer is not None and zoo_record is not None:
            record = self.transfer.transfer_bytes(
                self.fairms.zoo.model_bytes(zoo_record.model_id), label=f"{label}:model"
            )
            watch.add("transfer_model", record.simulated_seconds)

        return ModelUpdateReport(
            model=model,
            history=history,
            strategy=strategy,
            recommendation=recommendation,
            input_distribution=input_distribution,
            lookup=lookup,
            zoo_record=zoo_record if zoo_record is not None else self._ephemeral_record(model, input_distribution, metrics),
            certainty=certainty,
            triggered_refresh=triggered,
            timings=watch.as_dict(),
        )

    @staticmethod
    def _ephemeral_record(model: Sequential, distribution: DatasetDistribution, metrics: Dict[str, float]) -> ModelRecord:
        return ModelRecord(model_id="<unregistered>", name=model.name, distribution=distribution, metrics=metrics)
