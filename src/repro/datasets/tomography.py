"""Synthetic tomography dataset.

Synchrotron CT slices are reproduced as random "phantom" images: a disc-shaped
sample containing ellipsoidal inclusions of varying density, the classic
Shepp-Logan-style construction.  Each sample comes in a clean and a noisy
(low-dose) version, so the TomoGAN-style denoiser has a supervised target and
the storage benchmarks (Fig. 6) have large dense arrays to move around.

The paper uses 2048x2048 16-bit slices; the default here is 128x128 to keep
the CPU-only benchmarks fast — the storage cost trends (serialisation vs file
reads) are preserved because they depend on bytes per item, not absolute size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.drift import DriftSchedule, ExperimentCondition
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, default_rng, derive_seed


@dataclass
class TomographyScan:
    """One scan of tomography slices.

    Attributes
    ----------
    noisy:
        ``(n, 1, H, W)`` low-dose images in [0, 1].
    clean:
        ``(n, 1, H, W)`` ground-truth images in [0, 1].
    condition:
        Experiment condition of the scan.
    """

    noisy: np.ndarray
    clean: np.ndarray
    condition: ExperimentCondition

    def __len__(self) -> int:
        return self.noisy.shape[0]


def _phantom(size: int, n_inclusions: int, rng: np.random.Generator) -> np.ndarray:
    """Render a disc-shaped phantom with random ellipsoidal inclusions."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    cx = cy = (size - 1) / 2.0
    radius = 0.45 * size
    img = np.zeros((size, size))
    sample = ((xx - cx) ** 2 + (yy - cy) ** 2) <= radius**2
    img[sample] = 0.3
    for _ in range(n_inclusions):
        icx = cx + rng.uniform(-0.3, 0.3) * size
        icy = cy + rng.uniform(-0.3, 0.3) * size
        a = rng.uniform(0.03, 0.12) * size
        b = rng.uniform(0.03, 0.12) * size
        theta = rng.uniform(0, np.pi)
        density = rng.uniform(0.2, 0.7)
        xr = (xx - icx) * np.cos(theta) + (yy - icy) * np.sin(theta)
        yr = -(xx - icx) * np.sin(theta) + (yy - icy) * np.cos(theta)
        mask = (xr / a) ** 2 + (yr / b) ** 2 <= 1.0
        img[mask & sample] += density
    return np.clip(img, 0.0, 1.0)


def generate_tomography_scan(
    condition: ExperimentCondition,
    n_slices: int = 16,
    image_size: int = 128,
    n_inclusions: int = 8,
    seed: SeedLike = None,
) -> TomographyScan:
    """Generate one scan of clean + low-dose tomography slices."""
    if n_slices < 1 or image_size < 16:
        raise ConfigurationError("n_slices must be >= 1 and image_size >= 16")
    rng = default_rng(derive_seed(seed if seed is not None else 0, condition.scan_index, 37))
    clean = np.empty((n_slices, 1, image_size, image_size), dtype=np.float64)
    noisy = np.empty_like(clean)
    for i in range(n_slices):
        img = _phantom(image_size, n_inclusions, rng)
        clean[i, 0] = img
        # Low-dose acquisition: Poisson-like counting noise scaled by intensity
        # plus additive detector noise.
        dose = max(condition.intensity * 200.0, 10.0)
        counts = rng.poisson(img * dose) / dose
        noise = condition.noise_level * rng.standard_normal(img.shape)
        noisy[i, 0] = np.clip(counts + noise, 0.0, 1.0)
    return TomographyScan(noisy=noisy, clean=clean, condition=condition)


class TomographyDataset:
    """Multi-scan synthetic tomography experiment driven by a drift schedule."""

    def __init__(
        self,
        schedule: DriftSchedule,
        slices_per_scan: int = 16,
        image_size: int = 128,
        seed: SeedLike = 0,
    ):
        if slices_per_scan < 1:
            raise ConfigurationError("slices_per_scan must be >= 1")
        self.schedule = schedule
        self.slices_per_scan = int(slices_per_scan)
        self.image_size = int(image_size)
        self.seed = seed
        self._cache: dict[int, TomographyScan] = {}

    def __len__(self) -> int:
        return len(self.schedule)

    def scan(self, scan_index: int) -> TomographyScan:
        if scan_index not in self._cache:
            condition = self.schedule.condition(scan_index)
            self._cache[scan_index] = generate_tomography_scan(
                condition,
                n_slices=self.slices_per_scan,
                image_size=self.image_size,
                seed=derive_seed(self.seed, scan_index),
            )
        return self._cache[scan_index]

    def scans(self, indices) -> List[TomographyScan]:
        return [self.scan(i) for i in indices]

    def stacked(self, indices) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate (noisy, clean) image stacks of several scans."""
        scans = self.scans(indices)
        noisy = np.concatenate([s.noisy for s in scans], axis=0)
        clean = np.concatenate([s.clean for s in scans], axis=0)
        return noisy, clean
