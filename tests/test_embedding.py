"""Tests for the embedding service (interface, registry, and all embedders)."""

import numpy as np
import pytest

from repro.datasets.bragg import generate_bragg_scan
from repro.datasets.drift import ExperimentCondition
from repro.embedding.autoencoder_embedder import AutoencoderEmbedder
from repro.embedding.base import Embedder, get_embedder, register_embedder
from repro.embedding.byol_embedder import BYOLEmbedder
from repro.embedding.contrastive_embedder import ContrastiveEmbedder
from repro.embedding.pca_embedder import PCAEmbedder
from repro.utils.errors import ConfigurationError, NotFittedError, ValidationError


def _two_phase_patches(n_per_phase=60, seed=0):
    """Bragg patches from two clearly different experiment conditions."""
    early = generate_bragg_scan(
        ExperimentCondition(0, peak_width=1.2, center_spread=1.0), n_peaks=n_per_phase, seed=seed
    )
    late = generate_bragg_scan(
        ExperimentCondition(1, peak_width=3.5, center_spread=3.5, noise_level=0.05),
        n_peaks=n_per_phase,
        seed=seed + 1,
    )
    x = np.concatenate([early.images, late.images], axis=0)
    phases = np.array([0] * n_per_phase + [1] * n_per_phase)
    return x, phases


def _phase_separation(z, phases):
    """Ratio of between-phase centroid distance to mean within-phase spread."""
    c0 = z[phases == 0].mean(axis=0)
    c1 = z[phases == 1].mean(axis=0)
    between = np.linalg.norm(c0 - c1)
    within = 0.5 * (
        np.linalg.norm(z[phases == 0] - c0, axis=1).mean()
        + np.linalg.norm(z[phases == 1] - c1, axis=1).mean()
    )
    return between / max(within, 1e-12)


# -- registry ---------------------------------------------------------------------
def test_registry_provides_all_builtin_embedders():
    assert isinstance(get_embedder("pca", embedding_dim=4), PCAEmbedder)
    assert isinstance(get_embedder("autoencoder", embedding_dim=4), AutoencoderEmbedder)
    assert isinstance(get_embedder("contrastive", embedding_dim=4), ContrastiveEmbedder)
    assert isinstance(get_embedder("byol", embedding_dim=4), BYOLEmbedder)
    with pytest.raises(ConfigurationError):
        get_embedder("nope")


def test_register_custom_embedder():
    @register_embedder
    class MeanEmbedder(Embedder):
        name = "mean"

        def fit(self, x, **kwargs):
            return self

        def transform(self, x):
            flat = self.flatten(x)
            return flat.mean(axis=1, keepdims=True)

    emb = get_embedder("mean", embedding_dim=1)
    out = emb.fit_transform(np.ones((3, 4)))
    np.testing.assert_allclose(out, 1.0)


def test_register_embedder_requires_name():
    class Nameless(Embedder):
        name = "base"

        def fit(self, x, **kwargs):
            return self

        def transform(self, x):
            return self.flatten(x)

    with pytest.raises(ConfigurationError):
        register_embedder(Nameless)


def test_embedder_base_validation():
    with pytest.raises(ConfigurationError):
        PCAEmbedder(embedding_dim=0)


# -- PCA --------------------------------------------------------------------------------
def test_pca_embedder_shapes_and_explained_variance(rng):
    x = rng.normal(size=(50, 20))
    emb = PCAEmbedder(embedding_dim=5).fit(x)
    z = emb.transform(x)
    assert z.shape == (50, 5)
    assert emb.explained_variance_ratio_.shape == (5,)
    assert np.all(np.diff(emb.explained_variance_ratio_) <= 1e-12)


def test_pca_embedder_reconstructs_low_rank_structure(rng):
    # Data that genuinely lies in a 2-D subspace is captured exactly.
    basis = rng.normal(size=(2, 10))
    coeffs = rng.normal(size=(40, 2))
    x = coeffs @ basis
    emb = PCAEmbedder(embedding_dim=2).fit(x)
    assert emb.explained_variance_ratio_.sum() == pytest.approx(1.0)


def test_pca_embedder_pads_when_dim_exceeds_rank(rng):
    x = rng.normal(size=(5, 3))
    z = PCAEmbedder(embedding_dim=8).fit(x).transform(x)
    assert z.shape == (5, 8)
    np.testing.assert_allclose(z[:, 3:], 0.0)


def test_pca_embedder_errors(rng):
    emb = PCAEmbedder(embedding_dim=2)
    with pytest.raises(NotFittedError):
        emb.transform(rng.normal(size=(3, 4)))
    with pytest.raises(ValidationError):
        emb.fit(rng.normal(size=(1, 4)))
    emb.fit(rng.normal(size=(10, 4)))
    with pytest.raises(ValidationError):
        emb.transform(rng.normal(size=(3, 7)))


def test_pca_whiten_unit_variance(rng):
    x = rng.normal(size=(200, 6)) * np.array([10, 5, 1, 1, 1, 1])
    z = PCAEmbedder(embedding_dim=2, whiten=True).fit(x).transform(x)
    np.testing.assert_allclose(z.std(axis=0), 1.0, atol=0.2)


def test_pca_separates_drift_phases():
    x, phases = _two_phase_patches()
    z = PCAEmbedder(embedding_dim=4).fit_transform(x)
    assert _phase_separation(z, phases) > 1.0


# -- trained embedders (kept small for CPU time) -------------------------------------------
def test_autoencoder_embedder_separates_drift_phases():
    x, phases = _two_phase_patches(n_per_phase=40)
    emb = AutoencoderEmbedder(embedding_dim=4, hidden=32, epochs=8, seed=0)
    z = emb.fit_transform(x)
    assert z.shape == (80, 4)
    assert _phase_separation(z, phases) > 0.8


def test_byol_embedder_shapes_and_not_fitted():
    x, _ = _two_phase_patches(n_per_phase=30)
    emb = BYOLEmbedder(embedding_dim=4, hidden=32, epochs=3, seed=0)
    with pytest.raises(NotFittedError):
        emb.transform(x)
    z = emb.fit_transform(x)
    assert z.shape == (60, 4)
    assert np.all(np.isfinite(z))


def test_contrastive_embedder_shapes():
    x, _ = _two_phase_patches(n_per_phase=30)
    emb = ContrastiveEmbedder(embedding_dim=4, hidden=32, epochs=3, seed=0)
    z = emb.fit_transform(x)
    assert z.shape == (60, 4)
    assert np.all(np.isfinite(z))


def test_autoencoder_embedder_not_fitted(rng):
    with pytest.raises(NotFittedError):
        AutoencoderEmbedder(embedding_dim=2).transform(rng.normal(size=(2, 8)))


def test_contrastive_embedder_not_fitted(rng):
    with pytest.raises(NotFittedError):
        ContrastiveEmbedder(embedding_dim=2).transform(rng.normal(size=(2, 8)))
