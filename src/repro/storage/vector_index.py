"""Nearest-neighbour indexes over embedding vectors.

fairDS looks up "the most similar historical sample" for a new embedding.  A
flat (exact) index scales linearly with the database — the cost the paper
calls out for naive instance discrimination — while the cluster-partitioned
index implements the paper's two-level hierarchical search: first find the
nearest cluster centre, then search only within that cluster.

Both indexes keep their vectors in one contiguous ``(capacity, dim)`` matrix
(float32 by default) grown by amortised doubling, and answer whole query
batches in a single vectorised distance computation with ``np.argpartition``
top-k selection.  ``query`` is the one-row special case of ``query_batch``,
so the per-vector and batched paths can never drift apart.  Distances are
accumulated in float64 regardless of the storage dtype so the reported
nearest-neighbour ordering stays numerically stable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.errors import StorageError, ValidationError
from repro.utils.stats import pairwise_squared_distances

#: One query's result: ``(key, euclidean_distance)`` pairs, nearest first.
QueryResult = List[Tuple[str, float]]

_INITIAL_CAPACITY = 32


class VectorIndex:
    """Exact nearest-neighbour index with incremental adds.

    Parameters
    ----------
    dim:
        Dimensionality of the stored vectors.
    dtype:
        Storage dtype of the contiguous vector matrix.  Distance computations
        are carried out in float64 regardless, against a query-time float64
        mirror (a free view when the storage dtype is already float64).
    cache_query_matrix:
        Whether to keep the float64 mirror between queries (rebuilt lazily
        after adds).  True favours query latency at the cost of holding both
        copies (1.5x a plain float64 index for float32 storage); False
        favours memory and pays one dtype conversion per query call, which is
        the right trade for huge, rarely-queried stores.
    """

    def __init__(self, dim: int, dtype=np.float32, cache_query_matrix: bool = True):
        if dim < 1:
            raise ValidationError("dim must be >= 1")
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        self.cache_query_matrix = bool(cache_query_matrix)
        self._data = np.empty((0, self.dim), dtype=self.dtype)
        self._size = 0
        self._keys: List[str] = []
        self._key_rows: Dict[str, int] = {}
        self._keys_cache: Optional[Tuple[str, ...]] = None
        self._query_matrix: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: object) -> bool:
        return key in self._key_rows

    @property
    def vectors(self) -> np.ndarray:
        """Read-only, contiguous view of the stored vectors (no copy)."""
        view = self._data[: self._size]
        view.flags.writeable = False
        return view

    @property
    def keys(self) -> Tuple[str, ...]:
        """The stored keys, row-aligned with :attr:`vectors`.

        The tuple is cached between adds: repeated access (shard statistics
        polling, per-partition scans) is O(1), not an O(n) rebuild.  The cache
        is keyed on the published size, so a reader racing an in-flight add
        falls back to building (and caching) the view for the size it
        observed.
        """
        cached = self._keys_cache
        size = self._size
        if cached is None or len(cached) != size:
            cached = tuple(self._keys[:size])
            self._keys_cache = cached
        return cached

    # -- writes ----------------------------------------------------------------
    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._data.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(capacity, _INITIAL_CAPACITY)
        while new_capacity < needed:
            new_capacity *= 2
        grown = np.empty((new_capacity, self.dim), dtype=self.dtype)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def add(self, keys: Sequence[str], vectors: np.ndarray) -> None:
        """Add (or overwrite) vectors under ``keys``.

        Duplicate keys follow **last-write-wins** semantics: a key that is
        already stored has its vector overwritten in place (the row keeps its
        position), and when the same key appears several times within one
        call only the final occurrence is kept.  The index therefore never
        holds two rows for one key, so ``query_batch`` can never return the
        same key twice with different distances.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=self.dtype))
        if vectors.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        if len(keys) != vectors.shape[0]:
            raise ValidationError("keys and vectors must have the same length")
        # Last occurrence of each key wins within the batch; iteration below
        # preserves first-seen order, so fresh keys append deterministically.
        source_rows: Dict[str, int] = {str(k): i for i, k in enumerate(keys)}
        overwrite_rows: List[int] = []
        overwrite_src: List[int] = []
        fresh_keys: List[str] = []
        fresh_src: List[int] = []
        for key, src in source_rows.items():
            row = self._key_rows.get(key)
            if row is None:
                fresh_keys.append(key)
                fresh_src.append(src)
            else:
                overwrite_rows.append(row)
                overwrite_src.append(src)
        if overwrite_rows:
            self._data[np.asarray(overwrite_rows)] = vectors[np.asarray(overwrite_src)]
            self._query_matrix = None
        if fresh_keys:
            n = len(fresh_keys)
            self._ensure_capacity(n)
            self._data[self._size : self._size + n] = vectors[fresh_src]
            self._keys.extend(fresh_keys)
            for offset, key in enumerate(fresh_keys):
                self._key_rows[key] = self._size + offset
            # Invalidate before publishing the new size so a concurrent query
            # never pairs the stale mirror (or keys view) with the grown size.
            self._keys_cache = None
            self._query_matrix = None
            self._size += n

    def discard(self, keys: Sequence[str]) -> List[Tuple[int, int]]:
        """Remove ``keys`` (absent keys are ignored) by swap-with-last.

        Returns the list of ``(removed_row, former_last_row)`` moves applied,
        in order, so callers maintaining row-aligned side arrays (e.g. the
        IVF partitions' PQ code matrices) can replay the same compaction.
        Unlike :meth:`add`, removal is not safe against concurrent readers —
        callers synchronise externally (the IVF index holds its write lock).
        """
        moves: List[Tuple[int, int]] = []
        for key in keys:
            row = self._key_rows.pop(str(key), None)
            if row is None:
                continue
            last = self._size - 1
            if row != last:
                self._data[row] = self._data[last]
                moved_key = self._keys[last]
                self._keys[row] = moved_key
                self._key_rows[moved_key] = row
            self._keys.pop()
            self._keys_cache = None
            self._query_matrix = None
            self._size = last
            moves.append((row, last))
        return moves

    # -- reads -----------------------------------------------------------------
    def _topk(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised top-k over all rows: ``(indices, distances)`` of shape (B, k')."""
        # Work on a local snapshot so a concurrent add() (system-plane ingest
        # racing a user-plane lookup) can never pair a stale mirror with a
        # newer size mid-computation.
        matrix = self._query_matrix
        if matrix is None or matrix.shape[0] != self._size:
            matrix = np.asarray(self._data[: self._size], dtype=np.float64)
            if self.cache_query_matrix:
                self._query_matrix = matrix
        n = matrix.shape[0]
        d2 = pairwise_squared_distances(queries, matrix)
        k = min(k, n)
        if k == 1:
            idx = np.argmin(d2, axis=1)[:, None]
            return idx, np.sqrt(np.take_along_axis(d2, idx, axis=1))
        if k < n:
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            idx = np.broadcast_to(np.arange(n), d2.shape)
        selected = np.take_along_axis(d2, idx, axis=1)
        order = np.argsort(selected, axis=1, kind="stable")
        idx = np.take_along_axis(idx, order, axis=1)
        return idx, np.sqrt(np.take_along_axis(selected, order, axis=1))

    def query_batch(
        self, vectors: np.ndarray, k: int = 1, allow_empty: bool = False
    ) -> List[QueryResult]:
        """Top-``k`` ``(key, distance)`` pairs for every row of ``vectors``.

        The distance matrix, selection and ordering are computed for the whole
        batch at once — there is no per-sample Python loop on the numeric path.

        An empty index raises :class:`StorageError` by default — on the
        direct single-index path an empty store is almost always a wiring
        bug.  Scatter-gather callers (the sharded store querying a cold
        shard) pass ``allow_empty=True`` to receive an empty result list per
        query instead: a shard with nothing stored contributes zero
        candidates to the merge rather than aborting the whole lookup.
        """
        if k < 1:
            raise ValidationError("k must be >= 1")
        queries = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {queries.shape[1]}")
        if self._size == 0:
            if allow_empty:
                return [[] for _ in range(queries.shape[0])]
            raise StorageError("vector index is empty")
        indices, distances = self._topk(queries, k)
        keys = self._keys
        return [
            [(keys[int(j)], float(d)) for j, d in zip(idx_row, dist_row)]
            for idx_row, dist_row in zip(indices, distances)
        ]

    def query(self, vector: np.ndarray, k: int = 1) -> QueryResult:
        """Return the ``k`` nearest ``(key, distance)`` pairs for ``vector``."""
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        return self.query_batch(vector, k=k)[0]


# -- mmap persistence -------------------------------------------------------
_MMAP_META = "meta.json"
_MMAP_VECTORS = "vectors.npy"
_MMAP_KEYS = "keys.json"
_MMAP_FORMAT = "repro-mmap-index"


def save_mmap(index: VectorIndex, directory: Union[str, Path]) -> Path:
    """Persist a flat :class:`VectorIndex` as an mmap-openable directory.

    Writes ``meta.json`` (format tag, dim, dtype, size), ``vectors.npy`` (the
    contiguous vector matrix, loadable with ``np.load(mmap_mode="r")``) and
    ``keys.json``.  Several processes can then :func:`open_mmap` the same
    directory and share the vector pages through the OS page cache instead of
    each holding a private copy — the multiprocess-serving companion of the
    compute plane's shared-memory handoff.
    """
    if not isinstance(index, VectorIndex):
        raise StorageError(
            f"save_mmap requires a flat VectorIndex, got {type(index).__name__}"
        )
    if len(index) == 0:
        raise StorageError("refusing to save an empty vector index")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    vectors = np.ascontiguousarray(index.vectors)
    np.save(directory / _MMAP_VECTORS, vectors)
    (directory / _MMAP_KEYS).write_text(json.dumps(list(index.keys)))
    meta = {
        "format": _MMAP_FORMAT,
        "version": 1,
        "dim": index.dim,
        "dtype": vectors.dtype.name,
        "size": int(vectors.shape[0]),
    }
    (directory / _MMAP_META).write_text(json.dumps(meta, indent=2))
    return directory


class MmapVectorIndex(VectorIndex):
    """Read-only :class:`VectorIndex` over a :func:`save_mmap` directory.

    The vector matrix is memory-mapped (``np.load(mmap_mode="r")``), so
    opening is O(1) regardless of index size and concurrent processes opening
    the same directory share pages rather than duplicating the store.  The
    float64 query mirror is deliberately **not** cached: keeping it would
    re-materialise the whole store in private memory, defeating the mmap.

    The index is immutable — :meth:`add` raises :class:`StorageError`; to
    change the store, rebuild a regular index and :func:`save_mmap` it to a
    fresh directory.
    """

    def __init__(self, path: Union[str, Path]):
        path = Path(path)
        meta_path = path / _MMAP_META
        if not meta_path.is_file():
            raise StorageError(f"not an mmap index directory (no {_MMAP_META}): {path}")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"unreadable mmap index metadata at {meta_path}: {exc}") from exc
        if meta.get("format") != _MMAP_FORMAT:
            raise StorageError(
                f"unrecognised mmap index format {meta.get('format')!r} at {path}"
            )
        super().__init__(
            int(meta["dim"]), dtype=np.dtype(meta["dtype"]), cache_query_matrix=False
        )
        try:
            vectors = np.load(path / _MMAP_VECTORS, mmap_mode="r")
            keys = json.loads((path / _MMAP_KEYS).read_text())
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise StorageError(f"corrupt mmap index at {path}: {exc}") from exc
        size = int(meta["size"])
        if vectors.ndim != 2 or vectors.shape != (size, self.dim) or len(keys) != size:
            raise StorageError(
                f"mmap index at {path} is inconsistent: meta says {(size, self.dim)}, "
                f"vectors are {vectors.shape} with {len(keys)} keys"
            )
        self.path = path
        self._data = vectors
        self._size = size
        self._keys = [str(k) for k in keys]
        self._key_rows = {key: row for row, key in enumerate(self._keys)}

    def add(self, keys: Sequence[str], vectors: np.ndarray) -> None:
        raise StorageError(
            "mmap-backed vector index is read-only; rebuild a VectorIndex and "
            "save_mmap() it to a new directory to change the store"
        )


def open_mmap(path: Union[str, Path]) -> MmapVectorIndex:
    """Open a :func:`save_mmap` directory read-only (registry name ``mmap``)."""
    return MmapVectorIndex(path)


class ClusteredVectorIndex:
    """Two-level (cluster -> sample) nearest-neighbour index.

    Built from cluster centres (from the fairDS clustering module) plus the
    per-sample embedding and cluster assignment.  A query first picks the
    ``n_probe`` nearest cluster centres and then searches only the members of
    those clusters — sub-linear lookup for large historical stores.

    Batched queries are routed per partition: every query is assigned its
    probe set in one centre-distance computation, then each touched partition
    is searched exactly once with the sub-batch of queries probing it.
    """

    def __init__(self, centers: np.ndarray, n_probe: int = 1, dtype=np.float32,
                 cache_query_matrix: bool = True):
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        if centers.shape[0] < 1:
            raise ValidationError("need at least one cluster centre")
        if n_probe < 1:
            raise ValidationError("n_probe must be >= 1")
        self.centers = centers
        self.dim = centers.shape[1]
        self.n_probe = int(min(n_probe, centers.shape[0]))
        self.dtype = np.dtype(dtype)
        self.cache_query_matrix = bool(cache_query_matrix)
        self._partitions: Dict[int, VectorIndex] = {}

    def add(self, keys: Sequence[str], vectors: np.ndarray, cluster_ids: Sequence[int]) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=self.dtype))
        cluster_ids = np.asarray(cluster_ids, dtype=int)
        if not (len(keys) == vectors.shape[0] == cluster_ids.shape[0]):
            raise ValidationError("keys, vectors and cluster_ids must have equal length")
        if np.any(cluster_ids < 0) or np.any(cluster_ids >= self.centers.shape[0]):
            raise ValidationError("cluster_ids out of range")
        for cid in np.unique(cluster_ids):
            mask = cluster_ids == cid
            part = self._partitions.setdefault(
                int(cid),
                VectorIndex(self.dim, dtype=self.dtype, cache_query_matrix=self.cache_query_matrix),
            )
            part.add([keys[i] for i in np.nonzero(mask)[0]], vectors[mask])

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions.values())

    def _probe_sets(self, probe_order: np.ndarray, k: int) -> List[List[int]]:
        """Partitions each query visits: nearest non-empty clusters until both
        ``n_probe`` partitions have been probed and ``k`` candidates exist."""
        sizes = {cid: len(part) for cid, part in self._partitions.items() if len(part)}
        probe_lists: List[List[int]] = []
        for row in probe_order:
            chosen: List[int] = []
            probed = n_candidates = 0
            for cid in row:
                size = sizes.get(int(cid))
                if not size:
                    continue
                chosen.append(int(cid))
                probed += 1
                n_candidates += min(k, size)
                if probed >= self.n_probe and n_candidates >= k:
                    break
            probe_lists.append(chosen)
        return probe_lists

    def query_batch(
        self, vectors: np.ndarray, k: int = 1, allow_empty: bool = False
    ) -> List[QueryResult]:
        """Top-``k`` pairs for every row of ``vectors``, one search per partition."""
        if k < 1:
            raise ValidationError("k must be >= 1")
        queries = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {queries.shape[1]}")
        if len(self) == 0:
            if allow_empty:
                return [[] for _ in range(queries.shape[0])]
            raise StorageError("clustered vector index is empty")

        center_d2 = pairwise_squared_distances(queries, self.centers)
        probe_lists = self._probe_sets(np.argsort(center_d2, axis=1, kind="stable"), k)

        # Group queries by partition and search each partition once.
        by_partition: Dict[int, List[int]] = {}
        for qi, chosen in enumerate(probe_lists):
            for cid in chosen:
                by_partition.setdefault(cid, []).append(qi)
        partition_hits: Dict[int, Dict[int, QueryResult]] = {}
        for cid, q_indices in by_partition.items():
            part = self._partitions[cid]
            results = part.query_batch(queries[q_indices], k=min(k, len(part)))
            partition_hits[cid] = dict(zip(q_indices, results))

        out: List[QueryResult] = []
        for qi, chosen in enumerate(probe_lists):
            candidates: QueryResult = []
            for cid in chosen:
                candidates.extend(partition_hits[cid][qi])
            candidates.sort(key=lambda kv: kv[1])
            out.append(candidates[:k])
        return out

    def query(self, vector: np.ndarray, k: int = 1) -> QueryResult:
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        return self.query_batch(vector, k=k)[0]
