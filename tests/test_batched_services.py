"""Batched user-plane/system-plane operations across the lookup engine.

The acceptance contract of the batched engine: every ``*_batch`` operation
returns results identical to issuing the same calls one at a time, while the
store is scanned once per batch.  The tests construct two identically seeded
service stacks and compare the batched path against N single calls.
"""

import numpy as np
import pytest

from repro import FairDMS, FairDS, UpdatePolicy
from repro.core import FairDMSService
from repro.embedding import PCAEmbedder
from repro.models import build_braggnn
from repro.nn.trainer import TrainingConfig
from repro.utils.errors import NotFittedError, ValidationError


def _data(seed=0, n=96, side=6):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, side, side)), rng.normal(size=(n, 2))


def _batches(seed=7, n_batches=3, n=18, side=6):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(n, side, side)) for _ in range(n_batches)]


def _fitted_fairds(seed=0, **kwargs):
    images, labels = _data()
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=seed, **kwargs)
    fairds.fit(images, labels)
    return fairds


def _store_positions(fairds, doc_ids):
    order = {doc_id: i for i, doc_id in enumerate(fairds.collection.ids())}
    return [order[d] for d in doc_ids]


# -- FairDS.lookup_batch -------------------------------------------------------
def test_lookup_batch_identical_to_single_lookups():
    batches = _batches()
    singles_ds, batch_ds = _fitted_fairds(), _fitted_fairds()
    singles = [singles_ds.lookup(b) for b in batches]
    batched = batch_ds.lookup_batch(batches)
    assert len(batched) == len(singles)
    for s, r in zip(singles, batched):
        # Document ids embed a per-instance timestamp; compare store positions.
        assert _store_positions(singles_ds, s.doc_ids) == _store_positions(batch_ds, r.doc_ids)
        np.testing.assert_array_equal(s.images, r.images)
        np.testing.assert_array_equal(s.labels, r.labels)
        np.testing.assert_array_equal(s.input_distribution.pdf, r.input_distribution.pdf)
        np.testing.assert_array_equal(s.retrieved_distribution.pdf, r.retrieved_distribution.pdf)


def test_lookup_batch_advances_sampler_state_like_singles():
    """A batch of B lookups consumes exactly B sampler draws, so interleaving
    batches and singles stays reproducible across instances."""
    batches = _batches()
    a, b = _fitted_fairds(), _fitted_fairds()
    a.lookup_batch(batches[:2])
    third_after_batch = a.lookup(batches[2])
    for batch in batches[:2]:
        b.lookup(batch)
    third_after_singles = b.lookup(batches[2])
    assert _store_positions(a, third_after_batch.doc_ids) == _store_positions(
        b, third_after_singles.doc_ids
    )


def test_lookup_batch_per_dataset_n_samples():
    fairds = _fitted_fairds()
    batches = _batches()
    results = fairds.lookup_batch(batches, n_samples=[5, None, 9])
    assert [len(r) for r in results] == [5, len(batches[1]), 9]
    uniform = fairds.lookup_batch(batches, n_samples=4)
    assert [len(r) for r in uniform] == [4, 4, 4]


def test_lookup_batch_failed_validation_leaves_sampler_state_untouched():
    """A rejected batch must not advance the lookup counter, so a corrected
    retry reproduces exactly what a fresh sequence of singles would draw."""
    batches = _batches()
    a, b = _fitted_fairds(), _fitted_fairds()
    with pytest.raises(ValidationError):
        a.lookup_batch(batches, n_samples=[4, 4, 0])
    retry = a.lookup_batch(batches, n_samples=4)
    fresh = b.lookup_batch(batches, n_samples=4)
    for s, r in zip(fresh, retry):
        np.testing.assert_array_equal(s.images, r.images)


def test_index_dtype_is_configurable():
    images, labels = _data()
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=0, index_dtype=np.float64)
    fairds.fit(images, labels)
    assert fairds._index.dtype == np.float64
    default = _fitted_fairds()
    assert default._index.dtype == np.float32


def test_lookup_batch_validation():
    fairds = _fitted_fairds()
    batches = _batches()
    assert fairds.lookup_batch([]) == []
    with pytest.raises(ValidationError):
        fairds.lookup_batch(batches, labels=["only-one"])
    with pytest.raises(ValidationError):
        fairds.lookup_batch(batches, n_samples=[1, 2])
    with pytest.raises(ValidationError):
        fairds.lookup_batch(batches, n_samples=0)
    unfitted = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5)
    with pytest.raises(NotFittedError):
        unfitted.lookup_batch(batches)


# -- FairDS.certainty_batch ----------------------------------------------------
def test_certainty_batch_matches_single_certainty():
    batches = _batches()
    singles_ds, batch_ds = _fitted_fairds(), _fitted_fairds()
    singles = [singles_ds.certainty(b) for b in batches]
    batched = batch_ds.certainty_batch(batches)
    np.testing.assert_allclose(batched, singles, rtol=1e-9)
    assert batch_ds.certainty_batch([]) == []
    unfitted = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5)
    with pytest.raises(NotFittedError):
        unfitted.certainty_batch(batches)


# -- embedding LRU cache -------------------------------------------------------
class _CountingEmbedder(PCAEmbedder):
    name = "counting-pca"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.samples_transformed = 0

    def transform(self, x):
        self.samples_transformed += np.atleast_2d(np.asarray(x)).shape[0]
        return super().transform(x)


def test_embedding_cache_skips_repeated_samples():
    images, labels = _data()
    embedder = _CountingEmbedder(embedding_dim=6)
    fairds = FairDS(embedder, n_clusters=5, seed=0)
    fairds.fit(images, labels)
    probe = _batches(n_batches=1)[0]

    first = fairds.dataset_distribution(probe)
    seen = embedder.samples_transformed
    second = fairds.dataset_distribution(probe)
    assert embedder.samples_transformed == seen  # all cache hits, embedder idle
    np.testing.assert_array_equal(first.pdf, second.pdf)
    info = fairds.embedding_cache_info()
    assert info["hits"] >= probe.shape[0]

    # Partial overlap: only the unseen rows go through the embedder.
    mixed = np.concatenate([probe[:9], _batches(seed=11, n_batches=1)[0][:4]])
    fairds.dataset_distribution(mixed)
    assert embedder.samples_transformed == seen + 4


def test_embedding_cache_cleared_on_refit():
    images, labels = _data()
    embedder = _CountingEmbedder(embedding_dim=6)
    fairds = FairDS(embedder, n_clusters=5, seed=0)
    fairds.fit(images, labels)
    probe = _batches(n_batches=1)[0]
    fairds.dataset_distribution(probe)
    fairds.refresh()  # retrains the embedder -> cached embeddings are stale
    seen = embedder.samples_transformed
    fairds.dataset_distribution(probe)
    assert embedder.samples_transformed == seen + probe.shape[0]


def test_embedding_cache_handles_flat_single_sample():
    """A 1-d input is one flattened sample (Embedder.flatten semantics), not a
    batch of scalars — the cached path must agree with the uncached one."""
    images, labels = _data()
    cached_ds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=0)
    uncached_ds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=0, embedding_cache_size=0)
    cached_ds.fit(images, labels)
    uncached_ds.fit(images, labels)
    flat_sample = images[0].reshape(-1)
    with_cache = cached_ds.dataset_distribution(flat_sample)
    without_cache = uncached_ds.dataset_distribution(flat_sample)
    assert with_cache.n_samples == 1
    np.testing.assert_array_equal(with_cache.pdf, without_cache.pdf)
    # Second call is a pure cache hit and still agrees.
    np.testing.assert_array_equal(cached_ds.dataset_distribution(flat_sample).pdf, with_cache.pdf)


def test_embedding_cache_generation_fences_stale_entries():
    """An embedding computed against an old representation (e.g. put by a
    thread racing a refresh) must never be served after a refit."""
    from repro.utils.cache import row_digests

    images, labels = _data()
    embedder = _CountingEmbedder(embedding_dim=6)
    fairds = FairDS(embedder, n_clusters=5, seed=0)
    fairds.fit(images, labels)
    probe = _batches(n_batches=1)[0]
    stale_generation = fairds._embed_generation
    fairds.refresh()
    # Simulate the racing thread: stale-generation entries land after the clear.
    for digest in row_digests(np.asarray(probe, dtype=np.float64)):
        fairds._embed_cache.put((stale_generation, digest), np.zeros(6))
    seen = embedder.samples_transformed
    embeddings = fairds._embed(probe)
    assert embedder.samples_transformed == seen + probe.shape[0]  # all misses
    assert not np.allclose(embeddings, 0.0)  # the poisoned entries were never read


def test_embedding_cache_can_be_disabled():
    images, labels = _data()
    embedder = _CountingEmbedder(embedding_dim=6)
    fairds = FairDS(embedder, n_clusters=5, seed=0, embedding_cache_size=0)
    fairds.fit(images, labels)
    probe = _batches(n_batches=1)[0]
    fairds.dataset_distribution(probe)
    seen = embedder.samples_transformed
    fairds.dataset_distribution(probe)
    assert embedder.samples_transformed == seen + probe.shape[0]


# -- FairDMS / FairDMSService --------------------------------------------------
def _service_stack(seed=0):
    images, labels = _data()
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=5, seed=seed)
    dms = FairDMS(
        fairds,
        model_builder=lambda: build_braggnn(width=2, seed=seed),
        training_config=TrainingConfig(epochs=2, batch_size=16, lr=3e-3, seed=seed),
        policy=UpdatePolicy(distance_threshold=0.7, certainty_threshold=1.0),
        seed=seed,
    )
    dms.bootstrap(images, labels, train_initial_model=False)
    return dms


def test_fairdms_pseudo_label_batch_matches_single_lookups():
    batches = _batches()
    dms_batch, dms_single = _service_stack(), _service_stack()
    batched = dms_batch.pseudo_label_batch(batches, label="storm")
    singles = [dms_single.fairds.lookup(b, label="storm") for b in batches]
    for s, r in zip(singles, batched):
        np.testing.assert_array_equal(s.images, r.images)
        np.testing.assert_array_equal(s.labels, r.labels)
        assert r.input_distribution.label == s.input_distribution.label == "storm"


def test_service_batched_plane_functions_registered_and_identical():
    batches = _batches()
    with FairDMSService(_service_stack()) as batch_service, FairDMSService(
        _service_stack()
    ) as single_service:
        names = batch_service.registered_functions()
        assert {"lookup_labeled_data_batch", "query_distribution_batch", "certainty_batch"} <= set(names)

        batched = batch_service.lookup_labeled_data_batch(batches, n_samples=10)
        singles = [single_service.lookup_labeled_data(b, n_samples=10) for b in batches]
        assert len(batched) == len(singles)
        for s, r in zip(singles, batched):
            np.testing.assert_array_equal(s["images"], r["images"])
            np.testing.assert_array_equal(s["labels"], r["labels"])
            assert s["distribution"]["pdf"] == r["distribution"]["pdf"]

        dists = batch_service.query_distribution_batch(batches, label="probe")
        assert [d["pdf"] for d in dists] == [
            single_service.query_distribution(b)["pdf"] for b in batches
        ]
        certs = batch_service.certainty_batch(batches)
        np.testing.assert_allclose(
            certs, [single_service.dms.fairds.certainty(b) for b in batches], rtol=1e-9
        )

        summary = batch_service.activity_summary()
        assert summary["user:lookup_labeled_data_batch"] == 1
        assert summary["user:query_distribution_batch"] == 1
        assert summary["system:certainty_batch"] == 1


def test_trigger_observe_many_matches_sequential_observes():
    from repro.monitoring.triggers import CertaintyTrigger

    values = [95.0, 70.0, 60.0, 85.0, 50.0, 40.0]
    batched_trigger = CertaintyTrigger(80.0, cooldown=1)
    sequential_trigger = CertaintyTrigger(80.0, cooldown=1)
    batched = batched_trigger.observe_many(values)
    sequential = [sequential_trigger.observe(v) for v in values]
    assert batched == sequential
    assert batched_trigger.fired_at == sequential_trigger.fired_at
    assert batched_trigger.history == values
