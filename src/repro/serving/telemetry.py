"""Live telemetry of the serving runtime.

Records, thread-safely and with bounded memory, the three signals that
matter when tuning the micro-batching policy:

* **queue depth** — sampled at every admission; rising depth means the
  handlers cannot keep up and ``max_queue_depth`` rejections are near;
* **batch-size distribution** — whether the scheduler actually coalesces
  (all-ones means ``max_wait_ms`` is too small or traffic too light);
* **latency / throughput** — per-request admission-to-completion latency
  (p50/p95/p99 over a sliding reservoir) and completed requests per second.

:meth:`ServingTelemetry.snapshot` returns a plain dict so the numbers can be
printed, asserted on in benchmarks, or serialised to ``BENCH_*.json``.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Any, Deque, Dict, Optional, Sequence

from repro.utils.stats import latency_summary


class ServingTelemetry:
    """Thread-safe counters and reservoirs for one serving runtime.

    Parameters
    ----------
    latency_reservoir:
        How many of the most recent per-request latencies are kept for the
        percentile summary; older samples fall out of the sliding window so
        memory stays bounded under sustained traffic.
    """

    def __init__(self, latency_reservoir: int = 8192):
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=int(latency_reservoir))
        self._batch_sizes: Counter = Counter()
        self._batch_wait_sum = 0.0
        self._batch_wait_max = 0.0
        self._depth_sum = 0
        self._depth_count = 0
        self._depth_max = 0
        self._depth_last = 0
        self._accepted: Counter = Counter()
        self._completed: Counter = Counter()
        self._failed: Counter = Counter()
        self._rejected: Counter = Counter()
        self._knob_values: Dict[str, Any] = {}
        self._knob_changes: Counter = Counter()
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------------
    def mark_started(self) -> None:
        with self._lock:
            self._started_at = time.monotonic()
            self._stopped_at = None

    def mark_stopped(self) -> None:
        with self._lock:
            self._stopped_at = time.monotonic()

    # -- recording ---------------------------------------------------------------
    def record_admission(self, op: str, depth: int) -> None:
        """An accepted request, with its operation queue's depth after admit."""
        with self._lock:
            self._accepted[op] += 1
            self._depth_sum += depth
            self._depth_count += 1
            self._depth_last = depth
            if depth > self._depth_max:
                self._depth_max = depth

    def record_rejection(self, op: str) -> None:
        with self._lock:
            self._rejected[op] += 1

    def record_batch(self, op: str, size: int, wait_s: float) -> None:
        """A flushed batch: its size and how long its oldest request queued."""
        with self._lock:
            self._batch_sizes[size] += 1
            self._batch_wait_sum += wait_s
            if wait_s > self._batch_wait_max:
                self._batch_wait_max = wait_s

    def record_completion(self, op: str, latency_s: float, failed: bool = False) -> None:
        """One request resolved, ``latency_s`` after its admission."""
        self.record_completions(op, (latency_s,), failed=failed)

    def record_completions(
        self, op: str, latencies_s: Sequence[float], failed: bool = False
    ) -> None:
        """A whole batch resolved — one lock acquisition for all its requests.

        ``failed=True`` marks requests whose handler raised (their futures
        carry the exception); they still count as completed for throughput
        and quiescence, but surface separately so a broken handler cannot
        masquerade as a healthy service.
        """
        with self._lock:
            self._completed[op] += len(latencies_s)
            if failed:
                self._failed[op] += len(latencies_s)
            self._latencies.extend(latencies_s)

    def record_knob(self, name: str, value: Any, changed: bool = False) -> None:
        """The current value of a live serving knob (e.g. ``n_probe``).

        ``changed=True`` marks an actual live retune (vs the initial value
        recorded at knob registration), so the snapshot can report how often
        each knob moved — the signal autoscaling experiments chart against
        latency.
        """
        with self._lock:
            self._knob_values[name] = value
            if changed:
                self._knob_changes[name] += 1

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time view of the runtime's health as a plain dict."""
        with self._lock:
            now = self._stopped_at if self._stopped_at is not None else time.monotonic()
            uptime = (now - self._started_at) if self._started_at is not None else 0.0
            accepted = sum(self._accepted.values())
            completed = sum(self._completed.values())
            rejected = sum(self._rejected.values())
            failed = sum(self._failed.values())
            n_batches = sum(self._batch_sizes.values())
            batched_requests = sum(size * count for size, count in self._batch_sizes.items())
            ops = sorted(
                set(self._accepted) | set(self._completed)
                | set(self._rejected) | set(self._failed)
            )
            return {
                "uptime_s": uptime,
                "accepted": accepted,
                "completed": completed,
                "rejected": rejected,
                "failed": failed,
                "in_flight": accepted - completed,
                "throughput_rps": completed / uptime if uptime > 0 else 0.0,
                "latency_ms": latency_summary(self._latencies),
                "batch_size": {
                    "batches": n_batches,
                    "mean": batched_requests / n_batches if n_batches else 0.0,
                    "max": max(self._batch_sizes) if self._batch_sizes else 0,
                    "histogram": {size: self._batch_sizes[size] for size in sorted(self._batch_sizes)},
                    "mean_wait_ms": (self._batch_wait_sum / n_batches * 1e3) if n_batches else 0.0,
                    "max_wait_ms": self._batch_wait_max * 1e3,
                },
                "queue_depth": {
                    "mean": self._depth_sum / self._depth_count if self._depth_count else 0.0,
                    "max": self._depth_max,
                    "last": self._depth_last,
                },
                "knobs": {
                    name: {"value": self._knob_values[name],
                           "changes": self._knob_changes[name]}
                    for name in sorted(self._knob_values)
                },
                "per_op": {
                    op: {
                        "accepted": self._accepted[op],
                        "completed": self._completed[op],
                        "failed": self._failed[op],
                        "rejected": self._rejected[op],
                    }
                    for op in ops
                },
            }

    def format_snapshot(self) -> str:
        """The snapshot rendered as a short human-readable block."""
        snap = self.snapshot()
        lat, batch, depth = snap["latency_ms"], snap["batch_size"], snap["queue_depth"]
        lines = [
            f"serving telemetry ({snap['uptime_s']:.2f}s up)",
            f"  requests   accepted={snap['accepted']} completed={snap['completed']} "
            f"rejected={snap['rejected']} failed={snap['failed']} "
            f"in_flight={snap['in_flight']}",
            f"  throughput {snap['throughput_rps']:.1f} req/s",
            f"  latency    p50={lat['p50_ms']:.2f}ms p95={lat['p95_ms']:.2f}ms "
            f"p99={lat['p99_ms']:.2f}ms max={lat['max_ms']:.2f}ms",
            f"  batches    n={batch['batches']} mean_size={batch['mean']:.1f} "
            f"max_size={batch['max']} mean_wait={batch['mean_wait_ms']:.2f}ms",
            f"  queue      mean_depth={depth['mean']:.1f} max_depth={depth['max']}",
        ]
        for op, counts in snap["per_op"].items():
            lines.append(
                f"  op {op:28s} accepted={counts['accepted']} "
                f"completed={counts['completed']} failed={counts['failed']} "
                f"rejected={counts['rejected']}"
            )
        return "\n".join(lines)
