"""The :class:`Sequential` network container."""

from __future__ import annotations

import io
import pickle
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.dtype import DtypeLike, get_default_dtype
from repro.nn.layers import BatchNorm1d, Dropout, Layer
from repro.nn.parameter import Parameter


class Sequential:
    """An ordered stack of layers executed front to back.

    Supports the checkpoint/fine-tune operations fairMS depends on:

    * ``state_dict()`` / ``load_state_dict()`` for moving weights between
      model instances of the same architecture (the Zoo stores state dicts,
      not live objects),
    * ``to_bytes()`` / ``from_bytes()`` for persisting a model inside the
      document store,
    * ``freeze_layers(n)`` for freezing the first ``n`` parameterised layers
      when fine-tuning on a small new dataset,
    * ``clone()`` for deep-copying architecture + weights.
    """

    def __init__(self, layers: Sequence[Layer], name: str = "model"):
        self.layers: List[Layer] = list(layers)
        self.name = name
        self._ensure_unique_parameter_names()

    def _ensure_unique_parameter_names(self) -> None:
        seen: Dict[str, int] = {}
        for layer in self.layers:
            for p in layer.parameters():
                if p.name in seen:
                    seen[p.name] += 1
                    p.name = f"{p.name}_{seen[p.name]}"
                else:
                    seen[p.name] = 0

    # -- dtype ---------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        """The model's compute dtype (that of its first layer)."""
        for layer in self.layers:
            return layer.dtype
        return get_default_dtype()

    def to_dtype(self, dtype: DtypeLike) -> "Sequential":
        """Switch every layer (parameters included) to a new compute dtype."""
        for layer in self.layers:
            layer.to_dtype(dtype)
        return self

    # -- forward / backward -------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def predict(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Inference helper that optionally batches large inputs.

        Inputs are cast to the model's compute dtype lazily, one batch slice
        at a time inside the first layer — never as a full-array copy here.
        """
        x = np.asarray(x)
        if batch_size is None or x.shape[0] <= batch_size:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[i : i + batch_size], training=False)
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def backward(self, grad_output: np.ndarray, need_input_grad: bool = True) -> np.ndarray:
        """Backpropagate through the stack.

        ``need_input_grad=False`` lets the first layer skip materialising the
        gradient with respect to the network input (which a training loop
        discards); only pass it when nothing upstream consumes that gradient.
        """
        grad = grad_output
        for i in range(len(self.layers) - 1, -1, -1):
            if i == 0 and not need_input_grad:
                self.layers[0].backward_params_only(grad)
                return grad
            grad = self.layers[i].backward(grad)
        return grad

    # -- parameters ----------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # -- freezing for fine-tuning ---------------------------------------------
    def parameterised_layers(self) -> List[Layer]:
        return [l for l in self.layers if l.parameters()]

    def freeze_layers(self, n_layers: int) -> int:
        """Freeze the first ``n_layers`` parameterised layers; returns how many were frozen."""
        frozen = 0
        for layer in self.parameterised_layers():
            if frozen >= n_layers:
                break
            layer.freeze()
            frozen += 1
        return frozen

    def unfreeze_all(self) -> None:
        for layer in self.layers:
            layer.unfreeze()

    def trainable_parameters(self) -> List[Parameter]:
        return [p for p in self.parameters() if p.trainable]

    # -- dropout control (MC dropout) ----------------------------------------
    def has_dropout(self) -> bool:
        return any(isinstance(l, Dropout) for l in self.layers)

    def has_batchnorm(self) -> bool:
        """True when any layer computes cross-batch statistics in training mode.

        Used by the batched MC-dropout path, which folds the sample dimension
        into the batch and therefore must not change batch statistics.
        """
        return any(isinstance(l, BatchNorm1d) for l in self.layers)

    # -- serialisation ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for layer in self.layers:
            state.update(layer.state_dict())
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for layer in self.layers:
            if layer.parameters() or layer.state_dict():
                layer.load_state_dict(state)

    def to_bytes(self) -> bytes:
        """Serialise architecture + weights (pickle of layers and state dict)."""
        payload = {
            "name": self.name,
            "layers": self.layers,
            "state": self.state_dict(),
        }
        buf = io.BytesIO()
        pickle.dump(payload, buf, protocol=pickle.HIGHEST_PROTOCOL)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Sequential":
        payload = pickle.loads(blob)
        model = cls(payload["layers"], name=payload.get("name", "model"))
        model.load_state_dict(payload["state"])
        return model

    def clone(self) -> "Sequential":
        """Deep copy of architecture and weights (gradients are reset)."""
        return Sequential.from_bytes(self.to_bytes())

    def summary(self) -> str:
        lines = [f"Sequential(name={self.name!r})"]
        for i, layer in enumerate(self.layers):
            n = layer.num_parameters()
            lines.append(f"  [{i:2d}] {type(layer).__name__:<14s} params={n}")
        lines.append(f"  total parameters: {self.num_parameters()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Sequential(name={self.name!r}, layers={len(self.layers)}, params={self.num_parameters()})"
