"""The declarative config plane: typed, validated, serialisable system specs.

A :class:`SystemSpec` names every component of the paper's system by its
:mod:`repro.api.registry` key — embedder, clustering algorithm, storage
backend, lookup index, application model, serving policy, continual-learning
loop — so that a full deployment is a *dict*, not a wiring script:

    >>> spec = SystemSpec(
    ...     embedder=EmbedderSpec("pca", {"embedding_dim": 6}),
    ...     clustering=ClusteringSpec("kmeans", n_clusters=6),
    ...     model=ModelSpec("braggnn", {"width": 4}, training={"epochs": 6}),
    ... )
    >>> SystemSpec.from_dict(spec.to_dict()) == spec
    True

Every spec dataclass is frozen and validates **eagerly at construction**:
unknown registry names, out-of-range parameters, and cross-field constraints
all fail at spec time with a :class:`~repro.utils.errors.ConfigurationError`
— never halfway through materialising a deployment.  Specs round-trip
losslessly through ``to_dict``/``from_dict`` and JSON (:meth:`SystemSpec.save`
/ :meth:`SystemSpec.load`), carry a canonical content :meth:`~SystemSpec.digest`
(invariant under key reordering, so byte-different JSON files describing the
same system collide on purpose), can be diffed field-by-field
(:meth:`SystemSpec.diff`), and persist into a
:class:`~repro.storage.documentdb.DocumentDB` keyed by digest
(:meth:`SystemSpec.persist` / :meth:`SystemSpec.from_db`).

Named presets (:func:`preset`) describe the canonical configurations —
``"minimal"`` (data plane only), ``"serving"`` (adds a model and the
micro-batching runtime), ``"continual"`` (adds the drift-triggered retraining
loop), ``"ann"`` (the data plane with the IVF approximate index and a live
``n_probe`` serving knob), ``"parallel"`` (the continual loop on the
process compute plane), ``"sharded"`` (the data plane over the multi-tenant
sharded store with fair round-robin serving), ``"networked"`` (the serving
system behind the TCP network plane with replicas and autoscaling) — and are
shipped verbatim as ``examples/specs/*.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.registry import (
    available_components,
    component_factory,
    create_component,
    filter_supported_kwargs,
    is_registered,
)
from repro.utils.errors import ConfigurationError

__all__ = [
    "EmbedderSpec",
    "ClusteringSpec",
    "StorageSpec",
    "IndexSpec",
    "ShardingSpec",
    "ModelSpec",
    "ServingSpec",
    "ContinualSpec",
    "ObservabilitySpec",
    "ExecutorSpec",
    "NetworkSpec",
    "SystemSpec",
    "preset",
    "preset_names",
]

#: DocumentDB collection used by :meth:`SystemSpec.persist`.
SPEC_COLLECTION = "system_specs"


# -- validation helpers ------------------------------------------------------------
def _check_jsonable(label: str, value: Any) -> Any:
    """Deep-normalise ``value`` into plain JSON types, or raise."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_jsonable(label, v) for v in value]
    if isinstance(value, Mapping):
        out = {}
        for key, v in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(f"{label}: mapping keys must be strings, got {key!r}")
            out[key] = _check_jsonable(label, v)
        return out
    raise ConfigurationError(
        f"{label}: value {value!r} of type {type(value).__name__} is not JSON-serialisable"
    )


def _frozen_params(spec: Any, attr: str = "params") -> None:
    """Normalise a frozen dataclass's mapping field in place (post-init)."""
    label = f"{type(spec).__name__}.{attr}"
    value = getattr(spec, attr)
    if not isinstance(value, Mapping):
        raise ConfigurationError(f"{label} must be a mapping, got {type(value).__name__}")
    object.__setattr__(spec, attr, _check_jsonable(label, value))


def _check_positive_number(owner: str, name: str, value: Any, optional: bool = False) -> None:
    """Type-then-range check, so a string in a JSON spec raises
    :class:`ConfigurationError` rather than a bare ``TypeError``."""
    if value is None and optional:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{owner}.{name} must be a number, got {type(value).__name__}"
        )
    if value <= 0:
        raise ConfigurationError(f"{owner}.{name} must be positive")


def _check_registered(kind: str, name: str, owner: str) -> None:
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"{owner} requires a non-empty {kind} name")
    if not is_registered(kind, name):
        raise ConfigurationError(
            f"{owner}: unknown {kind} {name!r}; available: {available_components(kind)}"
        )


def _trial_construct(owner: str, build, *args, **kwargs) -> Any:
    """Eagerly construct a component to surface bad parameters at spec time."""
    try:
        return build(*args, **kwargs)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{owner}: {exc}") from exc
    except TypeError as exc:
        raise ConfigurationError(f"{owner}: invalid parameters ({exc})") from exc


def _from_dict(cls, data: Mapping[str, Any], nested: Optional[Mapping[str, Any]] = None):
    """Build dataclass ``cls`` from a plain dict, rejecting unknown keys.

    ``None`` is rejected like any other non-mapping: optional *nested*
    sections are handled by the caller (a ``None`` section is simply never
    passed through its converter), so a top-level JSON ``null`` cannot
    silently produce a ``None`` spec.
    """
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{cls.__name__} config must be a mapping, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(f"unknown {cls.__name__} field(s): {unknown}; known: {sorted(known)}")
    kwargs = dict(data)
    for key, converter in (nested or {}).items():
        if kwargs.get(key) is not None:
            kwargs[key] = converter(kwargs[key])
    return cls(**kwargs)


# -- component specs ---------------------------------------------------------------
@dataclass(frozen=True)
class EmbedderSpec:
    """Which :mod:`repro.embedding` embedder to use, by registry name."""

    name: str = "pca"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _frozen_params(self)
        _check_registered("embedder", self.name, "EmbedderSpec")
        _trial_construct("EmbedderSpec", create_component, "embedder", self.name, **self.params)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EmbedderSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class ClusteringSpec:
    """Clustering algorithm and cluster-count policy of the fairDS index."""

    algorithm: str = "kmeans"
    #: Integer ``K``, or ``"auto"`` for elbow-method selection.
    n_clusters: Union[int, str] = "auto"
    max_auto_clusters: int = 15
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _frozen_params(self)
        _check_registered("clustering", self.algorithm, "ClusteringSpec")
        if isinstance(self.n_clusters, str):
            if self.n_clusters != "auto":
                raise ConfigurationError(
                    "ClusteringSpec.n_clusters must be an integer >= 1 or 'auto'"
                )
        elif not isinstance(self.n_clusters, int) or isinstance(self.n_clusters, bool) \
                or self.n_clusters < 1:
            raise ConfigurationError("ClusteringSpec.n_clusters must be an integer >= 1 or 'auto'")
        if not isinstance(self.max_auto_clusters, int) or isinstance(self.max_auto_clusters, bool) \
                or self.max_auto_clusters < 2:
            raise ConfigurationError("ClusteringSpec.max_auto_clusters must be an integer >= 2")
        if "n_clusters" in self.params:
            raise ConfigurationError(
                "ClusteringSpec.params must not contain 'n_clusters'; "
                "use the n_clusters field"
            )
        trial_k = 2 if self.n_clusters == "auto" else self.n_clusters
        _trial_construct(
            "ClusteringSpec", create_component, "clustering", self.algorithm,
            n_clusters=trial_k, **self.params,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusteringSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class StorageSpec:
    """Document store backing the historical samples, Zoo, and checkpoints."""

    backend: str = "documentdb"
    collection: str = "fairds_samples"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _frozen_params(self)
        _check_registered("storage", self.backend, "StorageSpec")
        if not isinstance(self.collection, str) or not self.collection:
            raise ConfigurationError("StorageSpec.collection must be a non-empty string")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StorageSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class IndexSpec:
    """Nearest-neighbour lookup index over the embedding space."""

    backend: str = "clustered"
    #: Storage dtype of the index (``"float32"`` or ``"float64"``); see
    #: :class:`repro.core.fairds.FairDS` for the precision trade-off.
    dtype: str = "float32"
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Partitions probed per query for probing backends (``"clustered"``,
    #: ``"ivf"``); ``None`` keeps the backend's default.  On an ``"ivf"``
    #: deployment this is also the serving runtime's live ``n_probe`` knob's
    #: initial value.
    n_probe: Optional[int] = None

    def __post_init__(self) -> None:
        _frozen_params(self)
        _check_registered("index", self.backend, "IndexSpec")
        if self.dtype not in ("float32", "float64"):
            raise ConfigurationError("IndexSpec.dtype must be 'float32' or 'float64'")
        if self.n_probe is not None:
            if not isinstance(self.n_probe, int) or isinstance(self.n_probe, bool) \
                    or self.n_probe < 1:
                raise ConfigurationError("IndexSpec.n_probe must be an integer >= 1")
            if "n_probe" in self.params:
                raise ConfigurationError(
                    "IndexSpec.params must not contain 'n_probe' when the "
                    "n_probe field is set"
                )
            factory = component_factory("index", self.backend)
            if not filter_supported_kwargs(factory, {"n_probe": self.n_probe}):
                raise ConfigurationError(
                    f"IndexSpec: index backend {self.backend!r} does not accept "
                    "n_probe; use a probing backend ('clustered', 'ivf') or "
                    "drop the field"
                )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IndexSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class ShardingSpec:
    """Topology and tenancy of the ``"sharded"`` index backend.

    Declares *how many* shard backends each tenant gets, how writes are
    replicated across them, which registered index backend every shard runs,
    and the per-tenant unique-key quotas — the Pulumi-style "cluster as
    validated config" shape, so scaling out is a spec edit, not a wiring
    script.  Only meaningful together with ``IndexSpec(backend="sharded")``;
    :class:`SystemSpec` enforces that pairing.
    """

    shards: int = 4
    replication: int = 1
    shard_backend: str = "flat"
    shard_params: Mapping[str, Any] = field(default_factory=dict)
    #: Default cap on unique keys per tenant (``None`` = unlimited).
    default_quota: Optional[int] = None
    #: Per-tenant overrides of ``default_quota``.
    tenant_quotas: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _frozen_params(self, "shard_params")
        _frozen_params(self, "tenant_quotas")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) or self.shards < 1:
            raise ConfigurationError("ShardingSpec.shards must be an integer >= 1")
        if not isinstance(self.replication, int) or isinstance(self.replication, bool) \
                or not 1 <= self.replication <= self.shards:
            raise ConfigurationError(
                f"ShardingSpec.replication must be an integer in [1, shards={self.shards}]"
            )
        _check_registered("index", self.shard_backend, "ShardingSpec")
        if self.shard_backend == "sharded":
            raise ConfigurationError("ShardingSpec.shard_backend cannot itself be 'sharded'")
        if self.default_quota is not None and (
            not isinstance(self.default_quota, int)
            or isinstance(self.default_quota, bool)
            or self.default_quota < 1
        ):
            raise ConfigurationError("ShardingSpec.default_quota must be an integer >= 1 or null")
        for tenant, quota in self.tenant_quotas.items():
            if not isinstance(quota, int) or isinstance(quota, bool) or quota < 1:
                raise ConfigurationError(
                    f"ShardingSpec.tenant_quotas[{tenant!r}] must be an integer >= 1"
                )
        from repro.storage.sharded import ShardedVectorStore

        # Eager trial construction builds the shard-backend template, so bad
        # shard_params fail at spec time like every other section.
        _trial_construct(
            "ShardingSpec", ShardedVectorStore, dim=4,
            n_shards=self.shards, replication=self.replication,
            shard_backend=self.shard_backend, shard_params=self.shard_params,
            tenant_quota=self.default_quota, tenant_quotas=self.tenant_quotas,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardingSpec":
        return _from_dict(cls, data)

    def store_params(self) -> Dict[str, Any]:
        """The :class:`ShardedVectorStore` constructor kwargs this spec names
        (merged under ``IndexSpec.params`` by the deployment wiring)."""
        return {
            "n_shards": self.shards,
            "replication": self.replication,
            "shard_backend": self.shard_backend,
            "shard_params": dict(self.shard_params),
            "tenant_quota": self.default_quota,
            "tenant_quotas": dict(self.tenant_quotas),
        }


@dataclass(frozen=True)
class ModelSpec:
    """Application model architecture plus its training hyper-parameters."""

    architecture: str = "braggnn"
    params: Mapping[str, Any] = field(default_factory=dict)
    #: :class:`repro.nn.trainer.TrainingConfig` keyword arguments.
    training: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _frozen_params(self)
        _frozen_params(self, "training")
        _check_registered("model", self.architecture, "ModelSpec")
        _trial_construct("ModelSpec", create_component, "model", self.architecture, **self.params)
        from repro.nn.trainer import TrainingConfig

        _trial_construct("ModelSpec.training", TrainingConfig, **self.training)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class ServingSpec:
    """Micro-batching serving runtime configuration."""

    #: :class:`repro.serving.batcher.BatchingPolicy` keyword arguments.
    batching: Mapping[str, Any] = field(default_factory=dict)
    num_workers: int = 2

    def __post_init__(self) -> None:
        _frozen_params(self, "batching")
        if not isinstance(self.num_workers, int) or isinstance(self.num_workers, bool) \
                or self.num_workers < 1:
            raise ConfigurationError("ServingSpec.num_workers must be an integer >= 1")
        from repro.serving.batcher import BatchingPolicy

        _trial_construct("ServingSpec.batching", BatchingPolicy, **self.batching)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServingSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class ContinualSpec:
    """The drift-triggered continual-learning loop (monitor → … → hot-swap)."""

    trigger: str = "certainty"
    trigger_params: Mapping[str, Any] = field(default_factory=dict)
    tag: str = "latest"
    gate_factor: float = 2.0
    absolute_gate: Optional[float] = None
    refresh_on_trigger: bool = True
    #: Persist per-step checkpoints (crash-resume) in the system storage backend.
    checkpoint: bool = True
    step_retries: int = 0
    step_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        _frozen_params(self, "trigger_params")
        _check_registered("trigger", self.trigger, "ContinualSpec")
        _trial_construct(
            "ContinualSpec", create_component, "trigger", self.trigger, **self.trigger_params
        )
        if not isinstance(self.tag, str) or not self.tag:
            raise ConfigurationError("ContinualSpec.tag must be a non-empty string")
        _check_positive_number("ContinualSpec", "gate_factor", self.gate_factor)
        _check_positive_number("ContinualSpec", "absolute_gate", self.absolute_gate, optional=True)
        if not isinstance(self.step_retries, int) or isinstance(self.step_retries, bool) \
                or self.step_retries < 0:
            raise ConfigurationError("ContinualSpec.step_retries must be a non-negative integer")
        _check_positive_number("ContinualSpec", "step_timeout_s", self.step_timeout_s, optional=True)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ContinualSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class ObservabilitySpec:
    """Metrics/tracing plane of a deployment (see :mod:`repro.observability`).

    ``enabled=False`` keeps the deployment completely uninstrumented beyond
    the always-on telemetry snapshots — no tracer is wired, so the serving
    hot path takes its zero-overhead branch.
    """

    enabled: bool = True
    #: Fraction of request/pipeline roots that get a full trace, in [0, 1].
    sample_rate: float = 0.1
    #: Ring-buffer bound on finished spans kept in memory.
    trace_buffer: int = 4096
    #: Export surfaces the ``repro observe`` CLI and CI smoke use; the
    #: deployment itself always exposes ``metrics_text()``/``trace_spans()``.
    exporters: Tuple[str, ...] = ("prometheus", "jsonl")

    _KNOWN_EXPORTERS = ("prometheus", "jsonl")

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigurationError("ObservabilitySpec.enabled must be a boolean")
        if isinstance(self.sample_rate, bool) \
                or not isinstance(self.sample_rate, (int, float)) \
                or not 0.0 <= float(self.sample_rate) <= 1.0:
            raise ConfigurationError("ObservabilitySpec.sample_rate must be a number in [0, 1]")
        if not isinstance(self.trace_buffer, int) or isinstance(self.trace_buffer, bool) \
                or self.trace_buffer < 1:
            raise ConfigurationError("ObservabilitySpec.trace_buffer must be an integer >= 1")
        if isinstance(self.exporters, str) or not isinstance(self.exporters, (list, tuple)):
            raise ConfigurationError("ObservabilitySpec.exporters must be a list of names")
        unknown = sorted(set(self.exporters) - set(self._KNOWN_EXPORTERS))
        if unknown:
            raise ConfigurationError(
                f"ObservabilitySpec.exporters: unknown exporter(s) {unknown}; "
                f"available: {list(self._KNOWN_EXPORTERS)}"
            )
        if len(set(self.exporters)) != len(tuple(self.exporters)):
            raise ConfigurationError("ObservabilitySpec.exporters must not repeat names")
        object.__setattr__(self, "exporters", tuple(self.exporters))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "sample_rate": float(self.sample_rate),
            "trace_buffer": self.trace_buffer,
            "exporters": list(self.exporters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObservabilitySpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class ExecutorSpec:
    """Compute-plane backend for data-parallel training, MC-dropout probes,
    and peak fitting (see :mod:`repro.compute`).

    ``kind`` is a registry name — ``"inline"`` (serial, the behaviour of a
    spec without an executor section), ``"thread"``, or ``"process"`` (the
    GIL-escaping backend with shared-memory array handoff).  Construction is
    lazy: validating a spec never spawns worker processes.
    """

    kind: str = "inline"
    workers: int = 1
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _frozen_params(self)
        _check_registered("executor", self.kind, "ExecutorSpec")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) \
                or self.workers < 1:
            raise ConfigurationError("ExecutorSpec.workers must be an integer >= 1")
        if "max_workers" in self.params:
            raise ConfigurationError(
                "ExecutorSpec.params must not contain 'max_workers'; use the workers field"
            )
        trial = _trial_construct(
            "ExecutorSpec", create_component, "executor", self.kind,
            max_workers=self.workers, **self.params,
        )
        # Executors start lazily, so the trial spawned nothing — but close it
        # anyway in case a custom registered backend allocates eagerly.
        close = getattr(trial, "close", None)
        if callable(close):
            close()

    def build(self):
        """Construct the configured executor (workers spawn on first use)."""
        return create_component(
            "executor", self.kind, max_workers=self.workers, **self.params
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutorSpec":
        return _from_dict(cls, data)


@dataclass(frozen=True)
class NetworkSpec:
    """The network serving plane (see :mod:`repro.net`): TCP endpoint,
    replica fleet, and optional autoscaling.

    ``port=0`` binds an ephemeral port (read it back from
    ``Deployment.serve_network().address``).  ``autoscale`` holds
    :class:`repro.net.autoscaler.AutoscalePolicy` keyword arguments —
    ``None`` serves a fixed fleet of ``replicas``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    replicas: int = 2
    #: Bound on one protocol frame body, either direction (bytes).
    max_frame_bytes: int = 16 * 1024 * 1024
    #: Per-connection cap on unanswered requests.
    max_in_flight: int = 64
    #: Consecutive health-probe failures before a replica is ejected.
    eject_after: int = 3
    #: Health-probe period of the replica set (seconds).
    health_interval_s: float = 0.5
    #: :class:`~repro.net.autoscaler.AutoscalePolicy` kwargs; ``None`` = fixed fleet.
    autoscale: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError("NetworkSpec.host must be a non-empty string")
        if not isinstance(self.port, int) or isinstance(self.port, bool) \
                or not 0 <= self.port <= 65535:
            raise ConfigurationError("NetworkSpec.port must be an integer in [0, 65535]")
        for name, minimum in (("replicas", 1), ("max_frame_bytes", 1024),
                              ("max_in_flight", 1), ("eject_after", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise ConfigurationError(
                    f"NetworkSpec.{name} must be an integer >= {minimum}"
                )
        _check_positive_number("NetworkSpec", "health_interval_s", self.health_interval_s)
        if self.autoscale is not None:
            object.__setattr__(
                self, "autoscale",
                _check_jsonable("NetworkSpec.autoscale", self.autoscale),
            )
            from repro.net.autoscaler import AutoscalePolicy

            trial = _trial_construct(
                "NetworkSpec.autoscale", AutoscalePolicy.from_dict, self.autoscale
            )
            if trial.max_replicas < self.replicas:
                raise ConfigurationError(
                    "NetworkSpec.autoscale: max_replicas must be >= the initial "
                    f"replicas ({self.replicas})"
                )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkSpec":
        return _from_dict(cls, data)


# -- the composed system spec ------------------------------------------------------
@dataclass(frozen=True)
class SystemSpec:
    """One declarative description of the whole fairDMS system.

    Materialise it with :class:`repro.api.deployment.Deployment`; serialise
    with :meth:`to_dict` / :meth:`save`; identify with :meth:`digest`.

    Cross-field constraints enforced at construction:

    * a ``continual`` section requires a ``model`` section (the loop retrains
      the application model);
    * the system storage backend must be a *document* store — the built-in
      ``"file"`` backend holds flat sample payloads and cannot back the
      collections fairDS, the Zoo, and checkpoints need;
    * ``policy`` must form a valid :class:`repro.core.fairdms.UpdatePolicy`.
    """

    name: str = "fairdms"
    seed: int = 0
    embedder: EmbedderSpec = field(default_factory=EmbedderSpec)
    clustering: ClusteringSpec = field(default_factory=ClusteringSpec)
    storage: StorageSpec = field(default_factory=StorageSpec)
    index: IndexSpec = field(default_factory=IndexSpec)
    #: Shard topology and tenancy; requires ``index.backend == "sharded"``.
    sharding: Optional[ShardingSpec] = None
    model: Optional[ModelSpec] = None
    serving: Optional[ServingSpec] = None
    continual: Optional[ContinualSpec] = None
    observability: Optional[ObservabilitySpec] = None
    #: Compute-plane backend; ``None`` behaves exactly like ``kind="inline"``.
    executor: Optional[ExecutorSpec] = None
    #: Network serving plane; ``None`` keeps serving in-process only.
    network: Optional[NetworkSpec] = None
    #: :class:`repro.core.fairdms.UpdatePolicy` keyword arguments.
    policy: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("SystemSpec.name must be a non-empty string")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError("SystemSpec.seed must be an integer")
        for attr, cls in (
            ("embedder", EmbedderSpec),
            ("clustering", ClusteringSpec),
            ("storage", StorageSpec),
            ("index", IndexSpec),
        ):
            if not isinstance(getattr(self, attr), cls):
                raise ConfigurationError(f"SystemSpec.{attr} must be a {cls.__name__}")
        for attr, cls in (
            ("sharding", ShardingSpec),
            ("model", ModelSpec), ("serving", ServingSpec),
            ("continual", ContinualSpec), ("observability", ObservabilitySpec),
            ("executor", ExecutorSpec), ("network", NetworkSpec),
        ):
            value = getattr(self, attr)
            if value is not None and not isinstance(value, cls):
                raise ConfigurationError(f"SystemSpec.{attr} must be a {cls.__name__} or None")
        _frozen_params(self, "policy")
        from repro.core.fairdms import UpdatePolicy

        _trial_construct("SystemSpec.policy", UpdatePolicy, **self.policy)
        # Cross-field constraints.
        if self.continual is not None and self.model is None:
            raise ConfigurationError(
                "SystemSpec: a 'continual' section requires a 'model' section "
                "(the loop retrains the application model)"
            )
        if self.sharding is not None:
            if self.index.backend != "sharded":
                raise ConfigurationError(
                    "SystemSpec: a 'sharding' section requires "
                    "IndexSpec(backend='sharded'); got "
                    f"index.backend={self.index.backend!r}"
                )
            overlap = sorted(set(self.index.params) & set(self.sharding.store_params()))
            if overlap:
                raise ConfigurationError(
                    f"SystemSpec: index.params must not duplicate sharding fields {overlap}; "
                    "declare the topology once, in the 'sharding' section"
                )
        if self.storage.backend == "file":
            raise ConfigurationError(
                "SystemSpec.storage: the system store must be a document database "
                "(the 'file' backend holds flat sample payloads and cannot back "
                "the fairDS/Zoo/checkpoint collections); use 'documentdb'"
            )

    # -- serialisation -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain, JSON-serialisable dict capturing the whole spec."""
        return {
            "name": self.name,
            "seed": self.seed,
            "embedder": self.embedder.to_dict(),
            "clustering": self.clustering.to_dict(),
            "storage": self.storage.to_dict(),
            "index": self.index.to_dict(),
            "sharding": self.sharding.to_dict() if self.sharding is not None else None,
            "model": self.model.to_dict() if self.model is not None else None,
            "serving": self.serving.to_dict() if self.serving is not None else None,
            "continual": self.continual.to_dict() if self.continual is not None else None,
            "observability": (
                self.observability.to_dict() if self.observability is not None else None
            ),
            "executor": self.executor.to_dict() if self.executor is not None else None,
            "network": self.network.to_dict() if self.network is not None else None,
            "policy": dict(self.policy),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        """The inverse of :meth:`to_dict`; unknown keys are rejected."""
        return _from_dict(
            cls,
            data,
            nested={
                "embedder": EmbedderSpec.from_dict,
                "clustering": ClusteringSpec.from_dict,
                "storage": StorageSpec.from_dict,
                "index": IndexSpec.from_dict,
                "sharding": ShardingSpec.from_dict,
                "model": ModelSpec.from_dict,
                "serving": ServingSpec.from_dict,
                "continual": ContinualSpec.from_dict,
                "observability": ObservabilitySpec.from_dict,
                "executor": ExecutorSpec.from_dict,
                "network": NetworkSpec.from_dict,
            },
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as JSON; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SystemSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())

    # -- identity ----------------------------------------------------------------
    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON — the digest pre-image."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Content digest of the spec (sha256 of :meth:`canonical_json`).

        Invariant under JSON key order and formatting: two files describing
        the same system produce the same digest, so digests can key persisted
        specs and detect configuration drift between deployments.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def diff(self, other: "SystemSpec") -> Dict[str, Tuple[Any, Any]]:
        """Field-level difference: ``{dotted.path: (mine, theirs)}``.

        A path present on only one side (e.g. ``model.architecture`` when the
        other spec has ``model: null``) reports ``None`` for the side that
        lacks it; whole-section presence is already visible at the section's
        own path (``"model": (None, ...)``), so the two cases stay
        distinguishable.
        """

        def flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
            if prefix:
                # Every node is recorded — mapping roots too, so a section
                # present on one side only surfaces as its whole dict.
                out[prefix] = value
            if isinstance(value, Mapping):
                for key in value:
                    flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)

        mine: Dict[str, Any] = {}
        theirs: Dict[str, Any] = {}
        flatten("", self.to_dict(), mine)
        flatten("", other.to_dict(), theirs)
        missing = object()  # internal only: never escapes into the result
        return {
            path: (mine.get(path), theirs.get(path))
            for path in sorted(set(mine) | set(theirs))
            if mine.get(path, missing) != theirs.get(path, missing)
        }

    # -- persistence in DocumentDB -----------------------------------------------
    def persist(self, db, collection: str = SPEC_COLLECTION) -> str:
        """Store the spec in ``db`` keyed by its digest; returns the digest.

        Idempotent: persisting the same content twice (even from a key-reordered
        source) upserts one document.
        """
        digest = self.digest()
        db.collection(collection).upsert_one(
            {"digest": digest},
            {"name": self.name, "spec": self.to_dict()},
        )
        return digest

    @classmethod
    def from_db(cls, db, digest: str, collection: str = SPEC_COLLECTION) -> "SystemSpec":
        """Load a persisted spec back by its digest."""
        doc = db.collection(collection).snapshot_one({"digest": digest})
        if doc is None:
            raise ConfigurationError(f"no spec with digest {digest!r} in collection {collection!r}")
        return cls.from_dict(doc["spec"])


# -- presets -----------------------------------------------------------------------
def _preset_minimal() -> SystemSpec:
    return SystemSpec(
        name="minimal",
        embedder=EmbedderSpec("pca", {"embedding_dim": 6}),
        clustering=ClusteringSpec("kmeans", n_clusters=6),
        storage=StorageSpec("documentdb"),
        index=IndexSpec("clustered", dtype="float32"),
    )


def _preset_serving() -> SystemSpec:
    minimal = _preset_minimal()
    return dataclasses.replace(
        minimal,
        name="serving",
        model=ModelSpec(
            "braggnn",
            {"width": 4},
            training={"epochs": 6, "batch_size": 32, "lr": 3e-3},
        ),
        serving=ServingSpec(batching={"max_batch_size": 16, "max_wait_ms": 2.0}, num_workers=2),
        policy={"distance_threshold": 0.7, "certainty_threshold": 10.0},
    )


def _preset_continual() -> SystemSpec:
    serving = _preset_serving()
    return dataclasses.replace(
        serving,
        name="continual",
        continual=ContinualSpec(
            trigger="certainty",
            trigger_params={"threshold_percent": 20.0, "cooldown": 1},
            gate_factor=2.0,
        ),
    )


def _preset_ann() -> SystemSpec:
    minimal = _preset_minimal()
    return dataclasses.replace(
        minimal,
        name="ann",
        index=IndexSpec(
            "ivf",
            dtype="float32",
            # Small enough that the CLI smoke path trains the quantizer on a
            # few hundred bootstrap samples; production stores raise these.
            params={"n_partitions": 16, "train_threshold": 64, "train_size": 4096},
            n_probe=4,
        ),
        serving=ServingSpec(batching={"max_batch_size": 32, "max_wait_ms": 2.0}, num_workers=2),
    )


def _preset_observed() -> SystemSpec:
    # The ann preset (IVF index: its scan counters populate the
    # repro_index_* series) with the observability plane switched on at a
    # sampling rate high enough that smoke bursts always record traces.
    ann = _preset_ann()
    return dataclasses.replace(
        ann,
        name="observed",
        observability=ObservabilitySpec(
            enabled=True, sample_rate=0.25, trace_buffer=4096,
            exporters=("prometheus", "jsonl"),
        ),
    )


def _preset_parallel() -> SystemSpec:
    # The continual system with the GIL-escaping compute plane switched on:
    # training, MC-dropout probes, and peak fitting fan out across two
    # worker processes with shared-memory array handoff.
    continual = _preset_continual()
    return dataclasses.replace(
        continual,
        name="parallel",
        executor=ExecutorSpec("process", workers=2),
    )


def _preset_networked() -> SystemSpec:
    # The serving system behind the TCP network plane: two replicas, a small
    # per-connection in-flight cap (smoke clients are few), and an autoscaler
    # sized so CLI/CI bursts can actually trip it — fast control interval,
    # short cooldowns, and a low queue watermark.
    serving = _preset_serving()
    return dataclasses.replace(
        serving,
        name="networked",
        network=NetworkSpec(
            host="127.0.0.1",
            port=0,
            replicas=2,
            max_in_flight=32,
            eject_after=3,
            health_interval_s=0.25,
            autoscale={
                "min_replicas": 1,
                "max_replicas": 4,
                "min_workers": 1,
                "max_workers": 4,
                "high_queue_per_replica": 8.0,
                "low_queue_per_replica": 1.0,
                "up_after": 2,
                "down_after": 3,
                "up_cooldown_s": 1.0,
                "down_cooldown_s": 5.0,
                "interval_s": 0.25,
            },
        ),
    )


def _preset_sharded() -> SystemSpec:
    # The data plane over the multi-tenant sharded store: four flat shards
    # per tenant, a default quota wide enough for smoke ingests, and the
    # serving runtime in fair round-robin tenancy mode.
    minimal = _preset_minimal()
    return dataclasses.replace(
        minimal,
        name="sharded",
        index=IndexSpec("sharded", dtype="float32"),
        sharding=ShardingSpec(
            shards=4,
            replication=1,
            shard_backend="flat",
            default_quota=4096,
        ),
        serving=ServingSpec(
            batching={"max_batch_size": 16, "max_wait_ms": 2.0, "fair_tenancy": True},
            num_workers=2,
        ),
    )


_PRESETS = {
    "minimal": _preset_minimal,
    "serving": _preset_serving,
    "continual": _preset_continual,
    "ann": _preset_ann,
    "observed": _preset_observed,
    "parallel": _preset_parallel,
    "sharded": _preset_sharded,
    "networked": _preset_networked,
}


def preset_names() -> List[str]:
    """The named presets shipped with the library."""
    return sorted(_PRESETS)


def preset(name: str) -> SystemSpec:
    """A named preset :class:`SystemSpec`.

    * ``"minimal"`` — the data plane alone: embed, cluster, store, look up.
    * ``"serving"`` — adds a BraggNN model and the micro-batching runtime.
    * ``"continual"`` — adds the drift-triggered retrain/promote/hot-swap loop.
    * ``"ann"`` — the data plane with the IVF approximate index and the
      serving runtime, exposing ``n_probe`` as a live knob.
    * ``"observed"`` — the ``"ann"`` system with the observability plane on
      (metrics registry + request tracing at a 25% sampling rate).
    * ``"parallel"`` — the ``"continual"`` system with the process compute
      plane (two workers, shared-memory handoff) under training, MC probes,
      and peak fitting.
    * ``"sharded"`` — the data plane over the multi-tenant sharded store
      (four flat shards per tenant, per-tenant quotas) with fair round-robin
      tenancy in the serving runtime.
    * ``"networked"`` — the ``"serving"`` system behind the TCP network
      plane: two replicas, client-visible typed errors, and a
      telemetry-driven autoscaler (see :mod:`repro.net`).
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {preset_names()}"
        ) from None
    return factory()
