"""Training + MC-dropout throughput — vectorized float32 engine vs pre-PR path.

The paper's monitor → trigger → retrain loop spends its compute budget in two
places: (re)training application models and probing their certainty with MC
dropout.  This benchmark pits the vectorized float32 compute plane against
the frozen pre-optimisation reference path
(:mod:`repro.nn._reference`: float64 everywhere, index-gather im2col,
``np.add.at`` col2im, per-parameter dict-keyed Adam, one forward pass per MC
sample) on a BraggNN-scale convolutional model.

Acceptance bars (asserted in full mode):

* **>= 3x** epoch throughput for training,
* **>= 4x** certainty-probe throughput for MC dropout,
* the float32 final training loss matches the float64 baseline within
  ``LOSS_RTOL`` (both runs share seeds, so shuffle order and dropout masks
  are identical draws).

A second section sweeps the multiprocess data-parallel compute plane
(:mod:`repro.compute`): epoch wall-clock at 1/2/4 process workers with
shared-memory batch handoff, plus a parallel MC-dropout probe.  The
data-parallel bar is **>= 2.5x** epoch throughput at 4 workers vs 1 —
asserted on the *measured* sweep when the machine has >= 4 usable cores,
and on the cost-model extrapolation (worker busy-time from
``Executor.stats``, the :mod:`repro.labeling.parallel` idiom) when it does
not, with ``cpu_limited``/``usable_cores`` recorded in the JSON so the two
regimes are never conflated.  Final-loss parity with the serial trainer is
asserted at every worker count at any scale (the sweep trains with
``dropout=0``, where the fused allreduce update is bitwise-identical to
the serial update sequence), as is a zero ``/dev/shm`` segment delta.

Timings are interleaved best-of-``repeats`` pairs so CPU frequency drift
hits both variants equally.  Results land in
``BENCH_training_throughput.json`` (see ``common.write_bench_json``).

Run standalone:
    python benchmarks/bench_training_throughput.py [--smoke]
        [--executor {inline,thread,process}] [--workers N]
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.api.registry import create_component
from repro.models import build_braggnn
from repro.nn import Trainer, TrainingConfig, mc_dropout_predict
from repro.nn._reference import LoopedAdam, legacy_variant, looped_mc_dropout_predict
from repro.utils.rng import default_rng

from common import print_table, write_bench_json

#: Documented tolerance for float32-vs-float64 final-train-loss agreement,
#: and for data-parallel final-loss parity with the serial trainer.
LOSS_RTOL = 0.02

FULL = dict(
    n_train=1024, width=8, epochs=3, batch_size=64, repeats=3,
    probe_batch=256, mc_samples=32, probe_repeats=3,
    assert_train_speedup=3.0, assert_mc_speedup=4.0,
    dp_n_train=4096, dp_width=8, dp_epochs=3, dp_batch=1024, dp_repeats=2,
    dp_workers=(2, 4), assert_dp_speedup=2.5,
    mc_parallel_workers=2, mc_parallel_rows=256, mc_parallel_samples=32,
)
SMOKE = dict(
    n_train=256, width=4, epochs=2, batch_size=64, repeats=2,
    probe_batch=64, mc_samples=16, probe_repeats=2,
    assert_train_speedup=None, assert_mc_speedup=None,
    dp_n_train=256, dp_width=4, dp_epochs=2, dp_batch=64, dp_repeats=1,
    dp_workers=(2,), assert_dp_speedup=None,
    mc_parallel_workers=2, mc_parallel_rows=64, mc_parallel_samples=16,
)


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _shm_entries() -> Optional[int]:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        return None
    return len(list(shm.iterdir()))


def _bragg_like_data(n: int, seed: int = 0):
    """Synthetic Bragg-peak patches: a noisy Gaussian blob per 15x15 patch."""
    rng = default_rng(seed)
    centers = rng.uniform(4.0, 10.0, size=(n, 2))
    yy, xx = np.mgrid[0:15, 0:15]
    blobs = np.exp(
        -((yy[None] - centers[:, 0, None, None]) ** 2 + (xx[None] - centers[:, 1, None, None]) ** 2)
        / 4.0
    )
    x = (blobs + 0.05 * rng.normal(size=(n, 15, 15)))[:, None, :, :]
    y = centers / 15.0
    return x, y


def _build_fast(cfg, seed=0):
    return build_braggnn(width=cfg["width"], seed=seed)


def _build_legacy(cfg, seed=0):
    return legacy_variant(build_braggnn(width=cfg["width"], seed=seed))


def _fit_once(model, data, cfg, legacy: bool):
    factory = (lambda p, lr: LoopedAdam(p, lr=lr)) if legacy else None
    trainer = Trainer(model, optimizer_factory=factory)
    config = TrainingConfig(
        epochs=cfg["epochs"], batch_size=cfg["batch_size"], lr=2e-3, seed=0
    )
    history = trainer.fit(data, config=config)
    # Steady-state epoch time: drop the first epoch, which pays one-off
    # costs (workspace allocation for the fast engine, cache warm-up).
    steady = history.epoch_time[1:] or history.epoch_time
    return history, sum(steady) / len(steady)


def _bench_training(cfg, data) -> Dict[str, float]:
    """Interleaved best-of-N steady-state epoch time, fresh models per rep."""
    best_legacy, best_fast = float("inf"), float("inf")
    final_loss_legacy = final_loss_fast = float("nan")
    for rep in range(cfg["repeats"]):
        hist_l, t_l = _fit_once(_build_legacy(cfg), data, cfg, legacy=True)
        hist_f, t_f = _fit_once(_build_fast(cfg), data, cfg, legacy=False)
        best_legacy, best_fast = min(best_legacy, t_l), min(best_fast, t_f)
        if rep == 0:
            final_loss_legacy = hist_l.train_loss[-1]
            final_loss_fast = hist_f.train_loss[-1]
    return {
        "train_epochs_per_s_legacy": 1.0 / best_legacy,
        "train_epochs_per_s_fast": 1.0 / best_fast,
        "train_speedup": best_legacy / best_fast,
        "final_train_loss_legacy_float64": final_loss_legacy,
        "final_train_loss_fast_float32": final_loss_fast,
        "final_train_loss_rel_diff": abs(final_loss_fast - final_loss_legacy)
        / max(abs(final_loss_legacy), 1e-12),
    }


def _time_probe(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_mc_dropout(cfg, data) -> Dict[str, float]:
    x_probe = data[0][: cfg["probe_batch"]]
    fast = _build_fast(cfg, seed=1)
    legacy = _build_legacy(cfg, seed=1)
    n = cfg["mc_samples"]
    best_legacy = _time_probe(
        lambda: looped_mc_dropout_predict(legacy, x_probe, n_samples=n), cfg["probe_repeats"]
    )
    best_fast = _time_probe(
        lambda: mc_dropout_predict(fast, x_probe, n_samples=n), cfg["probe_repeats"]
    )
    return {
        "mc_probes_per_s_legacy": 1.0 / best_legacy,
        "mc_probes_per_s_fast": 1.0 / best_fast,
        "mc_speedup": best_legacy / best_fast,
    }


# ---------------------------------------------------------------------------
# data-parallel compute plane (multiprocess, shared-memory handoff)
# ---------------------------------------------------------------------------
def _dp_fit_once(cfg, data, executor=None):
    """One fit at dropout=0 (bitwise-parity regime); returns (loss, wall)."""
    model = build_braggnn(width=cfg["dp_width"], dropout=0.0, seed=7)
    config = TrainingConfig(
        epochs=cfg["dp_epochs"], batch_size=cfg["dp_batch"], lr=2e-3, seed=0
    )
    start = time.perf_counter()
    history = Trainer(model, executor=executor).fit(data, config=config)
    return float(history.train_loss[-1]), time.perf_counter() - start


def _bench_data_parallel(cfg, executor_kind: str) -> Dict[str, object]:
    """Worker-count sweep of data-parallel training vs the serial trainer.

    Timings are steady-state best-of-``dp_repeats``: the executor persists
    across repeats, so one-off pool start-up (fork, module state) is paid in
    the first repeat only — matching the serial section's drop-the-first-epoch
    convention.  Measured speedups are honest wall-clock ratios on *this*
    machine; when the machine has fewer cores than workers the sweep also
    reports a modeled speedup from worker busy time — ``modeled_wall(K) =
    busy/K + overhead`` with busy/overhead taken from the smallest parallel
    run (the labeling engine's CostModel idiom, applied to the compute
    plane).  Busy is task CPU time from ``Executor.stats`` (``thread_time``
    in the workers), so shared-core preemption cannot inflate the
    parallelisable fraction; overhead (dispatch, shuffle, the fused
    allreduce + optimizer step) is the best observed ``wall - busy``.
    """
    x, y = _bragg_like_data(cfg["dp_n_train"], seed=3)
    data = (x, y)
    repeats = int(cfg["dp_repeats"])
    shm_before = _shm_entries()
    serial_loss, serial_wall = _dp_fit_once(cfg, data)
    for _ in range(repeats - 1):
        serial_wall = min(serial_wall, _dp_fit_once(cfg, data)[1])
    rows: List[Dict[str, float]] = [
        {"workers": 1, "wall_s": serial_wall, "final_loss": serial_loss,
         "busy_s": serial_wall, "overhead_s": 0.0, "loss_rel_diff": 0.0}
    ]
    for workers in cfg["dp_workers"]:
        executor = create_component("executor", executor_kind, max_workers=int(workers))
        try:
            best_wall, best_busy, best_overhead, loss = float("inf"), 0.0, float("inf"), float("nan")
            for _ in range(repeats):
                busy_before = float(executor.stats["busy_seconds"])
                loss, wall = _dp_fit_once(cfg, data, executor=executor)
                busy = float(executor.stats["busy_seconds"]) - busy_before
                if wall < best_wall:
                    best_wall, best_busy = wall, busy
                best_overhead = min(best_overhead, max(wall - busy, 0.0))
        finally:
            executor.close()
        rows.append({
            "workers": int(workers), "wall_s": best_wall, "final_loss": loss,
            "busy_s": best_busy, "overhead_s": best_overhead,
            "loss_rel_diff": abs(loss - serial_loss) / max(abs(serial_loss), 1e-12),
        })
    shm_after = _shm_entries()

    # Cost-model extrapolation from the smallest parallel run: its busy time
    # is the parallelisable fraction, the remainder (optimizer step, shuffle,
    # dispatch) stays serial.
    base = rows[1]
    overhead = base["overhead_s"]
    for row in rows:
        row["measured_speedup"] = serial_wall / row["wall_s"]
        modeled_wall = base["busy_s"] / row["workers"] + overhead
        row["modeled_speedup"] = serial_wall / max(modeled_wall, 1e-9)
    modeled_wall_4 = base["busy_s"] / 4.0 + overhead
    usable = _usable_cores()
    return {
        "executor": executor_kind,
        "sweep": rows,
        "serial_wall_s": serial_wall,
        "usable_cores": usable,
        "cpu_limited": usable < 4,
        "dp_measured_speedup_max": max(r["measured_speedup"] for r in rows),
        "dp_modeled_speedup_4w": serial_wall / max(modeled_wall_4, 1e-9),
        "dp_loss_rel_diff_max": max(r["loss_rel_diff"] for r in rows),
        "shm_segment_delta": (
            shm_after - shm_before
            if shm_before is not None and shm_after is not None else 0
        ),
    }


def _bench_parallel_mc(cfg, executor_kind: str) -> Dict[str, float]:
    """Parallel MC-dropout probe vs the in-process folded path.

    Sized independently of the serial probe section (``mc_parallel_rows`` x
    ``mc_parallel_samples``) at the drift monitor's probe scale.  The folded
    in-process path is already heavily vectorized, so fan-out only pays once
    workers land on their own cores — on CPU-limited boxes both the measured
    and the modeled ratio stay below 1 and the JSON's ``cpu_limited`` flag
    says why.
    """
    model = build_braggnn(width=cfg["dp_width"], seed=1)
    x_probe = _bragg_like_data(cfg["mc_parallel_rows"], seed=5)[0]
    n = cfg["mc_parallel_samples"]
    serial_wall = _time_probe(
        lambda: mc_dropout_predict(model, x_probe, n_samples=n), cfg["probe_repeats"]
    )
    workers = int(cfg["mc_parallel_workers"])
    executor = create_component("executor", executor_kind, max_workers=workers)
    try:
        parallel_wall = _time_probe(
            lambda: mc_dropout_predict(model, x_probe, n_samples=n, executor=executor),
            cfg["probe_repeats"],
        )
        # stats accumulate over the repeats; average back to one probe.
        busy = float(executor.stats["busy_seconds"]) / cfg["probe_repeats"]
    finally:
        executor.close()
    overhead = max(parallel_wall - busy, 0.0)
    return {
        "mc_parallel_workers": workers,
        "mc_parallel_wall_s": parallel_wall,
        "mc_parallel_measured_speedup": serial_wall / parallel_wall,
        "mc_parallel_modeled_speedup_4w": serial_wall / max(busy / 4.0 + overhead, 1e-9),
    }


def run(smoke: bool = False, report_sink=None, executor_kind: str = "process",
        workers: Optional[int] = None) -> Dict[str, float]:
    cfg = SMOKE if smoke else FULL
    if workers is not None:
        cfg = {**cfg, "dp_workers": (int(workers),), "mc_parallel_workers": int(workers)}
    data = _bragg_like_data(cfg["n_train"])

    train_metrics = _bench_training(cfg, data)
    mc_metrics = _bench_mc_dropout(cfg, data)
    dp_metrics = _bench_data_parallel(cfg, executor_kind)
    mc_par_metrics = _bench_parallel_mc(cfg, executor_kind)
    metrics = {**train_metrics, **mc_metrics, **dp_metrics, **mc_par_metrics}

    print_table(
        "Training throughput: float32 engine vs pre-PR float64 path",
        ["metric", "legacy", "fast", "speedup"],
        [
            [
                "epochs/s",
                train_metrics["train_epochs_per_s_legacy"],
                train_metrics["train_epochs_per_s_fast"],
                train_metrics["train_speedup"],
            ],
            [
                "MC probes/s",
                mc_metrics["mc_probes_per_s_legacy"],
                mc_metrics["mc_probes_per_s_fast"],
                mc_metrics["mc_speedup"],
            ],
            [
                "final loss",
                train_metrics["final_train_loss_legacy_float64"],
                train_metrics["final_train_loss_fast_float32"],
                train_metrics["final_train_loss_rel_diff"],
            ],
        ],
        sink=report_sink,
    )

    print_table(
        f"Data-parallel training sweep ({dp_metrics['executor']} executor, "
        f"{dp_metrics['usable_cores']} usable cores)",
        ["workers", "wall s", "measured x", "modeled x", "loss rel diff"],
        [
            [r["workers"], r["wall_s"], r["measured_speedup"], r["modeled_speedup"],
             r["loss_rel_diff"]]
            for r in dp_metrics["sweep"]
        ],
        sink=report_sink,
    )
    print_table(
        "Parallel MC-dropout probe",
        ["workers", "measured x", "modeled x @4w"],
        [[mc_par_metrics["mc_parallel_workers"],
          mc_par_metrics["mc_parallel_measured_speedup"],
          mc_par_metrics["mc_parallel_modeled_speedup_4w"]]],
        sink=report_sink,
    )

    write_bench_json(
        "training_throughput",
        metrics,
        params={**{k: list(v) if isinstance(v, tuple) else v for k, v in cfg.items()},
                "loss_rtol": LOSS_RTOL, "smoke": smoke, "executor": executor_kind},
    )

    # Numerical equivalence holds at every scale, smoke included.
    assert metrics["final_train_loss_rel_diff"] < LOSS_RTOL, (
        f"float32 final loss diverged from float64 baseline: "
        f"rel diff {metrics['final_train_loss_rel_diff']:.4f} >= {LOSS_RTOL}"
    )
    # Data-parallel invariants hold at every scale too: loss parity with the
    # serial trainer (bitwise at dropout=0) and no leaked shm segments.
    assert metrics["dp_loss_rel_diff_max"] < LOSS_RTOL, (
        f"data-parallel final loss diverged from serial trainer: "
        f"rel diff {metrics['dp_loss_rel_diff_max']:.4f} >= {LOSS_RTOL}"
    )
    assert metrics["shm_segment_delta"] == 0, (
        f"compute plane leaked {metrics['shm_segment_delta']} /dev/shm segment(s)"
    )
    if cfg["assert_train_speedup"] is not None:
        assert metrics["train_speedup"] >= cfg["assert_train_speedup"], (
            f"training speedup {metrics['train_speedup']:.2f}x below "
            f"{cfg['assert_train_speedup']}x bar"
        )
        assert metrics["mc_speedup"] >= cfg["assert_mc_speedup"], (
            f"MC-dropout speedup {metrics['mc_speedup']:.2f}x below "
            f"{cfg['assert_mc_speedup']}x bar"
        )
    else:
        assert metrics["train_speedup"] > 0.5, "smoke sanity: training speedup collapsed"
        assert metrics["mc_speedup"] > 0.5, "smoke sanity: MC speedup collapsed"
    if cfg["assert_dp_speedup"] is not None:
        # 2.5x at 4 workers vs 1: measured where 4 real cores exist, cost-model
        # extrapolated (plus the loss-parity assert above) on smaller machines.
        if not metrics["cpu_limited"]:
            assert metrics["dp_measured_speedup_max"] >= cfg["assert_dp_speedup"], (
                f"data-parallel speedup {metrics['dp_measured_speedup_max']:.2f}x "
                f"below {cfg['assert_dp_speedup']}x bar at 4 workers"
            )
        else:
            assert metrics["dp_modeled_speedup_4w"] >= cfg["assert_dp_speedup"], (
                f"modeled data-parallel speedup "
                f"{metrics['dp_modeled_speedup_4w']:.2f}x below "
                f"{cfg['assert_dp_speedup']}x bar "
                f"(cpu_limited: {metrics['usable_cores']} usable cores)"
            )
    return metrics


def test_training_throughput(report_sink):
    run(smoke=False, report_sink=report_sink)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI smoke runs (no 3x/4x assertions)")
    parser.add_argument("--executor", default="process",
                        choices=("inline", "thread", "process"),
                        help="compute-plane backend for the data-parallel sweep")
    parser.add_argument("--workers", type=int, default=None,
                        help="pin the sweep to one worker count (CI smoke uses 2)")
    args = parser.parse_args()
    run(smoke=args.smoke, executor_kind=args.executor, workers=args.workers)
