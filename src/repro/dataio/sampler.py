"""Index samplers.

``Sampler`` objects generate the order in which dataset indices are visited.
Besides the standard sequential/random samplers this module provides
:class:`WeightedClusterSampler`, which draws historical samples so that the
retrieved dataset follows a target cluster probability distribution — the
mechanism fairDS uses to return "a labeled dataset with similar
characteristics to the input data".
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike, default_rng
from repro.utils.stats import normalize_distribution


class Sampler:
    """Abstract sampler yielding dataset indices."""

    def __iter__(self) -> Iterator[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SequentialSampler(Sampler):
    def __init__(self, n: int):
        if n < 1:
            raise ValidationError("n must be >= 1")
        self.n = int(n)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __len__(self) -> int:
        return self.n


class RandomSampler(Sampler):
    """Random permutation of the index range, reshuffled each epoch."""

    def __init__(self, n: int, seed: SeedLike = None):
        if n < 1:
            raise ValidationError("n must be >= 1")
        self.n = int(n)
        self._rng = default_rng(seed)

    def __iter__(self) -> Iterator[int]:
        return iter(self._rng.permutation(self.n).tolist())

    def __len__(self) -> int:
        return self.n


class WeightedClusterSampler(Sampler):
    """Draws indices so the sampled cluster histogram matches a target PDF.

    Parameters
    ----------
    cluster_ids:
        Cluster assignment of every candidate sample (length = dataset size).
    target_pdf:
        Desired probability of each cluster in the output (length = #clusters).
    n_samples:
        How many indices to draw (with replacement across clusters, without
        replacement within a cluster where possible).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        cluster_ids: Sequence[int],
        target_pdf: Sequence[float],
        n_samples: int,
        seed: SeedLike = None,
    ):
        cluster_ids = np.asarray(cluster_ids, dtype=int)
        if cluster_ids.ndim != 1 or cluster_ids.size == 0:
            raise ValidationError("cluster_ids must be a non-empty 1-D sequence")
        if n_samples < 1:
            raise ValidationError("n_samples must be >= 1")
        pdf = normalize_distribution(target_pdf)
        if cluster_ids.max() >= pdf.size:
            raise ValidationError("cluster id exceeds the PDF length")
        self.cluster_ids = cluster_ids
        self.target_pdf = pdf
        self.n_samples = int(n_samples)
        self._rng = default_rng(seed)

    def _draw(self) -> List[int]:
        rng = self._rng
        # Expected number of samples per cluster, largest-remainder rounding.
        raw = self.target_pdf * self.n_samples
        counts = np.floor(raw).astype(int)
        remainder = self.n_samples - counts.sum()
        if remainder > 0:
            order = np.argsort(-(raw - counts))
            counts[order[:remainder]] += 1
        chosen: List[int] = []
        members_by_cluster = {
            int(c): np.nonzero(self.cluster_ids == c)[0] for c in np.unique(self.cluster_ids)
        }
        nonempty = [c for c, members in members_by_cluster.items() if members.size > 0]
        for cluster, want in enumerate(counts):
            if want == 0:
                continue
            members = members_by_cluster.get(cluster)
            if members is None or members.size == 0:
                # No historical data in this cluster: borrow uniformly from the
                # clusters that do have data so the output size is preserved.
                donor = nonempty[int(rng.integers(0, len(nonempty)))]
                members = members_by_cluster[donor]
            replace = want > members.size
            chosen.extend(rng.choice(members, size=want, replace=replace).tolist())
        rng.shuffle(chosen)
        return chosen

    def __iter__(self) -> Iterator[int]:
        return iter(self._draw())

    def __len__(self) -> int:
        return self.n_samples


class BatchSampler(Sampler):
    """Groups another sampler's indices into mini-batch lists."""

    def __init__(self, base: Sampler, batch_size: int, drop_last: bool = False):
        if batch_size < 1:
            raise ValidationError("batch_size must be >= 1")
        self.base = base
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)

    def __iter__(self) -> Iterator[List[int]]:
        batch: List[int] = []
        for idx in self.base:
            batch.append(idx)
            if len(batch) == self.batch_size:
                yield batch
                batch = []
        if batch and not self.drop_last:
            yield batch

    def __len__(self) -> int:
        n = len(self.base)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size
