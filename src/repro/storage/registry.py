"""Name-based registry for storage and index backends.

The scalability ablations of the paper swap the storage/lookup configuration
— document DB vs file store, flat vs cluster-partitioned index — between
otherwise identical runs.  This module makes those backends constructible by
name from configuration instead of hard-coded imports:

    >>> from repro.storage.registry import create_index_backend
    >>> index = create_index_backend("flat", dim=16)
    >>> db = create_storage_backend("documentdb", codec="blosc")

Two kinds of backend exist:

* ``"storage"`` — sample/document persistence (``"file"``, ``"documentdb"``),
  described by the :class:`StorageBackend` protocol.
* ``"index"`` — nearest-neighbour lookup (``"flat"``, ``"clustered"``),
  described by the :class:`IndexBackend` protocol.

User code can plug in its own backends with :func:`register_backend` (usable
as a decorator); benchmarks and examples enumerate the available names via
:func:`available_backends`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, runtime_checkable

import numpy as np

from repro.storage.codecs import get_codec
from repro.storage.documentdb import DocumentDB, NetworkModel
from repro.storage.file_store import FileStore
from repro.storage.vector_index import ClusteredVectorIndex, QueryResult, VectorIndex
from repro.utils.errors import ConfigurationError


@runtime_checkable
class StorageBackend(Protocol):
    """Minimal surface every storage backend exposes."""

    def storage_bytes(self) -> int:
        """Total payload bytes currently held by the backend."""
        ...


@runtime_checkable
class IndexBackend(Protocol):
    """Minimal surface every vector-lookup backend exposes."""

    def __len__(self) -> int: ...

    def query(self, vector: np.ndarray, k: int = 1) -> QueryResult: ...

    def query_batch(self, vectors: np.ndarray, k: int = 1) -> List[QueryResult]: ...


_REGISTRIES: Dict[str, Dict[str, Callable[..., Any]]] = {"storage": {}, "index": {}}


def _registry(kind: str) -> Dict[str, Callable[..., Any]]:
    try:
        return _REGISTRIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend kind {kind!r}; expected one of {sorted(_REGISTRIES)}"
        ) from None


def register_backend(
    kind: str,
    name: str,
    factory: Optional[Callable[..., Any]] = None,
    overwrite: bool = False,
):
    """Register ``factory`` (a class or callable) under ``(kind, name)``.

    Usable directly (``register_backend("index", "flat", VectorIndex)``) or as
    a decorator (``@register_backend("index", "annoy")``).  Duplicate names
    raise unless ``overwrite=True``.
    """
    registry = _registry(kind)

    def _register(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in registry and not overwrite:
            raise ConfigurationError(
                f"{kind} backend {name!r} is already registered; pass overwrite=True to replace it"
            )
        registry[name] = fn
        return fn

    return _register(factory) if factory is not None else _register


def unregister_backend(kind: str, name: str) -> bool:
    """Remove a registered backend; returns True if it existed.

    Mainly for tests and plugins that add temporary backends and must not
    leak them into the process-wide registry.
    """
    return _registry(kind).pop(name, None) is not None


def available_backends(kind: str) -> List[str]:
    """Names registered for ``kind`` (``"storage"`` or ``"index"``)."""
    return sorted(_registry(kind))


def create_backend(kind: str, name: str, **kwargs: Any) -> Any:
    """Instantiate the backend registered under ``(kind, name)``."""
    registry = _registry(kind)
    try:
        factory = registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown {kind} backend {name!r}; available: {sorted(registry)}"
        ) from None
    return factory(**kwargs)


def create_storage_backend(name: str, **kwargs: Any) -> StorageBackend:
    return create_backend("storage", name, **kwargs)


def create_index_backend(name: str, **kwargs: Any) -> IndexBackend:
    return create_backend("index", name, **kwargs)


def create_from_config(config: Mapping[str, Any]) -> Any:
    """Instantiate a backend from ``{"kind": ..., "name": ..., "params": {...}}``."""
    if "kind" not in config or "name" not in config:
        raise ConfigurationError("backend config requires 'kind' and 'name' entries")
    params = dict(config.get("params") or {})
    return create_backend(config["kind"], config["name"], **params)


# -- built-in backends ---------------------------------------------------------
def _make_documentdb(codec=None, network=None, **kwargs: Any) -> DocumentDB:
    """DocumentDB factory accepting codec names and network-model dicts."""
    if isinstance(codec, str):
        codec = get_codec(codec)
    if isinstance(network, Mapping):
        network = NetworkModel(**network)
    return DocumentDB(codec=codec, network=network, **kwargs)


register_backend("storage", "file", FileStore)
register_backend("storage", "documentdb", _make_documentdb)
register_backend("index", "flat", VectorIndex)
register_backend("index", "clustered", ClusteredVectorIndex)
