"""Ablation — hierarchical (cluster-partitioned) lookup vs flat nearest-neighbour search.

The paper motivates the two-level search of fairDS (first find the cluster,
then search within it) by the cost of naive instance discrimination, which
"scales linearly with the size of the database".  This ablation measures query
latency of the flat exact index against the cluster-partitioned index as the
historical store grows, and verifies that both return the same nearest
neighbour when the partition is probed.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans
from repro.storage.vector_index import ClusteredVectorIndex, VectorIndex
from repro.utils.rng import default_rng

from common import print_table

STORE_SIZES = (2_000, 8_000, 32_000)
DIM = 16
N_CLUSTERS = 32
N_QUERIES = 200


def _timed_queries(index, queries) -> float:
    start = time.perf_counter()
    for q in queries:
        index.query(q, k=1)
    return (time.perf_counter() - start) / len(queries) * 1e3  # ms / query


@pytest.mark.figure("ablation-lookup")
def test_ablation_lookup_scalability(benchmark, report_sink):
    rng = default_rng(0)
    # Clustered data: a mixture of Gaussian blobs, as produced by the embedding space.
    blob_centers = rng.normal(scale=10.0, size=(N_CLUSTERS, DIM))

    rows = []
    speedups = []
    for size in STORE_SIZES:
        assignments = rng.integers(0, N_CLUSTERS, size=size)
        vectors = blob_centers[assignments] + rng.normal(size=(size, DIM))
        keys = [f"k{i}" for i in range(size)]

        flat = VectorIndex(DIM)
        flat.add(keys, vectors)

        km = KMeans(n_clusters=N_CLUSTERS, n_init=1, max_iter=25, seed=0).fit(vectors[: min(size, 4000)])
        clustered = ClusteredVectorIndex(km.cluster_centers_, n_probe=2)
        clustered.add(keys, vectors, km.predict(vectors))

        queries = blob_centers[rng.integers(0, N_CLUSTERS, size=N_QUERIES)] + rng.normal(size=(N_QUERIES, DIM))
        flat_ms = _timed_queries(flat, queries)
        clustered_ms = _timed_queries(clustered, queries)
        rows.append((size, flat_ms, clustered_ms, flat_ms / max(clustered_ms, 1e-9)))
        speedups.append(flat_ms / max(clustered_ms, 1e-9))

        # Correctness spot-check: for a handful of queries both indexes agree on
        # the nearest neighbour (the probed partition contains it).
        agreements = 0
        for q in queries[:20]:
            if flat.query(q, k=1)[0][0] == clustered.query(q, k=1)[0][0]:
                agreements += 1
        assert agreements >= 18

    print_table(
        "Ablation — nearest-neighbour lookup latency [ms/query]: flat vs cluster-partitioned index",
        ["store_size", "flat_ms", "clustered_ms", "speedup"],
        rows, sink=report_sink,
    )

    # Shape checks: the hierarchical index wins, and its advantage grows with store size.
    assert all(s > 1.0 for s in speedups[1:])
    assert speedups[-1] >= speedups[0] * 0.8  # advantage does not collapse as the store grows

    # Benchmark target: one clustered query at the largest store size.
    last_query = blob_centers[0] + rng.normal(size=DIM)
    benchmark(lambda: clustered.query(last_query, k=1))
