"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers embedding fairDMS inside a larger experiment-control loop can catch a
single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed or called with invalid options."""


class StorageError(ReproError):
    """Raised by the storage substrate (document DB, file store, codecs)."""


class QuotaExceededError(StorageError):
    """A tenant write would exceed its configured key quota in a multi-tenant
    store (:class:`repro.storage.sharded.ShardedVectorStore`).  The write is
    rejected atomically — no partial rows land in any shard."""


class NotFittedError(ReproError):
    """Raised when a model/service is used before it has been fitted or trained."""


class ValidationError(ReproError):
    """Raised when user-supplied data fails validation (shape, dtype, range)."""


class PipelineError(ReproError):
    """Raised by the workflow DAG orchestrator (:mod:`repro.workflow.pipeline`)."""


class StepTimeoutError(PipelineError):
    """A pipeline step attempt exceeded its ``timeout_s``.  The attempt is
    abandoned (threads cannot be killed); the step may retry if it has
    retries left."""


class ComputeError(ReproError):
    """Raised by the parallel compute plane (:mod:`repro.compute`): executor
    misuse (closed/broken executors, unpicklable tasks) or shared-memory
    bookkeeping failures."""


class WorkerCrashError(ComputeError):
    """A process-pool worker died without reporting a result (segfault,
    ``os._exit``, OOM-kill, SIGKILL).  The executor is broken afterwards:
    remaining workers are terminated and shared-memory segments unlinked."""


class ServingError(ReproError):
    """Raised by the concurrent serving runtime (:mod:`repro.serving`)."""


class ServiceOverloadedError(ServingError):
    """Admission control rejected a request: the serving queue is at
    ``max_queue_depth``.  Fail-fast backpressure — the client should retry
    later or shed load, rather than queueing unboundedly."""


class ServiceClosedError(ServingError):
    """A request was submitted to a serving runtime that is not accepting
    traffic (not started yet, or already shut down)."""


class NetworkError(ReproError):
    """Raised by the network serving plane (:mod:`repro.net`): transport
    failures, protocol violations, and exhausted retries."""


class FrameTooLargeError(NetworkError):
    """A protocol frame exceeded the configured ``max_frame_bytes``.  The
    peer rejects the frame with a typed error instead of buffering it."""


class DeadlineExceededError(NetworkError):
    """A network request's per-request deadline expired before a response
    arrived (retries included)."""


class RemoteError(NetworkError):
    """A typed error frame returned by the server.  ``error_type`` carries
    the wire-level error code (``"overloaded"``, ``"closed"``,
    ``"unknown_op"``, ``"bad_request"``, ``"frame_too_large"``,
    ``"unavailable"``, ``"deadline_exceeded"``, ``"internal"``)."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"[{error_type}] {message}")
        self.error_type = error_type
