"""Neural-network layers with vectorised forward and backward passes.

Every layer follows the same protocol:

* ``forward(x, training)`` returns the layer output and caches whatever is
  needed for the backward pass,
* ``backward(grad_output)`` accumulates parameter gradients into
  ``Parameter.grad`` and returns the gradient with respect to the input,
* ``parameters()`` lists the layer's trainable parameters.

All layers compute in the dtype of the active
:class:`~repro.nn.dtype.DtypePolicy` (float32 by default, float64 opt-in via
the ``dtype`` constructor argument or :func:`repro.nn.dtype.dtype_scope`).
Input casts are copy-free when the dtype already matches.

Convolutions use the im2col formulation so the heavy lifting is a single
matrix multiply per layer.  The im2col gather is built on
``numpy.lib.stride_tricks.sliding_window_view`` plus one contiguous copy into
a reusable per-(shape, kernel) workspace, and the col2im scatter in the
backward pass is a sum over the ``kh * kw`` kernel offsets — each a strided
slice-add — instead of the far slower ``np.add.at`` fancy-index scatter.
Steady-state training therefore reuses its big intermediate buffers instead
of reallocating them every batch.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn import init as initializers
from repro.nn.dtype import DtypeLike, resolve_dtype
from repro.nn.parameter import Parameter
from repro.utils.errors import ConfigurationError
from repro.utils.rng import SeedLike, default_rng


class Layer:
    """Base class for all layers."""

    def __init__(self, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        self.name = name or type(self).__name__
        self.training = True
        self.dtype = resolve_dtype(dtype)

    # -- protocol -----------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward_params_only(self, grad_output: np.ndarray) -> None:
        """Accumulate parameter gradients without forming the input gradient.

        Called for the *first* layer of a network being trained end-to-end,
        where the input gradient would be discarded.  Layers with an
        expensive input-gradient path (Conv2D's col2im) override this.
        """
        self.backward(grad_output)

    def parameters(self) -> List[Parameter]:
        return []

    # -- dtype --------------------------------------------------------------
    def _cast(self, x) -> np.ndarray:
        """Cast ``x`` to this layer's compute dtype (no copy when it matches)."""
        arr = np.asarray(x)
        if arr.dtype == self.dtype:
            return arr
        return arr.astype(self.dtype)

    def to_dtype(self, dtype: DtypeLike) -> "Layer":
        """Switch the layer (parameters included) to a new compute dtype."""
        self.dtype = np.dtype(dtype)
        for p in self.parameters():
            p.astype(self.dtype)
        self._on_dtype_change()
        return self

    def _on_dtype_change(self) -> None:
        """Hook for subclasses holding extra dtype-bound state (buffers, stats)."""

    # -- convenience --------------------------------------------------------
    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def freeze(self) -> None:
        """Mark all parameters as non-trainable (used when fine-tuning)."""
        for p in self.parameters():
            p.trainable = False

    def unfreeze(self) -> None:
        for p in self.parameters():
            p.trainable = True

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {p.name: p.data.copy() for p in self.parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for p in self.parameters():
            if p.name not in state:
                raise KeyError(f"missing parameter {p.name!r} in state dict")
            value = np.asarray(state[p.name])
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {p.name!r}: expected {p.data.shape}, got {value.shape}"
                )
            p.data[...] = value  # in-place so packed-optimizer views stay live

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# Dense / fully connected
# ---------------------------------------------------------------------------
class Dense(Layer):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: SeedLike = None,
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ):
        super().__init__(name, dtype=dtype)
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.he_normal(
                (in_features, out_features), fan_in=in_features, seed=seed, dtype=self.dtype
            ),
            name=f"{self.name}.weight",
            dtype=self.dtype,
        )
        self.bias = (
            Parameter(
                initializers.zeros((out_features,), dtype=self.dtype),
                name=f"{self.name}.bias",
                dtype=self.dtype,
            )
            if bias
            else None
        )
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        if x.ndim != 2:
            raise ValueError(f"Dense expects 2-D input (batch, features), got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense {self.name!r}: expected {self.in_features} features, got {x.shape[1]}"
            )
        self._x = x if training else None
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self.backward_params_only(grad_output)
        return self._cast(grad_output) @ self.weight.data.T

    def backward_params_only(self, grad_output: np.ndarray) -> None:
        if self._x is None:
            raise RuntimeError("backward() called before a training forward pass")
        grad_output = self._cast(grad_output)
        self.weight.grad += self._x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


# ---------------------------------------------------------------------------
# Convolution via im2col
# ---------------------------------------------------------------------------
def conv_output_size(h: int, w: int, kh: int, kw: int, stride: int, pad: int) -> Tuple[int, int]:
    return (h + 2 * pad - kh) // stride + 1, (w + 2 * pad - kw) // stride + 1


def _patch_windows(
    x_padded: np.ndarray, kh: int, kw: int, stride: int
) -> np.ndarray:
    """Strided (zero-copy) view of all kernel windows: ``(N, C, oh, ow, kh, kw)``."""
    win = sliding_window_view(x_padded, (kh, kw), axis=(2, 3))
    if stride != 1:
        win = win[:, :, ::stride, ::stride]
    return win


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns: output shape ``(C*kh*kw, N*out_h*out_w)``.

    Column ordering matches the historical index-gather implementation (kept
    as :func:`repro.nn._reference.reference_im2col` for golden tests): rows
    iterate ``(c, ki, kj)`` and columns ``(out_h, out_w, n)``.
    """
    n, c, h, w = x.shape
    if pad:
        x_padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    else:
        x_padded = x
    out_h, out_w = conv_output_size(h, w, kh, kw, stride, pad)
    win = _patch_windows(x_padded, kh, kw, stride)  # (n, c, oh, ow, kh, kw)
    cols = win.transpose(1, 4, 5, 2, 3, 0).reshape(c * kh * kw, out_h * out_w * n)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an NCHW tensor.

    Implemented as a sum over the ``kh * kw`` kernel offsets — each offset is
    one fully vectorised strided slice-add — which is dramatically faster than
    the equivalent ``np.add.at`` fancy-index scatter.
    """
    n, c, h, w = x_shape
    out_h, out_w = conv_output_size(h, w, kh, kw, stride, pad)
    x_padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    g6 = cols.reshape(c, kh, kw, out_h, out_w, n)
    for ki in range(kh):
        for kj in range(kw):
            x_padded[:, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride] += (
                g6[:, ki, kj].transpose(3, 0, 1, 2)
            )
    if pad == 0:
        return x_padded
    return x_padded[:, :, pad:-pad, pad:-pad]


class _ConvWorkspace:
    """Reusable buffers for one ``(input shape, dtype)`` of a Conv2D layer.

    Holding these per layer (and per thread, so concurrent inference through
    the serving plane stays safe) means steady-state training re-uses the
    large im2col/col2im intermediates instead of reallocating them per batch.

    The column layout is ``(c, kh, kw, n, oh, ow)`` and the image buffers are
    kept channel-first-transposed (``(c, n, H, W)``): the gather/scatter then
    runs as ``kh * kw`` big slice copies with *matching* axis order on both
    sides and a full (strided) image row as the inner dimension — orders of
    magnitude fewer iterator steps than a fancy-index gather or an
    element-wise transpose copy per offset.
    """

    __slots__ = (
        "x_shape", "out_h", "out_w",
        "xpt", "cols6", "cols2", "grad_out", "grad_cols2", "grad_cols6", "gxt",
    )

    def __init__(
        self,
        x_shape: Tuple[int, int, int, int],
        oc: int,
        kh: int,
        kw: int,
        stride: int,
        pad: int,
        dtype: np.dtype,
    ):
        n, c, h, w = x_shape
        self.x_shape = x_shape
        self.out_h, self.out_w = conv_output_size(h, w, kh, kw, stride, pad)
        oh, ow = self.out_h, self.out_w
        # Channel-first padded input; the zeroed border survives reuse
        # because every forward only rewrites the interior.
        self.xpt = np.zeros((c, n, h + 2 * pad, w + 2 * pad), dtype=dtype)
        self.cols6 = np.empty((c, kh, kw, n, oh, ow), dtype=dtype)
        self.cols2 = self.cols6.reshape(c * kh * kw, n * oh * ow)
        self.grad_out = np.empty((oc, n, oh, ow), dtype=dtype)
        self.grad_cols2 = np.empty_like(self.cols2)
        self.grad_cols6 = self.grad_cols2.reshape(c, kh, kw, n, oh, ow)
        self.gxt = np.empty((c, n, h + 2 * pad, w + 2 * pad), dtype=dtype)


class Conv2D(Layer):
    """2-D convolution over NCHW tensors using the im2col matrix-multiply form."""

    #: Workspaces kept per (shape, dtype), LRU-evicted; bounds per-layer
    #: buffer memory while covering the batch-size mix a micro-batching
    #: serving plane produces.
    _MAX_WORKSPACES = 8

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        seed: SeedLike = None,
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ):
        super().__init__(name, dtype=dtype)
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ConfigurationError("invalid kernel_size/stride/padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            initializers.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
                seed=seed,
                dtype=self.dtype,
            ),
            name=f"{self.name}.weight",
            dtype=self.dtype,
        )
        self.bias = (
            Parameter(
                initializers.zeros((out_channels,), dtype=self.dtype),
                name=f"{self.name}.bias",
                dtype=self.dtype,
            )
            if bias
            else None
        )
        self._local = threading.local()
        self._cache: Optional[_ConvWorkspace] = None

    def _on_dtype_change(self) -> None:
        self._local = threading.local()
        self._cache = None

    def __getstate__(self):
        # Workspaces are transient compute buffers: drop them when the model
        # is pickled (Sequential.to_bytes / clone / model-zoo persistence).
        state = self.__dict__.copy()
        state["_local"] = None
        state["_cache"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._local = threading.local()

    def _workspace(self, x_shape: Tuple[int, int, int, int], dtype: np.dtype) -> _ConvWorkspace:
        store: Dict[tuple, _ConvWorkspace] = getattr(self._local, "ws", None)
        if store is None:
            store = {}
            self._local.ws = store
        key = (x_shape, dtype)
        ws = store.pop(key, None)  # re-insert below: dict order is the LRU order
        if ws is None:
            if len(store) >= self._MAX_WORKSPACES:
                store.pop(next(iter(store)))
            ws = _ConvWorkspace(
                x_shape, self.out_channels, self.kernel_size, self.kernel_size,
                self.stride, self.padding, dtype,
            )
        store[key] = ws
        return ws

    def output_shape(self, h: int, w: int) -> Tuple[int, int]:
        k, s, p = self.kernel_size, self.stride, self.padding
        return conv_output_size(h, w, k, k, s, p)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        if x.ndim != 4:
            raise ValueError(f"Conv2D expects NCHW input, got shape {x.shape}")
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D {self.name!r}: expected {self.in_channels} channels, got {x.shape[1]}"
            )
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        ws = self._workspace(x.shape, x.dtype)
        oh, ow = ws.out_h, ws.out_w
        np.copyto(ws.xpt[:, :, p : p + h, p : p + w], x.transpose(1, 0, 2, 3))
        # im2col gather: one large strided slice copy per kernel offset.
        for ki in range(k):
            for kj in range(k):
                np.copyto(
                    ws.cols6[:, ki, kj],
                    ws.xpt[:, :, ki : ki + s * oh : s, kj : kj + s * ow : s],
                )
        w_col = self.weight.data.reshape(self.out_channels, -1)
        out = w_col @ ws.cols2  # (out_channels, N*oh*ow)
        if self.bias is not None:
            out += self.bias.data[:, None]
        out = np.ascontiguousarray(
            out.reshape(self.out_channels, n, oh, ow).transpose(1, 0, 2, 3)
        )
        # The workspace doubles as the backward cache; backward must follow
        # its own training forward (the Trainer's loop guarantees this).
        self._cache = ws if training else None
        return out

    def _backward_param_grads(self, grad_output: np.ndarray) -> np.ndarray:
        ws = self._cache
        if ws is None:
            raise RuntimeError("backward() called before a training forward pass")
        n = ws.x_shape[0]
        np.copyto(ws.grad_out, grad_output.transpose(1, 0, 2, 3))
        grad_flat = ws.grad_out.reshape(self.out_channels, n * ws.out_h * ws.out_w)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=1)
        self.weight.grad += (grad_flat @ ws.cols2.T).reshape(self.weight.data.shape)
        return grad_flat

    def backward_params_only(self, grad_output: np.ndarray) -> None:
        self._backward_param_grads(self._cast(grad_output))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_flat = self._backward_param_grads(self._cast(grad_output))
        ws = self._cache
        n, _, h, w = ws.x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        oh, ow = ws.out_h, ws.out_w
        w_col = self.weight.data.reshape(self.out_channels, -1)
        np.matmul(w_col.T, grad_flat, out=ws.grad_cols2)
        gx = ws.gxt
        gx.fill(0)
        g6 = ws.grad_cols6
        # col2im scatter: one strided slice-add per kernel offset (no add.at);
        # source and destination share the (c, n, ...) axis order.
        for ki in range(k):
            for kj in range(k):
                gx[:, :, ki : ki + s * oh : s, kj : kj + s * ow : s] += g6[:, ki, kj]
        # Copy out of the reusable workspace so callers may hold the gradient.
        return np.ascontiguousarray(gx[:, :, p : p + h, p : p + w].transpose(1, 0, 2, 3))

    def parameters(self) -> List[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class MaxPool2D(Layer):
    """Max pooling over non-overlapping windows of an NCHW tensor."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        super().__init__(name, dtype=dtype)
        if pool_size <= 0:
            raise ConfigurationError("pool_size must be positive")
        self.pool_size = pool_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p != 0 or w % p != 0:
            raise ValueError(
                f"MaxPool2D: spatial dims ({h}, {w}) must be divisible by pool_size={p}"
            )
        x_resh = x.reshape(n, c, h // p, p, w // p, p)
        out = x_resh.max(axis=(3, 5))
        if training:
            mask = x_resh == out[:, :, :, None, :, None]
            # Break ties so each window contributes exactly one gradient path.
            self._cache = (mask, x.shape)
        else:
            self._cache = None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before a training forward pass")
        mask, x_shape = self._cache
        n, c, h, w = x_shape
        grad = self._cast(grad_output)[:, :, :, None, :, None] * mask
        # Normalise ties: divide by the number of maxima per window.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        grad = grad / np.maximum(counts, 1)
        return grad.reshape(n, c, h, w)


# ---------------------------------------------------------------------------
# Shape utilities
# ---------------------------------------------------------------------------
class Flatten(Layer):
    """Flatten all dimensions but the batch dimension."""

    def __init__(self, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        super().__init__(name, dtype=dtype)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() called before forward()")
        return np.asarray(grad_output).reshape(self._shape)


class Reshape(Layer):
    """Reshape per-sample features to a target shape (excluding batch dim)."""

    def __init__(
        self,
        target_shape: Tuple[int, ...],
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ):
        super().__init__(name, dtype=dtype)
        self.target_shape = tuple(int(s) for s in target_shape)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        self._shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() called before forward()")
        return np.asarray(grad_output).reshape(self._shape)


# ---------------------------------------------------------------------------
# Activations
# ---------------------------------------------------------------------------
class ReLU(Layer):
    """``max(x, 0)``.

    The forward pass is a single ``np.maximum`` (no boolean mask is
    materialised); the backward mask is derived lazily from the cached input,
    so inference-only forwards — including folded MC-dropout probes — pay no
    mask cost at all.
    """

    def __init__(self, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        super().__init__(name, dtype=dtype)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        self._x = x if training else None
        return np.maximum(x, 0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before a training forward pass")
        return self._cast(grad_output) * (self._x > 0)


class LeakyReLU(Layer):
    """``x`` for positive inputs, ``negative_slope * x`` otherwise.

    For ``negative_slope < 1`` this equals ``max(x, negative_slope * x)`` —
    two vector ops, no boolean mask; the backward mask is derived lazily from
    the cached input (see :class:`ReLU`).
    """

    def __init__(
        self,
        negative_slope: float = 0.01,
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ):
        super().__init__(name, dtype=dtype)
        if not 0.0 <= negative_slope < 1.0:
            raise ConfigurationError("negative_slope must be in [0, 1)")
        self.negative_slope = float(negative_slope)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        self._x = x if training else None
        scaled = x * self.dtype.type(self.negative_slope)
        return np.maximum(x, scaled, out=scaled)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() called before a training forward pass")
        g = self._cast(grad_output)
        return np.where(self._x > 0, g, g * self.dtype.type(self.negative_slope))


class Sigmoid(Layer):
    def __init__(self, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        super().__init__(name, dtype=dtype)
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        exp_x = np.exp(x[~pos])
        out[~pos] = exp_x / (1.0 + exp_x)
        self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() called before forward()")
        return self._cast(grad_output) * self._out * (1.0 - self._out)


class Tanh(Layer):
    def __init__(self, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        super().__init__(name, dtype=dtype)
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(self._cast(x))
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() called before forward()")
        return self._cast(grad_output) * (1.0 - self._out**2)


class Softmax(Layer):
    """Row-wise softmax (used as the output of the CookieNetAE PDF head)."""

    def __init__(self, name: Optional[str] = None, dtype: Optional[DtypeLike] = None):
        super().__init__(name, dtype=dtype)
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._out = exp / exp.sum(axis=-1, keepdims=True)
        return self._out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() called before forward()")
        g = self._cast(grad_output)
        s = self._out
        dot = np.sum(g * s, axis=-1, keepdims=True)
        return s * (g - dot)


# ---------------------------------------------------------------------------
# Regularisation / normalisation
# ---------------------------------------------------------------------------
class Dropout(Layer):
    """Inverted dropout.

    In addition to its usual regularisation role this layer powers MC-dropout
    uncertainty quantification: calling the network with ``training=True`` (or
    via :func:`repro.nn.mc_dropout.mc_dropout_predict`) keeps dropout active at
    inference time so repeated stochastic forward passes give a predictive
    distribution.

    The random draw is always a float64 stream consumed row-major, so one
    draw over a ``(n_samples * batch, ...)`` folded input consumes the exact
    same numbers as ``n_samples`` sequential draws over ``(batch, ...)`` —
    the identity the batched MC-dropout path relies on.
    """

    def __init__(
        self,
        rate: float = 0.5,
        seed: SeedLike = None,
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ):
        super().__init__(name, dtype=dtype)
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def reseed(self, seed: SeedLike) -> None:
        """Replace the mask RNG.  Parallel MC-dropout / data-parallel replicas
        call this so each worker draws an independent, reproducible stream."""
        self._rng = default_rng(seed)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask *= x.dtype.type(1.0 / keep)
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output)
        return self._cast(grad_output) * self._mask


class BatchNorm1d(Layer):
    """Batch normalisation over the feature dimension of a 2-D input."""

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ):
        super().__init__(name, dtype=dtype)
        self.num_features = num_features
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(
            initializers.ones((num_features,), dtype=self.dtype),
            name=f"{self.name}.gamma",
            dtype=self.dtype,
        )
        self.beta = Parameter(
            initializers.zeros((num_features,), dtype=self.dtype),
            name=f"{self.name}.beta",
            dtype=self.dtype,
        )
        self.running_mean = np.zeros(num_features, dtype=self.dtype)
        self.running_var = np.ones(num_features, dtype=self.dtype)
        self._cache = None

    def _on_dtype_change(self) -> None:
        self.running_mean = self.running_mean.astype(self.dtype)
        self.running_var = self.running_var.astype(self.dtype)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = self._cast(x)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (batch, {self.num_features}) input, got {x.shape}"
            )
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean *= self.momentum
            self.running_mean += (1.0 - self.momentum) * mean
            self.running_var *= self.momentum
            self.running_var += (1.0 - self.momentum) * var
            x_hat = (x - mean) / np.sqrt(var + self.eps)
            self._cache = (x_hat, var)
        else:
            x_hat = (x - self.running_mean) / np.sqrt(self.running_var + self.eps)
            self._cache = None
        return self.gamma.data * x_hat + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before a training forward pass")
        x_hat, var = self._cache
        g = self._cast(grad_output)
        n = g.shape[0]
        self.gamma.grad += np.sum(g * x_hat, axis=0)
        self.beta.grad += np.sum(g, axis=0)
        dxhat = g * self.gamma.data
        inv_std = 1.0 / np.sqrt(var + self.eps)
        return (
            inv_std / n
        ) * (n * dxhat - dxhat.sum(axis=0) - x_hat * np.sum(dxhat * x_hat, axis=0))

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state[f"{self.name}.running_mean"] = self.running_mean.copy()
        state[f"{self.name}.running_var"] = self.running_var.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(
            {k: v for k, v in state.items() if k in (self.gamma.name, self.beta.name)}
        )
        if f"{self.name}.running_mean" in state:
            self.running_mean = self._cast(state[f"{self.name}.running_mean"]).copy()
        if f"{self.name}.running_var" in state:
            self.running_var = self._cast(state[f"{self.name}.running_var"]).copy()
