"""Fig. 2 — prediction error and MC-dropout uncertainty vs. experiment time.

The paper trains BraggNN on the first phase of an HEDM experiment and shows
prediction error (left axis) and the 95 % MC-dropout confidence bound (right
axis) rising once sample deformation changes the data distribution (around
scan 444 in the paper; at the configured phase change here).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_braggnn
from repro.monitoring import DegradationDetector
from repro.nn.trainer import Trainer, TrainingConfig

from common import bragg_experiment, print_table


@pytest.mark.figure("fig2")
def test_fig02_model_degradation_over_time(benchmark, report_sink):
    seed = 0
    experiment = bragg_experiment(n_scans=20, change_at=12, peaks_per_scan=100, seed=seed)

    # Train on the early phase only (the paper trains up to scan 402).
    x, y = experiment.stacked(range(4))
    model = build_braggnn(width=4, seed=seed)
    Trainer(model).fit((x, y), val=(x, y),
                       config=TrainingConfig(epochs=15, batch_size=32, lr=3e-3, seed=seed))

    detector = DegradationDetector(model, baseline_scans=4, error_factor=1.5,
                                   mc_samples=8, error_metric="pixel")

    def evaluate_all_scans():
        detector.records.clear()
        for i in range(4, 20):
            scan = experiment.scan(i)
            detector.evaluate_scan(i, scan.images, scan.normalized_centers)
        return detector.series()

    series = benchmark.pedantic(evaluate_all_scans, rounds=1, iterations=1)

    rows = list(zip(series["scan_index"], series["prediction_error"],
                    series["uncertainty"], series["degraded"]))
    print_table(
        "Fig. 2 — prediction error & uncertainty vs. scan index (phase change at scan 12)",
        ["scan", "pred_error_px", "uncertainty", "degraded"],
        rows,
        sink=report_sink,
    )

    errors = np.array(series["prediction_error"])
    unc = np.array(series["uncertainty"])
    split = 12 - 4  # scans 4..11 are phase 0, 12..19 phase 1
    # Shape check: both error and uncertainty increase after the phase change,
    # and degradation is flagged only after it.
    assert errors[split:].mean() > errors[:split].mean()
    assert unc[split:].mean() > unc[:split].mean()
    onset = detector.degradation_onset()
    assert onset is not None and onset >= 12
