#!/usr/bin/env python
"""CookieBox scenario: model indexing and reuse for a slowly drifting detector.

The CookieBox (LCLS) produces energy-histogram images whose spectral content
drifts slowly as the photon energy and laser configuration change.  This
example builds a Zoo of CookieNetAE models — one per experimental epoch — and
shows that fairMS's JSD-based ranking picks the foundation model whose
training data best matches a new epoch, which fine-tunes to the target loss in
fewer epochs than the median/worst choices or retraining from scratch
(the Fig. 13 behaviour).

Run with:  python examples/cookiebox_model_reuse.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DatasetDistribution, FairMS, ModelZoo
from repro.core.fairds import FairDS
from repro.datasets import CookieBoxDataset, DriftSchedule
from repro.embedding import PCAEmbedder
from repro.models import build_cookienetae
from repro.nn.trainer import Trainer, TrainingConfig


def main() -> None:
    seed = 0
    n_channels, n_bins = 8, 32
    # Slow spectral drift across 12 scans.
    schedule = DriftSchedule(
        n_scans=12,
        drift_per_scan={"energy_shift": 1.5, "noise_level": 0.002},
        jitter=0.02,
        seed=seed,
    )
    data = CookieBoxDataset(schedule, samples_per_scan=80, n_channels=n_channels,
                            n_bins=n_bins, seed=seed)

    # fairDS over all historical scans gives the cluster space used for indexing.
    hist_x, hist_y = data.stacked(range(8))
    fairds = FairDS(PCAEmbedder(embedding_dim=6), n_clusters=6, seed=seed)
    fairds.fit(hist_x, hist_y.reshape(hist_y.shape[0], -1))

    # Build a Zoo: one CookieNetAE per pair of scans (4 epochs of the experiment).
    zoo = ModelZoo()
    config = TrainingConfig(epochs=10, batch_size=32, lr=2e-3, seed=seed)
    print("Training Zoo models on successive experimental epochs...")
    for epoch, scans in enumerate([(0, 1), (2, 3), (4, 5), (6, 7)]):
        x, y = data.stacked(scans)
        model = build_cookienetae(n_channels=n_channels, n_bins=n_bins, hidden=64,
                                  latent=16, seed=seed + epoch)
        Trainer(model).fit((x, y), val=(x, y), config=config)
        dist = fairds.dataset_distribution(x, label=f"epoch{epoch}")
        zoo.add(model, dist, name=f"cookienetae-epoch{epoch}", metrics={}, scans=list(scans))
        print(f"  epoch {epoch}: scans {scans} -> Zoo")

    # A new scan arrives (scan 9, closest in drift to the last epoch).
    new_x, new_y = data.stacked([9])
    new_dist = fairds.dataset_distribution(new_x, label="scan9")
    fairms = FairMS(zoo, distance_threshold=0.9)
    ranking = fairms.rank(new_dist)
    print("\nZoo ranking for scan 9 (smaller JSD = more similar training data):")
    for rec in ranking:
        print(f"  {rec.record.name:24s} JSD={rec.distance:.3f}")

    # Fine-tune best / median / worst / scratch to the same target loss.
    target = 1.05 * _best_achievable(new_x, new_y, n_channels, n_bins, seed)
    print(f"\nConvergence target (validation loss): {target:.5f}")
    config_ft = TrainingConfig(epochs=40, batch_size=32, lr=2e-3, target_loss=target, seed=seed)
    results = {}
    choices = {
        "FineTune-B": ranking[0],
        "FineTune-M": ranking[len(ranking) // 2],
        "FineTune-W": ranking[-1],
    }
    for name, rec in choices.items():
        model = fairms.load(rec)
        hist = Trainer(model).fine_tune((new_x, new_y), val=(new_x, new_y),
                                        config=config_ft, lr_scale=0.5)
        results[name] = hist.converged_epoch or config_ft.epochs
    scratch = build_cookienetae(n_channels=n_channels, n_bins=n_bins, hidden=64,
                                latent=16, seed=seed + 99)
    hist = Trainer(scratch).fit((new_x, new_y), val=(new_x, new_y), config=config_ft)
    results["Retrain"] = hist.converged_epoch or config_ft.epochs

    print("\nEpochs to reach the target loss:")
    for name in ("FineTune-B", "FineTune-M", "FineTune-W", "Retrain"):
        print(f"  {name:12s} {results[name]} epochs")


def _best_achievable(x, y, n_channels, n_bins, seed) -> float:
    """Loss achieved by a generously trained reference model; defines the target."""
    model = build_cookienetae(n_channels=n_channels, n_bins=n_bins, hidden=64, latent=16, seed=seed)
    hist = Trainer(model).fit(
        (x, y), val=(x, y), config=TrainingConfig(epochs=25, batch_size=32, lr=2e-3, seed=seed)
    )
    return hist.best_val_loss


if __name__ == "__main__":
    main()
