"""Setup shim: allows `python setup.py develop` / legacy editable installs
in offline environments where the `wheel` package (needed for PEP 660
editable wheels) is unavailable.  Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
