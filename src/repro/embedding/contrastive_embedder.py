"""Contrastive (SimCLR-style) embedder."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.dataio.transforms import bragg_augmentation
from repro.embedding.base import Embedder, register_embedder
from repro.models.contrastive import SimCLREncoder
from repro.utils.errors import NotFittedError
from repro.utils.rng import SeedLike


@register_embedder
class ContrastiveEmbedder(Embedder):
    """Embeds samples with an encoder trained by the NT-Xent contrastive loss."""

    name = "contrastive"

    def __init__(
        self,
        embedding_dim: int = 16,
        hidden: int = 64,
        epochs: int = 15,
        batch_size: int = 64,
        lr: float = 1e-3,
        temperature: float = 0.5,
        augment: Optional[Callable] = None,
        seed: SeedLike = 0,
    ):
        super().__init__(embedding_dim)
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.temperature = float(temperature)
        self.augment = augment or bragg_augmentation
        self.seed = seed
        self._model: Optional[SimCLREncoder] = None

    def fit(self, x: np.ndarray, **kwargs) -> "ContrastiveEmbedder":
        flat = self.flatten(x)
        self._model = SimCLREncoder(
            flat.shape[1],
            embedding_dim=self.embedding_dim,
            hidden=self.hidden,
            temperature=self.temperature,
            seed=self.seed,
        )
        self._model.fit(
            flat, self.augment, epochs=self.epochs, batch_size=self.batch_size,
            lr=self.lr, seed=self.seed,
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise NotFittedError("ContrastiveEmbedder.transform() called before fit()")
        return self._model.encode(self.flatten(x))
