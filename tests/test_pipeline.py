"""Tests for the async DAG pipeline engine (ordering, fault tolerance, resume)."""

import threading
import time

import numpy as np
import pytest

from repro.storage.documentdb import DocumentDB
from repro.utils.errors import ConfigurationError, PipelineError, StepTimeoutError
from repro.workflow.flows import Flow
from repro.workflow.pipeline import (
    COMPLETED,
    FAILED,
    RESUMED,
    SKIPPED,
    CheckpointStore,
    Pipeline,
    PipelineStep,
)


def _recorder():
    """A thread-safe completion log: (list, fn-factory)."""
    log = []
    lock = threading.Lock()

    def make(name, value=None):
        def fn(ctx):
            with lock:
                log.append(name)
            return value

        return fn

    return log, make


# -- graph validation -------------------------------------------------------------
def test_duplicate_step_names_rejected():
    p = Pipeline("p").add_step("a", lambda ctx: 1).add_step("a", lambda ctx: 2)
    with pytest.raises(ConfigurationError, match="duplicate"):
        p.validate()


def test_unknown_dependency_rejected():
    p = Pipeline("p").add_step("a", lambda ctx: 1, depends_on=("ghost",))
    with pytest.raises(ConfigurationError, match="unknown"):
        p.validate()


def test_self_dependency_rejected():
    with pytest.raises(ConfigurationError):
        PipelineStep(name="a", fn=lambda ctx: 1, depends_on=("a",))


def test_cycle_detected():
    p = (
        Pipeline("p")
        .add_step("a", lambda ctx: 1, depends_on=("c",))
        .add_step("b", lambda ctx: 1, depends_on=("a",))
        .add_step("c", lambda ctx: 1, depends_on=("b",))
    )
    with pytest.raises(ConfigurationError, match="cycle"):
        p.validate()


def test_step_parameter_validation():
    with pytest.raises(ConfigurationError):
        PipelineStep(name="", fn=lambda ctx: 1)
    with pytest.raises(ConfigurationError):
        PipelineStep(name="a", fn=lambda ctx: 1, retries=-1)
    with pytest.raises(ConfigurationError):
        PipelineStep(name="a", fn=lambda ctx: 1, timeout_s=0)
    with pytest.raises(ConfigurationError):
        PipelineStep(name="a", fn=lambda ctx: 1, retry_delay_s=-0.1)
    with pytest.raises(ConfigurationError):
        Pipeline("")
    with pytest.raises(ConfigurationError):
        Pipeline("p", max_workers=0)


# -- execution order --------------------------------------------------------------
def test_dependencies_execute_before_dependents():
    log, make = _recorder()
    p = (
        Pipeline("diamond", max_workers=4)
        .add_step("a", make("a"))
        .add_step("b", make("b"), depends_on=("a",))
        .add_step("c", make("c"), depends_on=("a",))
        .add_step("d", make("d"), depends_on=("b", "c"))
    )
    result = p.run()
    assert result.succeeded
    assert set(log) == {"a", "b", "c", "d"}
    assert log.index("a") < log.index("b")
    assert log.index("a") < log.index("c")
    assert log.index("d") == 3


def test_independent_steps_run_concurrently():
    barrier = threading.Barrier(2, timeout=5.0)

    def wait_at_barrier(ctx):
        barrier.wait()  # only passes if both steps are in flight at once
        return True

    p = (
        Pipeline("parallel", max_workers=2)
        .add_step("left", wait_at_barrier)
        .add_step("right", wait_at_barrier)
    )
    result = p.run()
    assert result.succeeded


def test_outputs_flow_through_context():
    p = (
        Pipeline("ctx")
        .add_step("double", lambda ctx: ctx["x"] * 2, output_key="doubled")
        .add_step("plus_one", lambda ctx: ctx["doubled"] + 1,
                  depends_on=("double",), output_key="result")
    )
    result = p.run({"x": 5})
    assert result.succeeded
    assert result.context["result"] == 11
    assert result.order == ["double", "plus_one"]


# -- failure semantics ------------------------------------------------------------
def test_failure_skips_transitive_dependents_but_independent_branch_completes():
    log, make = _recorder()
    p = (
        Pipeline("partial", max_workers=2)
        .add_step("boom", lambda ctx: 1 / 0)
        .add_step("child", make("child"), depends_on=("boom",))
        .add_step("grandchild", make("grandchild"), depends_on=("child",))
        .add_step("island", make("island"))
        .add_step("island2", make("island2"), depends_on=("island",))
    )
    result = p.run()
    assert not result.succeeded
    assert result.statuses["boom"] == FAILED
    assert result.statuses["child"] == SKIPPED
    assert result.statuses["grandchild"] == SKIPPED
    assert result.statuses["island"] == COMPLETED
    assert result.statuses["island2"] == COMPLETED
    assert isinstance(result.errors["boom"], ZeroDivisionError)
    assert result.failed_steps == ["boom"]
    assert set(result.skipped_steps) == {"child", "grandchild"}
    assert "child" not in log and "grandchild" not in log


def test_raise_on_error_reraises_original_exception():
    p = Pipeline("p").add_step("boom", lambda ctx: 1 / 0)
    with pytest.raises(ZeroDivisionError):
        p.run(raise_on_error=True)


def test_retries_rerun_failed_attempts():
    attempts = {"n": 0}

    def flaky(ctx):
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise RuntimeError("transient")
        return "ok"

    p = Pipeline("retrying").add_step("flaky", flaky, output_key="out", retries=3)
    result = p.run()
    assert result.succeeded
    assert result.context["out"] == "ok"
    assert result.step_attempts["flaky"] == 3


def test_retries_exhausted_reports_failure():
    p = Pipeline("p").add_step("always", lambda ctx: 1 / 0, retries=2)
    result = p.run()
    assert result.statuses["always"] == FAILED
    assert result.step_attempts["always"] == 3


# -- timeouts ---------------------------------------------------------------------
def test_step_timeout_fails_step_and_skips_dependents():
    log, make = _recorder()
    p = (
        Pipeline("timeout", max_workers=2)
        .add_step("slow", lambda ctx: time.sleep(5.0), timeout_s=0.05)
        .add_step("after", make("after"), depends_on=("slow",))
        .add_step("island", make("island"))
    )
    start = time.perf_counter()
    result = p.run()
    assert time.perf_counter() - start < 3.0  # did not wait out the sleep
    assert result.statuses["slow"] == FAILED
    assert isinstance(result.errors["slow"], StepTimeoutError)
    assert isinstance(result.errors["slow"], PipelineError)
    assert result.statuses["after"] == SKIPPED
    assert result.statuses["island"] == COMPLETED


def test_timeout_attempt_is_retriable():
    attempts = {"n": 0}

    def slow_then_fast(ctx):
        attempts["n"] += 1
        if attempts["n"] == 1:
            time.sleep(5.0)
        return "recovered"

    p = Pipeline("p").add_step("s", slow_then_fast, timeout_s=0.2, retries=1,
                               output_key="out")
    result = p.run()
    assert result.succeeded
    assert result.context["out"] == "recovered"
    assert result.step_attempts["s"] == 2


# -- checkpointed resume ----------------------------------------------------------
def _counting_pipeline(store, counters, fail_step=None):
    """a -> b -> c -> d, each counting invocations; fail_step raises."""

    def step(name, value):
        def fn(ctx):
            counters[name] = counters.get(name, 0) + 1
            if name == fail_step:
                raise RuntimeError(f"killed at {name}")
            return value

        return fn

    p = Pipeline("resumable", checkpoints=store)
    p.add_step("a", step("a", np.arange(6).reshape(2, 3)), output_key="a_out")
    p.add_step("b", step("b", {"k": 1}), depends_on=("a",), output_key="b_out")
    p.add_step("c", step("c", "cc"), depends_on=("b",), output_key="c_out")
    p.add_step("d", step("d", 4), depends_on=("c",), output_key="d_out")
    return p


def test_resume_skips_checkpointed_steps_and_restores_outputs():
    db = DocumentDB()
    store = CheckpointStore(db)
    counters = {}

    first = _counting_pipeline(store, counters, fail_step="c").run(run_id="run-1")
    assert not first.succeeded
    assert first.statuses["a"] == COMPLETED and first.statuses["b"] == COMPLETED
    assert first.statuses["c"] == FAILED and first.statuses["d"] == SKIPPED

    second = _counting_pipeline(store, counters).run(run_id="run-1")
    assert second.succeeded
    # a and b were not re-executed; c and d ran for the first/second time.
    assert counters == {"a": 1, "b": 1, "c": 2, "d": 1}
    assert second.resumed == ["a", "b"]
    assert second.statuses["a"] == RESUMED and second.statuses["b"] == RESUMED
    # Restored outputs are available to the re-run steps and the final context.
    assert np.array_equal(second.context["a_out"], np.arange(6).reshape(2, 3))
    assert second.context["b_out"] == {"k": 1}
    assert second.context["d_out"] == 4


def test_resume_survives_database_save_and_load(tmp_path):
    """Simulate process death: checkpoints persisted to disk, reloaded fresh."""
    db = DocumentDB()
    store = CheckpointStore(db)
    counters = {}
    _counting_pipeline(store, counters, fail_step="d").run(run_id="run-9")
    db.save(str(tmp_path / "ckpt.db"))

    db2 = DocumentDB.load(str(tmp_path / "ckpt.db"))
    store2 = CheckpointStore(db2)
    counters2 = {}
    result = _counting_pipeline(store2, counters2).run(run_id="run-9")
    assert result.succeeded
    assert counters2 == {"d": 1}  # only the failed step re-ran
    assert result.resumed == ["a", "b", "c"]
    assert np.array_equal(result.context["a_out"], np.arange(6).reshape(2, 3))


def test_runs_are_isolated_by_run_id():
    store = CheckpointStore()
    counters = {}
    _counting_pipeline(store, counters).run(run_id="run-A")
    _counting_pipeline(store, counters).run(run_id="run-B")
    assert counters == {"a": 2, "b": 2, "c": 2, "d": 2}


def test_without_run_id_nothing_is_checkpointed():
    store = CheckpointStore()
    counters = {}
    _counting_pipeline(store, counters).run()
    assert store.collection.count() == 0


def test_non_checkpointed_step_reruns_on_resume():
    store = CheckpointStore()
    counters = {"side": 0}

    def side_effect(ctx):
        counters["side"] += 1
        return counters["side"]

    def build(fail=False):
        p = Pipeline("fx", checkpoints=store)
        p.add_step("side", side_effect, output_key="s", checkpoint=False)
        p.add_step("tail", (lambda ctx: 1 / 0) if fail else (lambda ctx: "ok"),
                   depends_on=("side",), output_key="t")
        return p

    build(fail=True).run(run_id="r")
    result = build().run(run_id="r")
    assert result.succeeded
    assert counters["side"] == 2  # re-applied despite being complete before
    assert result.resumed == []


def test_checkpoint_clear():
    store = CheckpointStore()
    counters = {}
    _counting_pipeline(store, counters).run(run_id="run-X")
    assert store.collection.count() == 4
    assert store.clear("resumable", "run-X") == 4
    _counting_pipeline(store, counters).run(run_id="run-X")
    assert counters["a"] == 2  # nothing resumed after the clear


def test_checkpoint_store_distinguishes_none_output():
    store = CheckpointStore()
    store.record("p", "r", "s", value=None, has_output=True)
    entry = store.completed("p", "r")["s"]
    assert entry.has_output and entry.value is None


# -- Flow adapter -----------------------------------------------------------------
def test_flow_is_backed_by_pipeline():
    flow = Flow("legacy")
    flow.add_step("one", lambda ctx: 1, output_key="a")
    flow.add_step("two", lambda ctx: ctx["a"] + 1, output_key="b")
    pipeline = flow.as_pipeline()
    assert pipeline.validate() == ["one", "two"]
    assert pipeline.step("two").depends_on == ("one",)
    result = flow.run()
    assert result.succeeded and result.context["b"] == 2


def test_flow_supports_step_timeouts():
    flow = Flow("slow").add_step("s", lambda ctx: time.sleep(5.0), timeout_s=0.05)
    result = flow.run()
    assert not result.succeeded
    assert result.failed_step == "s"
    assert isinstance(result.error, StepTimeoutError)


def test_flow_as_pipeline_resumes_from_checkpoints():
    store = CheckpointStore()
    calls = {"head": 0}

    def head(ctx):
        calls["head"] += 1
        return "h"

    def build(fail=False):
        flow = Flow("resumable-flow")
        flow.add_step("head", head, output_key="h")
        flow.add_step("tail", (lambda ctx: 1 / 0) if fail else (lambda ctx: ctx["h"] + "!"),
                      output_key="t")
        return flow.as_pipeline(checkpoints=store)

    build(fail=True).run(run_id="f1")
    result = build().run(run_id="f1")
    assert result.succeeded
    assert calls["head"] == 1
    assert result.context["t"] == "h!"


def test_reserved_resumed_context_key():
    from repro.workflow.pipeline import RESUMED_CONTEXT_KEY

    p = Pipeline("p").add_step("a", lambda ctx: 1, output_key=RESUMED_CONTEXT_KEY)
    with pytest.raises(ConfigurationError, match="reserved"):
        p.validate()
    # Non-checkpointed runs (incl. every legacy Flow.run) never see the key.
    result = Pipeline("q").add_step("a", lambda ctx: 1, output_key="x").run({"seed": 0})
    assert result.context == {"seed": 0, "x": 1}
    assert RESUMED_CONTEXT_KEY not in Flow("f").add_step("s", lambda ctx: 2, output_key="y").run().context
    # Checkpointed runs expose it (empty on a fresh run).
    store = CheckpointStore()
    fresh = Pipeline("r", checkpoints=store).add_step("a", lambda ctx: 1).run(run_id="R")
    assert fresh.context[RESUMED_CONTEXT_KEY] == []


def test_flow_with_duplicate_step_names_keeps_legacy_behaviour():
    """The old linear Flow never required unique names; the adapter must not
    regress that (duplicates run in order, last occurrence wins in timings)."""
    calls = []
    flow = Flow("dups")
    flow.add_step("s", lambda ctx: calls.append("first") or 1, output_key="a")
    flow.add_step("s", lambda ctx: calls.append("second") or ctx["a"] + 1, output_key="b")
    flow.add_step("s", lambda ctx: calls.append("third") or ctx["b"] + 1, output_key="c")
    result = flow.run()
    assert result.succeeded
    assert calls == ["first", "second", "third"]
    assert result.context["c"] == 3
    assert list(result.step_times) == ["s"] and result.step_attempts == {"s": 1}


def test_flow_duplicate_name_failure_reports_the_flow_name():
    flow = Flow("dups")
    flow.add_step("s", lambda ctx: 1)
    flow.add_step("s", lambda ctx: 1 / 0)
    result = flow.run()
    assert not result.succeeded
    assert result.failed_step == "s"
    assert isinstance(result.error, ZeroDivisionError)


def test_mid_chain_non_checkpointed_step_does_not_block_downstream_resume():
    """a -> fx(checkpoint=False) -> b -> c: resuming after a failure at c must
    resume a and b (fx re-runs by design; it does not stale b's checkpoint)."""
    store = CheckpointStore()
    counters = {"a": 0, "fx": 0, "b": 0, "c": 0}

    def counting(name, fail=False):
        def fn(ctx):
            counters[name] += 1
            if fail:
                raise RuntimeError("boom")
            return name

        return fn

    def build(fail_c):
        p = Pipeline("fxchain", checkpoints=store)
        p.add_step("a", counting("a"), output_key="a")
        p.add_step("fx", counting("fx"), depends_on=("a",), checkpoint=False)
        p.add_step("b", counting("b"), depends_on=("fx",), output_key="b")
        p.add_step("c", counting("c", fail=fail_c), depends_on=("b",), output_key="c")
        return p

    assert not build(fail_c=True).run(run_id="R").succeeded
    result = build(fail_c=False).run(run_id="R")
    assert result.succeeded
    assert result.resumed == ["a", "b"]
    assert counters == {"a": 1, "fx": 2, "b": 1, "c": 2}
    assert result.context["b"] == "b" and result.context["c"] == "c"


def test_flow_duplicate_names_with_hash_literals_do_not_collide():
    """User step names containing '#' must not collide with the adapter's
    duplicate-disambiguation scheme."""
    calls = []
    flow = Flow("hashy")
    flow.add_step("a", lambda ctx: calls.append(1))
    flow.add_step("a#2", lambda ctx: calls.append(2))
    flow.add_step("a", lambda ctx: calls.append(3))
    result = flow.run()
    assert result.succeeded
    assert calls == [1, 2, 3]
    assert set(result.step_times) == {"a", "a#2"}


def test_failed_rerunning_step_skips_pending_descendants_through_resumed_steps():
    """a -> fx(checkpoint=False) -> b -> c -> d, crash at d: on resume fx
    re-runs and fails permanently — d (pending) must be SKIPPED even though
    its direct dependency c was resumed, and its side effect must not fire."""
    store = CheckpointStore()
    ran = []

    def step(name, fail=False):
        def fn(ctx):
            ran.append(name)
            if fail:
                raise RuntimeError(f"{name} failed")
            return name

        return fn

    def build(fx_fails, d_fails):
        p = Pipeline("skipchain", checkpoints=store)
        p.add_step("a", step("a"), output_key="a")
        p.add_step("fx", step("fx", fail=fx_fails), depends_on=("a",), checkpoint=False)
        p.add_step("b", step("b"), depends_on=("fx",), output_key="b")
        p.add_step("c", step("c"), depends_on=("b",), output_key="c")
        p.add_step("d", step("d", fail=d_fails), depends_on=("c",), output_key="d")
        return p

    assert not build(fx_fails=False, d_fails=True).run(run_id="R").succeeded
    ran.clear()
    result = build(fx_fails=True, d_fails=False).run(run_id="R")
    assert not result.succeeded
    assert result.statuses["fx"] == FAILED
    assert result.statuses["b"] == RESUMED and result.statuses["c"] == RESUMED
    assert result.statuses["d"] == SKIPPED  # no side effect despite resumed parent
    assert ran == ["fx"]


def test_pending_step_waits_for_rerunning_ancestor_through_resumed_chain():
    """On resume, a pending descendant must execute AFTER a re-running
    checkpoint=False ancestor, not concurrently with it."""
    store = CheckpointStore()
    order_log = []
    lock = threading.Lock()

    def step(name, fail=False, delay=0.0):
        def fn(ctx):
            if delay:
                time.sleep(delay)
            with lock:
                order_log.append(name)
            if fail:
                raise RuntimeError("boom")
            return name

        return fn

    def build(d_fails, fx_delay=0.0):
        p = Pipeline("orderchain", max_workers=4, checkpoints=store)
        p.add_step("a", step("a"), output_key="a")
        p.add_step("fx", step("fx", delay=fx_delay), depends_on=("a",), checkpoint=False)
        p.add_step("b", step("b"), depends_on=("fx",), output_key="b")
        p.add_step("d", step("d", fail=d_fails), depends_on=("b",), output_key="d")
        return p

    assert not build(d_fails=True).run(run_id="S").succeeded
    order_log.clear()
    result = build(d_fails=False, fx_delay=0.1).run(run_id="S")
    assert result.succeeded
    assert order_log == ["fx", "d"]  # d waited out fx's re-run


def test_checkpoint_write_failure_degrades_durability_but_not_the_run():
    store = CheckpointStore()
    unpicklable = threading.Lock()
    p = (
        Pipeline("badckpt", checkpoints=store)
        .add_step("a", lambda ctx: unpicklable, output_key="a")
        .add_step("b", lambda ctx: "ok", depends_on=("a",), output_key="b")
    )
    result = p.run(run_id="R")  # must not raise despite the pickle failure
    assert result.succeeded
    assert result.context["b"] == "ok"
    # Only b's checkpoint landed; a will simply re-run on resume.
    assert set(store.completed("badckpt", "R")) == {"b"}
