"""Clients for the network serving plane: sync pooled + asyncio multiplexed.

:class:`NetworkClient` is the blocking client: a small pool of persistent
connections (one request in flight per connection), per-request deadlines,
and retries with exponential backoff and full jitter on *transient* faults —
dropped connections, connect refusals, and typed ``overloaded`` /
``unavailable`` / ``closed`` errors (the server's backpressure and
routing-gap signals).  Non-transient typed errors (``unknown_op``,
``bad_request``, ``internal``, ``frame_too_large``) raise
:class:`~repro.utils.errors.RemoteError` immediately.  Retries assume the
serving operations are idempotent reads (predict / lookup / query) — which
everything the serving plane exposes is; a dropped connection cannot tell
the client whether the server executed the request.

:class:`AsyncNetworkClient` multiplexes many concurrent requests over one
connection, correlating responses to callers by request id (responses may
arrive in any order — the server completes batches as replicas finish).  A
``null``-id error frame (the server could not even parse the offending
frame) fails the oldest pending request, matching the server's
read-loop ordering.  The open-loop network benchmark drives load through
this client so a slow response never blocks issuing the next request.

Every deadline is end-to-end: it bounds connect + send + server time +
receive across *all* retries, and the remaining budget rides each request as
``deadline_ms`` so the server can fail already-expired work fast.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    async_read_frame,
    decode,
    encode,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.utils.errors import (
    ConfigurationError,
    DeadlineExceededError,
    FrameTooLargeError,
    NetworkError,
    RemoteError,
)
from repro.utils.logging import get_logger

logger = get_logger("repro.net.client")

__all__ = ["NetworkClient", "AsyncNetworkClient", "RETRIABLE_ERROR_TYPES"]

#: Typed server errors worth retrying: transient backpressure/routing gaps.
RETRIABLE_ERROR_TYPES = frozenset({"overloaded", "unavailable", "closed"})


def _backoff_s(attempt: int, base_s: float, cap_s: float, rng: random.Random) -> float:
    """Exponential backoff with full jitter (attempt counts from 0)."""
    return rng.uniform(0.0, min(cap_s, base_s * (2 ** attempt)))


def _raise_remote(error: Dict[str, Any]) -> None:
    raise RemoteError(str(error.get("type", "internal")),
                      str(error.get("message", "")))


class NetworkClient:
    """Blocking client with connection pooling, retries, and deadlines.

    Parameters
    ----------
    host / port:
        Server address (``NetworkServer.address``).
    pool_size:
        Max idle connections kept for reuse.
    retries:
        Extra attempts after the first on transient faults.
    timeout_s:
        Default end-to-end deadline per :meth:`call` (override per call).
    backoff_base_s / backoff_cap_s:
        Jittered exponential backoff between attempts.
    rng:
        Injectable randomness for deterministic backoff in tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        retries: int = 3,
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 0.5,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise ConfigurationError("retries must be an integer >= 0")
        if not isinstance(pool_size, int) or isinstance(pool_size, bool) or pool_size < 1:
            raise ConfigurationError("pool_size must be an integer >= 1")
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.host = host
        self.port = port
        self.retries = retries
        self.timeout_s = timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_frame_bytes = max_frame_bytes
        self._rng = rng or random.Random()
        self._pool: List[socket.socket] = []
        self._pool_size = pool_size
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    # -- pool --------------------------------------------------------------------
    def _acquire(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise NetworkError("client is closed")
            if self._pool:
                return self._pool.pop()
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _release(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    # -- calls -------------------------------------------------------------------
    def call(self, op: str, payload: Any = None, tenant: Optional[str] = None,
             timeout: Optional[float] = None) -> Any:
        """One request/response; retries transient faults inside the deadline.

        Raises :class:`DeadlineExceededError` when the end-to-end budget is
        spent, :class:`RemoteError` on non-transient typed errors, and
        :class:`NetworkError` when retries are exhausted on transport faults.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout_s)
        request = {
            "id": None,  # stamped per attempt
            "op": op,
            "payload": encode(payload),
            "tenant": tenant,
            "deadline_ms": None,
        }
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"deadline spent after {attempt} attempt(s) calling {op!r}"
                ) from last_exc
            try:
                return self._attempt(dict(request), remaining)
            except RemoteError as exc:
                if exc.error_type == "deadline_exceeded":
                    raise DeadlineExceededError(str(exc)) from exc
                if exc.error_type not in RETRIABLE_ERROR_TYPES:
                    raise
                last_exc = exc
            except (ConnectionError, TimeoutError, OSError) as exc:
                if isinstance(exc, socket.timeout):
                    raise DeadlineExceededError(
                        f"no response to {op!r} within the deadline"
                    ) from exc
                last_exc = exc
            if attempt < self.retries:
                pause = _backoff_s(attempt, self.backoff_base_s,
                                   self.backoff_cap_s, self._rng)
                pause = min(pause, max(0.0, deadline - time.monotonic()))
                if pause:
                    time.sleep(pause)
        raise NetworkError(
            f"calling {op!r} failed after {self.retries + 1} attempt(s): {last_exc}"
        ) from last_exc

    def _attempt(self, request: Dict[str, Any], remaining_s: float) -> Any:
        request_id = next(self._ids)
        request["id"] = request_id
        request["deadline_ms"] = remaining_s * 1000.0
        sock = self._acquire()
        try:
            sock.settimeout(remaining_s)
            write_frame(sock, request, self.max_frame_bytes)
            while True:
                response = read_frame(sock, self.max_frame_bytes)
                rid = response.get("id")
                if rid is not None and rid != request_id:
                    # stale response of an abandoned earlier attempt on this
                    # pooled connection; skip to ours
                    continue
                break
        except BaseException:
            # any failure mid-exchange poisons the connection: close, don't pool
            try:
                sock.close()
            except OSError:
                pass
            raise
        self._release(sock)
        if response.get("ok"):
            return decode(response.get("result"))
        _raise_remote(response.get("error") or {})

    def ping(self, timeout: Optional[float] = None) -> bool:
        """True when the server answers at all (any typed error counts as
        alive — ``unknown_op`` proves the full request path works)."""
        try:
            self.call("__ping__", None, timeout=timeout if timeout is not None else 2.0)
            return True
        except RemoteError:
            return True
        except NetworkError:
            return False

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncNetworkClient:
    """Asyncio client multiplexing concurrent calls over one connection.

    Use as ``async with AsyncNetworkClient(host, port) as client`` (or await
    :meth:`connect` explicitly).  :meth:`call` may run from many tasks at
    once; responses are matched to callers by request id.  On connection
    loss every pending call fails with :class:`NetworkError` and the next
    call reconnects; transient faults are retried like the sync client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 3,
        timeout_s: float = 30.0,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 0.5,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.retries = retries
        self.timeout_s = timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.max_frame_bytes = max_frame_bytes
        self._rng = rng or random.Random()
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: "Dict[int, asyncio.Future]" = {}
        self._conn_lock: Optional[asyncio.Lock] = None
        self._closed = False

    async def connect(self) -> "AsyncNetworkClient":
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        await self._ensure_connected()
        return self

    async def _ensure_connected(self) -> None:
        assert self._conn_lock is not None
        async with self._conn_lock:
            if self._closed:
                raise NetworkError("client is closed")
            if self._writer is not None and not self._writer.is_closing():
                return
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
            self._reader_task = asyncio.ensure_future(self._read_loop(self._reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                response = await async_read_frame(reader, self.max_frame_bytes)
                rid = response.get("id")
                if rid is None:
                    # unattributable error frame: fail the oldest pending call
                    rid = next(iter(self._pending), None)
                future = self._pending.pop(rid, None) if rid is not None else None
                if future is not None and not future.done():
                    future.set_result(response)
        except (asyncio.IncompleteReadError, ConnectionError, OSError,
                FrameTooLargeError, NetworkError) as exc:
            self._fail_pending(NetworkError(f"connection lost: {exc}"))
        except asyncio.CancelledError:
            self._fail_pending(NetworkError("client closed"))
            raise

    def _fail_pending(self, exc: BaseException) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def call(self, op: str, payload: Any = None, tenant: Optional[str] = None,
                   timeout: Optional[float] = None) -> Any:
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout_s)
        encoded = encode(payload)
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"deadline spent after {attempt} attempt(s) calling {op!r}"
                ) from last_exc
            try:
                response = await asyncio.wait_for(
                    self._attempt(op, encoded, tenant, remaining), timeout=remaining
                )
            except asyncio.TimeoutError as exc:
                raise DeadlineExceededError(
                    f"no response to {op!r} within the deadline"
                ) from exc
            except (ConnectionError, NetworkError, OSError) as exc:
                if isinstance(exc, (RemoteError, DeadlineExceededError,
                                    FrameTooLargeError)):
                    raise
                last_exc = exc
                if attempt < self.retries:
                    pause = _backoff_s(attempt, self.backoff_base_s,
                                       self.backoff_cap_s, self._rng)
                    await asyncio.sleep(
                        min(pause, max(0.0, deadline - time.monotonic()))
                    )
                continue
            if response.get("ok"):
                return decode(response.get("result"))
            error = response.get("error") or {}
            error_type = str(error.get("type", "internal"))
            if error_type == "deadline_exceeded":
                raise DeadlineExceededError(str(error.get("message", "")))
            if error_type in RETRIABLE_ERROR_TYPES and attempt < self.retries:
                last_exc = RemoteError(error_type, str(error.get("message", "")))
                pause = _backoff_s(attempt, self.backoff_base_s,
                                   self.backoff_cap_s, self._rng)
                await asyncio.sleep(min(pause, max(0.0, deadline - time.monotonic())))
                continue
            _raise_remote(error)
        raise NetworkError(
            f"calling {op!r} failed after {self.retries + 1} attempt(s): {last_exc}"
        ) from last_exc

    async def _attempt(self, op: str, encoded_payload: Any,
                       tenant: Optional[str], remaining_s: float) -> Dict[str, Any]:
        await self._ensure_connected()
        assert self._writer is not None
        request_id = next(self._ids)
        future: "asyncio.Future" = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        frame = encode_frame(
            {"id": request_id, "op": op, "payload": encoded_payload,
             "tenant": tenant, "deadline_ms": remaining_s * 1000.0},
            self.max_frame_bytes,
        )
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (ConnectionError, OSError):
            self._pending.pop(request_id, None)
            raise
        try:
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(NetworkError("client closed"))

    async def __aenter__(self) -> "AsyncNetworkClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()
