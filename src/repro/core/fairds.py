"""fairDS — the FAIR data service.

Responsibilities (paper Section II-A):

1. **Indexing** — train a self-supervised embedding model on historical data,
   cluster the embedding space with k-means (K chosen by the elbow method when
   not given), and write every labeled historical sample to the data store
   together with its embedding and cluster id.
2. **Discovery / pseudo-labeling** — given new *unlabeled* data, compute its
   cluster probability distribution and return the same number of already
   labeled historical samples drawn to follow that distribution
   (:meth:`FairDS.lookup`), or retrieve, per input sample, the nearest labeled
   historical sample within a distance threshold
   (:meth:`FairDS.nearest_labeled`) as in the Fig. 9 protocol.
3. **System plane** — monitor cluster-assignment certainty on incoming data
   (:meth:`FairDS.certainty`) and rebuild the embedding/clustering models and
   the store index from accumulated data when it degrades
   (:meth:`FairDS.refresh`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.clustering.elbow import select_k_elbow
from repro.clustering.fuzzy import assignment_certainty
from repro.clustering.kmeans import KMeans
from repro.core.distribution import DatasetDistribution
from repro.dataio.sampler import WeightedClusterSampler
from repro.embedding.base import Embedder
from repro.storage.documentdb import Collection, DocumentDB
from repro.storage.vector_index import ClusteredVectorIndex
from repro.utils.errors import ConfigurationError, NotFittedError, ValidationError
from repro.utils.rng import SeedLike, default_rng, derive_seed


@dataclass
class LookupResult:
    """Labeled data returned by a fairDS pseudo-labeling lookup."""

    images: np.ndarray
    labels: np.ndarray
    doc_ids: List[str]
    input_distribution: DatasetDistribution
    retrieved_distribution: DatasetDistribution

    def __len__(self) -> int:
        return self.images.shape[0]


class FairDS:
    """The FAIR data service.

    Parameters
    ----------
    embedder:
        Any :class:`~repro.embedding.base.Embedder`; the paper's default for
        Bragg peaks is BYOL, but PCA keeps tests fast.
    n_clusters:
        Number of k-means clusters, or ``"auto"`` to select K with the elbow
        method (the paper's YellowBrick-based automation).
    db:
        Backing :class:`~repro.storage.documentdb.DocumentDB`; an in-process
        one is created when omitted.
    collection:
        Name of the collection holding labeled historical samples.
    seed:
        RNG seed for clustering and sampling.
    """

    def __init__(
        self,
        embedder: Embedder,
        n_clusters: Union[int, str] = "auto",
        db: Optional[DocumentDB] = None,
        collection: str = "fairds_samples",
        max_auto_clusters: int = 15,
        seed: SeedLike = 0,
    ):
        if isinstance(n_clusters, str):
            if n_clusters != "auto":
                raise ConfigurationError("n_clusters must be an integer or 'auto'")
        elif n_clusters < 1:
            raise ConfigurationError("n_clusters must be >= 1")
        if max_auto_clusters < 2:
            raise ConfigurationError("max_auto_clusters must be >= 2")
        self.embedder = embedder
        self._requested_clusters = n_clusters
        self.max_auto_clusters = int(max_auto_clusters)
        self.db = db or DocumentDB()
        self.collection_name = collection
        self.seed = seed
        self._kmeans: Optional[KMeans] = None
        self._index: Optional[ClusteredVectorIndex] = None
        self._lookup_counter = 0

    # -- helpers -----------------------------------------------------------------
    @property
    def collection(self) -> Collection:
        return self.db.collection(self.collection_name)

    @property
    def is_fitted(self) -> bool:
        return self._kmeans is not None

    @property
    def n_clusters(self) -> int:
        if self._kmeans is None:
            raise NotFittedError("fairDS has not been fitted yet")
        return self._kmeans.n_clusters

    def store_size(self) -> int:
        return self.collection.count()

    @staticmethod
    def _validate_images_labels(images: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if images.shape[0] == 0:
            raise ValidationError("images must be non-empty")
        if images.shape[0] != labels.shape[0]:
            raise ValidationError("images and labels must have the same length")
        return images, labels

    def _embed(self, images: np.ndarray) -> np.ndarray:
        return np.asarray(self.embedder.transform(images), dtype=np.float64)

    # -- indexing -----------------------------------------------------------------------
    def fit(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        metadata: Optional[Sequence[Dict]] = None,
        embedder_kwargs: Optional[Dict] = None,
    ) -> "FairDS":
        """Train the embedding + clustering models and populate the data store."""
        images, labels = self._validate_images_labels(images, np.asarray(labels))
        if metadata is not None and len(metadata) != images.shape[0]:
            raise ValidationError("metadata must match the number of images")

        self.embedder.fit(images, **(embedder_kwargs or {}))
        embeddings = self._embed(images)

        if self._requested_clusters == "auto":
            k_max = min(self.max_auto_clusters, embeddings.shape[0])
            k, _ = select_k_elbow(embeddings, k_min=2, k_max=k_max, seed=derive_seed(self.seed, 1))
        else:
            k = int(self._requested_clusters)
        if embeddings.shape[0] < k:
            raise ValidationError(
                f"need at least n_clusters={k} samples to fit fairDS, got {embeddings.shape[0]}"
            )
        self._kmeans = KMeans(n_clusters=k, seed=derive_seed(self.seed, 2)).fit(embeddings)
        cluster_ids = self._kmeans.labels_

        # Reset the collection so repeated fits don't accumulate stale copies.
        self.db.drop_collection(self.collection_name)
        coll = self.collection
        coll.create_index("cluster_id")
        self._write_samples(coll, images, labels, embeddings, cluster_ids, metadata)
        self._rebuild_index()
        return self

    def _write_samples(
        self,
        coll: Collection,
        images: np.ndarray,
        labels: np.ndarray,
        embeddings: np.ndarray,
        cluster_ids: np.ndarray,
        metadata: Optional[Sequence[Dict]],
    ) -> List[str]:
        metas = []
        for i in range(images.shape[0]):
            meta = {
                "label": np.asarray(labels[i]).tolist(),
                "embedding": embeddings[i].tolist(),
                "cluster_id": int(cluster_ids[i]),
            }
            if metadata is not None:
                meta.update(metadata[i])
            metas.append(meta)
        return coll.insert_many(metas, list(images))

    def _rebuild_index(self) -> None:
        assert self._kmeans is not None
        docs = self.collection.find()
        self._index = ClusteredVectorIndex(self._kmeans.cluster_centers_, n_probe=2)
        if docs:
            keys = [d.id for d in docs]
            vectors = np.array([d["embedding"] for d in docs], dtype=np.float64)
            cluster_ids = np.array([d["cluster_id"] for d in docs], dtype=int)
            self._index.add(keys, vectors, cluster_ids)

    def ingest(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        metadata: Optional[Sequence[Dict]] = None,
    ) -> List[str]:
        """Add newly labeled data to the store using the existing embedding/clustering."""
        if not self.is_fitted:
            raise NotFittedError("fairDS.ingest() requires fit() first")
        images, labels = self._validate_images_labels(images, np.asarray(labels))
        embeddings = self._embed(images)
        cluster_ids = self._kmeans.predict(embeddings)
        ids = self._write_samples(self.collection, images, labels, embeddings, cluster_ids, metadata)
        assert self._index is not None
        self._index.add(ids, embeddings, cluster_ids)
        return ids

    # -- discovery ----------------------------------------------------------------------------
    def dataset_distribution(self, images: np.ndarray, label: str = "") -> DatasetDistribution:
        """Cluster PDF of an (unlabeled) input dataset."""
        if not self.is_fitted:
            raise NotFittedError("fairDS.dataset_distribution() requires fit() first")
        images = np.asarray(images, dtype=np.float64)
        if images.shape[0] == 0:
            raise ValidationError("images must be non-empty")
        embeddings = self._embed(images)
        cluster_ids = self._kmeans.predict(embeddings)
        return DatasetDistribution.from_cluster_ids(cluster_ids, self.n_clusters, label=label)

    def lookup(
        self,
        images: np.ndarray,
        n_samples: Optional[int] = None,
        label: str = "",
    ) -> LookupResult:
        """Retrieve labeled historical data matching the input dataset's distribution.

        Returns the same number of labeled samples as the input (unless
        ``n_samples`` overrides it), drawn cluster-by-cluster according to the
        input's cluster PDF — the paper's pseudo-labeling operation.
        """
        distribution = self.dataset_distribution(images, label=label)
        n_out = int(n_samples) if n_samples is not None else int(np.asarray(images).shape[0])
        if n_out < 1:
            raise ValidationError("n_samples must be >= 1")
        docs = self.collection.find()
        if not docs:
            raise ValidationError("the fairDS store is empty; ingest historical data first")
        store_cluster_ids = np.array([d["cluster_id"] for d in docs], dtype=int)
        sampler = WeightedClusterSampler(
            store_cluster_ids,
            distribution.pdf,
            n_samples=n_out,
            seed=derive_seed(self.seed, 101, self._lookup_counter),
        )
        self._lookup_counter += 1
        chosen = list(sampler)
        chosen_ids = [docs[i].id for i in chosen]
        payloads = self.collection.fetch_payloads(chosen_ids)
        retrieved_images = np.stack([np.asarray(p) for p in payloads])
        retrieved_labels = np.array([docs[i]["label"] for i in chosen], dtype=np.float64)
        retrieved_dist = DatasetDistribution.from_cluster_ids(
            store_cluster_ids[chosen], self.n_clusters, label=f"{label}:retrieved"
        )
        return LookupResult(
            images=retrieved_images,
            labels=retrieved_labels,
            doc_ids=chosen_ids,
            input_distribution=distribution,
            retrieved_distribution=retrieved_dist,
        )

    def nearest_labeled(
        self, images: np.ndarray, threshold: float
    ) -> List[Tuple[Optional[np.ndarray], float]]:
        """Per-sample nearest labeled historical sample within ``threshold``.

        Returns a list of ``(label, distance)``; ``label`` is ``None`` when no
        historical sample lies within the embedding-space threshold, in which
        case the caller should fall back to conventional labeling (Fig. 9's
        ``|b - p| >= T`` branch).
        """
        if not self.is_fitted or self._index is None:
            raise NotFittedError("fairDS.nearest_labeled() requires fit() first")
        if threshold <= 0:
            raise ValidationError("threshold must be positive")
        embeddings = self._embed(np.asarray(images, dtype=np.float64))
        results: List[Tuple[Optional[np.ndarray], float]] = []
        for vec in embeddings:
            (doc_id, dist), = self._index.query(vec, k=1)
            if dist < threshold:
                doc = self.collection.get(doc_id)
                results.append((np.asarray(doc["label"], dtype=np.float64), dist))
            else:
                results.append((None, dist))
        return results

    # -- system plane ---------------------------------------------------------------------------
    def certainty(self, images: np.ndarray, confidence: float = 0.5, fuzzifier: float = 2.0) -> float:
        """Cluster-assignment certainty (percent) of the input dataset (Fig. 16 metric).

        ``fuzzifier`` is the fuzzy c-means ``m`` parameter: values closer to 1
        sharpen memberships, which is appropriate when the embedding space has
        many nearby clusters (as with the 15-cluster Bragg space of the paper).
        """
        if not self.is_fitted:
            raise NotFittedError("fairDS.certainty() requires fit() first")
        embeddings = self._embed(np.asarray(images, dtype=np.float64))
        return assignment_certainty(
            embeddings, self._kmeans.cluster_centers_, m=fuzzifier, confidence=confidence
        )

    def refresh(self, embedder_kwargs: Optional[Dict] = None) -> "FairDS":
        """Retrain the embedding and clustering models from the accumulated store.

        This is the system-plane action fired by the uncertainty trigger: all
        stored samples are re-embedded, the clustering is re-fit, every
        document's embedding/cluster fields are updated, and the lookup index
        rebuilt.
        """
        if not self.is_fitted:
            raise NotFittedError("fairDS.refresh() requires fit() first")
        docs = self.collection.find()
        if not docs:
            raise ValidationError("cannot refresh an empty store")
        ids = [d.id for d in docs]
        payloads = self.collection.fetch_payloads(ids)
        images = np.stack([np.asarray(p) for p in payloads])
        labels = np.array([d["label"] for d in docs], dtype=np.float64)
        extra = [
            {k: v for k, v in d.items() if k not in ("_id", "label", "embedding", "cluster_id", "payload", "payload_bytes")}
            for d in docs
        ]
        return self.fit(images, labels, metadata=extra, embedder_kwargs=embedder_kwargs)
