"""The declarative API plane: specs in, a running system out.

* :mod:`repro.api.registry` — package-wide component registry; every
  swappable part (embedder, clustering, storage, index, model, trigger,
  policy, executor) constructible by name.
* :mod:`repro.api.spec` — frozen, validated config dataclasses composed into
  :class:`~repro.api.spec.SystemSpec`, with JSON round-trip, content digests,
  diffing, and named presets.
* :mod:`repro.api.deployment` — :class:`~repro.api.deployment.Deployment`,
  the facade that materialises a spec into the wired system and exposes the
  whole lifecycle (``fit / ingest / lookup / certainty / update_model /
  serve / continual / snapshot / close``).

Quick start::

    from repro.api import Deployment, preset

    with Deployment.from_spec(preset("serving")) as dep:
        dep.fit(images, labels)
        with dep.serve() as runtime:
            runtime.call("predict", images[0])

Names are exported lazily (PEP 562): sub-packages import
``repro.api.registry`` at module scope, so this ``__init__`` must not import
the heavyweight spec/deployment modules eagerly.
"""

from typing import List

_EXPORTS = {
    # registry
    "COMPONENT_KINDS": "repro.api.registry",
    "available_components": "repro.api.registry",
    "component_factory": "repro.api.registry",
    "component_kinds": "repro.api.registry",
    "create_component": "repro.api.registry",
    "create_from_spec": "repro.api.registry",
    "is_registered": "repro.api.registry",
    "register_component": "repro.api.registry",
    "unregister_component": "repro.api.registry",
    # spec plane
    "ClusteringSpec": "repro.api.spec",
    "ContinualSpec": "repro.api.spec",
    "EmbedderSpec": "repro.api.spec",
    "ExecutorSpec": "repro.api.spec",
    "IndexSpec": "repro.api.spec",
    "ModelSpec": "repro.api.spec",
    "NetworkSpec": "repro.api.spec",
    "ObservabilitySpec": "repro.api.spec",
    "ServingSpec": "repro.api.spec",
    "ShardingSpec": "repro.api.spec",
    "StorageSpec": "repro.api.spec",
    "SystemSpec": "repro.api.spec",
    "preset": "repro.api.spec",
    "preset_names": "repro.api.spec",
    # deployment facade
    "Deployment": "repro.api.deployment",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
