"""NFS-like file store: one ``.npy`` file per sample.

This is the baseline storage configuration of Figs. 6-8 — the training loop
reads samples straight from the (network) filesystem with no database or
serialisation layer in between.  Reads memory-map nothing and copy the array,
mirroring what a PyTorch ``Dataset`` wrapping files would do.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.errors import StorageError


class FileStore:
    """Stores numbered array samples as individual ``.npy`` files.

    Parameters
    ----------
    root:
        Directory to store files in.  When omitted a temporary directory is
        created and removed by :meth:`cleanup` (or on interpreter exit when
        used as a context manager).
    """

    def __init__(self, root: Optional[str] = None):
        if root is None:
            self._root = Path(tempfile.mkdtemp(prefix="repro_filestore_"))
            self._owns_root = True
        else:
            self._root = Path(root)
            self._root.mkdir(parents=True, exist_ok=True)
            self._owns_root = False
        self._count = 0

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "FileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    @property
    def root(self) -> Path:
        return self._root

    def _path(self, index: int) -> Path:
        return self._root / f"sample_{index:08d}.npy"

    # -- writes ----------------------------------------------------------------
    def write(self, array: np.ndarray) -> int:
        """Append one sample; returns its index."""
        index = self._count
        np.save(self._path(index), np.asarray(array))
        self._count += 1
        return index

    def write_many(self, arrays: Iterable[np.ndarray]) -> List[int]:
        return [self.write(a) for a in arrays]

    # -- reads ------------------------------------------------------------------
    def read(self, index: int) -> np.ndarray:
        path = self._path(index)
        if not path.exists():
            raise StorageError(f"sample {index} not found in {self._root}")
        return np.load(path)

    def read_many(self, indices: Sequence[int]) -> List[np.ndarray]:
        return [self.read(i) for i in indices]

    def __len__(self) -> int:
        return self._count

    def storage_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._root.glob("sample_*.npy"))

    # -- lifecycle ------------------------------------------------------------------
    def cleanup(self) -> None:
        """Remove the backing directory if this store created it."""
        if self._owns_root and self._root.exists():
            shutil.rmtree(self._root, ignore_errors=True)
        self._count = 0
