"""Tests for the pseudo-Voigt labeling substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling.parallel import VOIGT_80, VOIGT_1440, CostModel, LabelingEngine
from repro.labeling.peak_fitting import (
    FitResult,
    fit_peak_center,
    intensity_centroid,
    label_patches,
)
from repro.labeling.pseudo_voigt import PeakParameters, pseudo_voigt_1d, pseudo_voigt_2d
from repro.utils.errors import ConfigurationError, ValidationError


# -- profiles ------------------------------------------------------------------
def test_pseudo_voigt_1d_peak_at_center():
    x = np.linspace(0, 10, 101)
    y = pseudo_voigt_1d(x, center=5.0, amplitude=2.0, sigma=1.0, eta=0.3)
    assert y.max() == pytest.approx(2.0)
    assert x[np.argmax(y)] == pytest.approx(5.0)


def test_pseudo_voigt_1d_pure_gaussian_and_lorentzian():
    x = np.array([0.0, 1.0])
    g = pseudo_voigt_1d(x, 0.0, 1.0, 1.0, eta=0.0)
    l = pseudo_voigt_1d(x, 0.0, 1.0, 1.0, eta=1.0)
    assert g[1] == pytest.approx(np.exp(-0.5))
    assert l[1] == pytest.approx(0.5)


def test_pseudo_voigt_1d_validation():
    with pytest.raises(ValidationError):
        pseudo_voigt_1d(np.arange(3), 0, 1, sigma=0, eta=0.5)
    with pytest.raises(ValidationError):
        pseudo_voigt_1d(np.arange(3), 0, 1, sigma=1, eta=1.5)


def test_pseudo_voigt_2d_properties():
    params = PeakParameters(center_row=7.2, center_col=6.8, amplitude=1.5, background=0.1)
    img = pseudo_voigt_2d((15, 15), params)
    assert img.shape == (15, 15)
    assert img.min() >= 0.1 - 1e-12
    # Maximum on the grid lies at the pixel nearest the true centre.
    r, c = np.unravel_index(np.argmax(img), img.shape)
    assert abs(r - params.center_row) <= 0.5 + 1e-9
    assert abs(c - params.center_col) <= 0.5 + 1e-9


def test_peak_parameters_validation():
    with pytest.raises(ValidationError):
        PeakParameters(5, 5, amplitude=0)
    with pytest.raises(ValidationError):
        PeakParameters(5, 5, sigma_row=0)
    with pytest.raises(ValidationError):
        PeakParameters(5, 5, eta=2.0)


def test_peak_parameters_vector_roundtrip():
    p = PeakParameters(3.3, 4.4, 1.2, 2.0, 1.5, 0.4, 0.05)
    q = PeakParameters.from_vector(p.as_vector())
    assert q == p
    with pytest.raises(ValidationError):
        PeakParameters.from_vector(np.zeros(5))


# -- centroid ---------------------------------------------------------------------
def test_intensity_centroid_symmetric_peak():
    params = PeakParameters(center_row=7.0, center_col=7.0)
    img = pseudo_voigt_2d((15, 15), params)
    r, c = intensity_centroid(img)
    assert r == pytest.approx(7.0, abs=0.05)
    assert c == pytest.approx(7.0, abs=0.05)


def test_intensity_centroid_flat_patch_returns_center():
    r, c = intensity_centroid(np.zeros((9, 9)))
    assert (r, c) == (4.0, 4.0)


def test_intensity_centroid_rejects_non_2d():
    with pytest.raises(ValidationError):
        intensity_centroid(np.zeros((3, 3, 3)))


# -- least-squares fit -----------------------------------------------------------------
@pytest.mark.parametrize("center", [(7.0, 7.0), (6.3, 8.1), (9.4, 5.6)])
def test_fit_peak_center_recovers_subpixel_center(center):
    params = PeakParameters(center_row=center[0], center_col=center[1],
                            amplitude=1.0, sigma_row=1.8, sigma_col=2.2, eta=0.4,
                            background=0.02)
    rng = np.random.default_rng(0)
    img = pseudo_voigt_2d((15, 15), params) + 0.01 * rng.standard_normal((15, 15))
    result = fit_peak_center(img)
    assert isinstance(result, FitResult)
    assert result.center[0] == pytest.approx(center[0], abs=0.1)
    assert result.center[1] == pytest.approx(center[1], abs=0.1)
    assert result.converged


def test_fit_peak_center_beats_centroid_with_background_gradient():
    # A sloped background biases the raw centroid but not the model fit much.
    params = PeakParameters(center_row=7.4, center_col=6.6, amplitude=1.0, sigma_row=1.5, sigma_col=1.5)
    img = pseudo_voigt_2d((15, 15), params)
    img = img + np.linspace(0, 0.4, 15)[None, :]
    fit = np.array(fit_peak_center(img).center)
    cen = np.array(intensity_centroid(img))
    truth = np.array([7.4, 6.6])
    assert np.linalg.norm(fit - truth) < np.linalg.norm(cen - truth)


def test_fit_peak_center_rejects_bad_input():
    with pytest.raises(ValidationError):
        fit_peak_center(np.zeros((3, 3, 3)))


@settings(max_examples=10, deadline=None)
@given(
    row=st.floats(5.0, 9.0),
    col=st.floats(5.0, 9.0),
    eta=st.floats(0.0, 1.0),
)
def test_fit_recovers_center_property(row, col, eta):
    params = PeakParameters(center_row=row, center_col=col, amplitude=1.0,
                            sigma_row=2.0, sigma_col=2.0, eta=eta)
    img = pseudo_voigt_2d((15, 15), params)
    result = fit_peak_center(img)
    assert result.center[0] == pytest.approx(row, abs=0.2)
    assert result.center[1] == pytest.approx(col, abs=0.2)


# -- batch labeling --------------------------------------------------------------------------
def _patch_stack(n=8, seed=0):
    rng = np.random.default_rng(seed)
    stack = []
    truths = []
    for _ in range(n):
        r, c = rng.uniform(5, 9, size=2)
        params = PeakParameters(center_row=r, center_col=c, amplitude=1.0)
        stack.append(pseudo_voigt_2d((15, 15), params) + 0.01 * rng.standard_normal((15, 15)))
        truths.append((r, c))
    return np.array(stack), np.array(truths)


def test_label_patches_shapes_and_accuracy():
    patches, truths = _patch_stack(6)
    labels = label_patches(patches)
    assert labels.shape == (6, 2)
    np.testing.assert_allclose(labels, truths, atol=0.15)


def test_label_patches_parallel_matches_serial():
    patches, _ = _patch_stack(6)
    serial = label_patches(patches, max_workers=1)
    parallel = label_patches(patches, max_workers=4)
    np.testing.assert_allclose(serial, parallel, atol=1e-8)


def test_label_patches_accepts_channel_dim():
    patches, _ = _patch_stack(3)
    labels = label_patches(patches[:, None, :, :])
    assert labels.shape == (3, 2)


def test_label_patches_rejects_bad_shape():
    with pytest.raises(ValidationError):
        label_patches(np.zeros((4, 15)))


# -- cost model / engine -----------------------------------------------------------------------
def test_cost_model_scaling():
    serial = 1000.0
    assert CostModel(cores=1, parallel_efficiency=1.0).wall_clock(serial) == pytest.approx(1000.0)
    assert CostModel(cores=10, parallel_efficiency=1.0).wall_clock(serial) == pytest.approx(100.0)
    cm = CostModel(cores=10, parallel_efficiency=0.5, startup_seconds=3.0)
    assert cm.wall_clock(serial) == pytest.approx(3.0 + 200.0)


def test_cost_model_validation():
    with pytest.raises(ConfigurationError):
        CostModel(cores=0)
    with pytest.raises(ConfigurationError):
        CostModel(parallel_efficiency=0.0)
    with pytest.raises(ConfigurationError):
        CostModel(startup_seconds=-1)
    with pytest.raises(ValidationError):
        CostModel().wall_clock(-1.0)


def test_voigt_1440_faster_than_voigt_80():
    serial = 5000.0
    assert VOIGT_1440.wall_clock(serial) < VOIGT_80.wall_clock(serial)


def test_labeling_engine_reports_costs():
    patches, truths = _patch_stack(6)
    engine = LabelingEngine(cost_model=VOIGT_80, local_workers=1)
    report = engine.label(patches)
    assert report.labels.shape == (6, 2)
    np.testing.assert_allclose(report.labels, truths, atol=0.15)
    assert report.measured_seconds > 0
    assert report.simulated_wall_clock > 0
    assert report.cost_model.cores == 80
    assert report.as_dict()["n_patches"] == 6


def test_labeling_engine_sampled_fraction_completes_labels():
    patches, _ = _patch_stack(10)
    engine = LabelingEngine(sample_fraction=0.3)
    report = engine.label(patches)
    assert report.labels.shape == (10, 2)
    assert report.sample_fraction == 0.3


def test_labeling_engine_validation():
    with pytest.raises(ConfigurationError):
        LabelingEngine(sample_fraction=0.0)
    with pytest.raises(ConfigurationError):
        LabelingEngine(local_workers=0)
    with pytest.raises(ValidationError):
        LabelingEngine().label(np.zeros((0, 15, 15)))
