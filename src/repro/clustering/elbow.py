"""Automatic choice of the number of clusters via the elbow method.

The paper uses YellowBrick's KElbowVisualizer to pick K automatically from the
within-cluster sum of squares (WSS) curve.  We reproduce the underlying
"kneedle"-style geometric criterion: the elbow is the K whose point on the
(normalised) WSS-vs-K curve is farthest below the straight line joining the
curve's endpoints.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.clustering.kmeans import KMeans
from repro.utils.errors import ValidationError
from repro.utils.rng import SeedLike


def elbow_curve(
    x: np.ndarray,
    k_values: Iterable[int],
    seed: SeedLike = 0,
    n_init: int = 2,
    max_iter: int = 50,
) -> Dict[int, float]:
    """Return ``{k: inertia}`` for each candidate ``k``."""
    x = np.asarray(x, dtype=np.float64)
    ks = sorted(set(int(k) for k in k_values))
    if not ks:
        raise ValidationError("k_values must be non-empty")
    if min(ks) < 1:
        raise ValidationError("k values must be >= 1")
    if max(ks) > x.shape[0]:
        raise ValidationError("largest k exceeds the number of samples")
    curve = {}
    for k in ks:
        km = KMeans(n_clusters=k, n_init=n_init, max_iter=max_iter, seed=seed).fit(x)
        curve[k] = float(km.inertia_)
    return curve


def detect_elbow(curve: Dict[int, float]) -> int:
    """Return the elbow K of a ``{k: wss}`` curve via maximum distance to the chord."""
    if len(curve) < 3:
        # With fewer than three points there is no interior elbow; return the
        # smallest K that is not the trivial K=1 if possible.
        return max(curve.keys(), key=lambda k: -curve[k]) if len(curve) == 1 else sorted(curve)[1 if len(curve) > 1 else 0]
    ks = np.array(sorted(curve))
    wss = np.array([curve[k] for k in ks], dtype=np.float64)
    # Normalise both axes to [0, 1] so the geometry is scale free.
    k_norm = (ks - ks[0]) / max(ks[-1] - ks[0], 1)
    denom = max(wss[0] - wss[-1], 1e-12)
    w_norm = (wss - wss[-1]) / denom
    # Distance below the chord from (0, w_norm[0]) to (1, w_norm[-1]).
    chord = w_norm[0] + (w_norm[-1] - w_norm[0]) * k_norm
    gaps = chord - w_norm
    return int(ks[int(np.argmax(-gaps))]) if np.all(gaps <= 0) else int(ks[int(np.argmax(gaps))])


def select_k_elbow(
    x: np.ndarray,
    k_min: int = 2,
    k_max: int = 15,
    seed: SeedLike = 0,
) -> Tuple[int, Dict[int, float]]:
    """Pick K automatically; returns ``(best_k, wss_curve)``."""
    if k_min < 1 or k_max < k_min:
        raise ValidationError("require 1 <= k_min <= k_max")
    x = np.asarray(x, dtype=np.float64)
    k_max = min(k_max, x.shape[0])
    curve = elbow_curve(x, range(k_min, k_max + 1), seed=seed)
    return detect_elbow(curve), curve
