"""Gradient-descent optimizers operating on :class:`repro.nn.parameter.Parameter`."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils.errors import ConfigurationError


class Optimizer:
    """Base optimizer.

    Parameters flagged ``trainable=False`` (frozen during fine-tuning) are
    skipped by :meth:`step` but still zeroed by :meth:`zero_grad` so that
    gradient accumulation stays bounded.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if not p.trainable:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v *= self.momentum
                v -= self.lr * grad
                self._velocity[id(p)] = v
                p.data += v
            else:
                p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        t = self._t
        for p in self.parameters:
            if not p.trainable:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
