"""Threshold-based retraining triggers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.utils.errors import ConfigurationError


class ThresholdTrigger:
    """Fires when an observed value crosses a threshold.

    Parameters
    ----------
    threshold:
        Comparison threshold.
    direction:
        ``"below"`` fires when the value drops under the threshold (e.g.
        cluster certainty), ``"above"`` fires when it rises over it (e.g.
        prediction error).
    cooldown:
        Number of observations to ignore after a firing before the trigger can
        fire again (prevents retraining storms while the refresh takes effect).
    """

    def __init__(self, threshold: float, direction: str = "below", cooldown: int = 0):
        if direction not in ("below", "above"):
            raise ConfigurationError("direction must be 'below' or 'above'")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.threshold = float(threshold)
        self.direction = direction
        self.cooldown = int(cooldown)
        self._cooldown_remaining = 0
        self.history: List[float] = []
        self.fired_at: List[int] = []

    def observe(self, value: float) -> bool:
        """Record a value; returns True when the trigger fires on it."""
        self.history.append(float(value))
        if self._cooldown_remaining > 0:
            self._cooldown_remaining -= 1
            return False
        crossed = value < self.threshold if self.direction == "below" else value > self.threshold
        if crossed:
            self.fired_at.append(len(self.history) - 1)
            self._cooldown_remaining = self.cooldown
        return crossed

    def observe_many(self, values: Sequence[float]) -> List[bool]:
        """Record a batch of observations in order; one fired-flag per value.

        Semantically identical to calling :meth:`observe` once per value — the
        cooldown window threads through the batch — so batched monitoring
        (e.g. :meth:`repro.core.fairds.FairDS.certainty_batch` output) and a
        stream of single observations cannot disagree.
        """
        return [self.observe(v) for v in values]

    @property
    def times_fired(self) -> int:
        return len(self.fired_at)


class CertaintyTrigger(ThresholdTrigger):
    """Fires when fairDS cluster-assignment certainty drops below a percentage.

    The paper triggers system-plane retraining (embedding + clustering + data
    store update) when certainty drops below 80 % (Fig. 16).
    """

    def __init__(self, threshold_percent: float = 80.0, cooldown: int = 0):
        if not 0.0 < threshold_percent <= 100.0:
            raise ConfigurationError("threshold_percent must be in (0, 100]")
        super().__init__(threshold_percent, direction="below", cooldown=cooldown)
