"""Shared implementation of the learning-curve studies (Figs. 13 and 14).

For each test dataset the four training strategies of the paper are compared
under an identical convergence criterion:

* ``Retrain``     — train a freshly initialised model,
* ``FineTune-B``  — fine-tune the Zoo model fairMS ranks best (smallest JSD),
* ``FineTune-M``  — fine-tune the median-ranked Zoo model,
* ``FineTune-W``  — fine-tune the worst-ranked Zoo model.

Each run records the validation-loss learning curve; the figure of merit is
the number of epochs needed to reach a target validation loss.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core import FairDS, FairMS
from repro.nn.network import Sequential
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory


def compare_strategies(
    fairds: FairDS,
    fairms: FairMS,
    model_builder: Callable[[], Sequential],
    x: np.ndarray,
    y: np.ndarray,
    max_epochs: int,
    lr: float,
    target_loss: float,
    seed: int = 0,
    lr_scale: float = 0.5,
) -> Dict[str, TrainingHistory]:
    """Run the four strategies on dataset ``(x, y)``; returns their histories."""
    n_val = max(4, x.shape[0] // 5)
    x_val, y_val = x[:n_val], y[:n_val]
    x_tr, y_tr = x[n_val:], y[n_val:]
    config = TrainingConfig(epochs=max_epochs, batch_size=32, lr=lr,
                            target_loss=target_loss, seed=seed)

    dist = fairds.dataset_distribution(x)
    ranking = fairms.rank(dist)
    choices = {
        "FineTune-B": ranking[0],
        "FineTune-M": ranking[len(ranking) // 2],
        "FineTune-W": ranking[-1],
    }

    histories: Dict[str, TrainingHistory] = {}
    scratch = model_builder()
    histories["Retrain"] = Trainer(scratch).fit((x_tr, y_tr), val=(x_val, y_val), config=config)
    for name, rec in choices.items():
        model = fairms.load(rec)
        histories[name] = Trainer(model).fine_tune(
            (x_tr, y_tr), val=(x_val, y_val), config=config, lr_scale=lr_scale
        )
    return histories


def convergence_table(
    histories_by_dataset: Dict[str, Dict[str, TrainingHistory]],
    target_loss: float,
    max_epochs: int,
) -> List[Tuple]:
    """Rows of (dataset, strategy, epochs_to_target, best_val_loss)."""
    rows = []
    for dataset, histories in histories_by_dataset.items():
        for strategy in ("Retrain", "FineTune-B", "FineTune-M", "FineTune-W"):
            hist = histories[strategy]
            reached = hist.epochs_to_converge(target_loss)
            rows.append((
                dataset,
                strategy,
                reached if reached is not None else f">{max_epochs}",
                hist.best_val_loss,
            ))
    return rows


def check_finetune_best_wins(
    histories_by_dataset: Dict[str, Dict[str, TrainingHistory]],
    target_loss: float,
    max_epochs: int,
) -> None:
    """Assert the paper's qualitative claim on average across datasets.

    FineTune-B reaches the target in no more epochs than Retrain and no more
    than the worst recommendation, averaged over the test datasets.
    """

    def mean_epochs(strategy: str) -> float:
        vals = []
        for histories in histories_by_dataset.values():
            reached = histories[strategy].epochs_to_converge(target_loss)
            vals.append(reached if reached is not None else max_epochs + 1)
        return float(np.mean(vals))

    best = mean_epochs("FineTune-B")
    assert best <= mean_epochs("Retrain"), "FineTune-B should converge at least as fast as Retrain"
    assert best <= mean_epochs("FineTune-W"), "FineTune-B should beat the worst recommendation"
