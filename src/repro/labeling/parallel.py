"""Parallel conventional-labeling engine with a simulated cluster cost model.

Fig. 15 of the paper compares end-to-end model-update time for four methods,
two of which differ only in how much hardware the conventional pseudo-Voigt
labeling gets: an 80-core workstation ("Voigt-80") and an 18-node / 1440-core
cluster ("Voigt-1440", the maximum parallelism MIDAS supports).  We do not
have either machine, so the engine

1. measures the *real* per-patch fitting cost on this machine using a sample
   of the workload (optionally fanning across local threads), and
2. extrapolates the full-workload wall-clock under a simulated core count
   with a configurable parallel efficiency, which preserves the relative
   ordering and approximate speedup factors of the paper's comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.labeling.peak_fitting import fit_peak_center, label_patches
from repro.utils.errors import ConfigurationError, ValidationError
from repro.utils.timing import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.executor import Executor


@dataclass(frozen=True)
class CostModel:
    """Extrapolates measured serial labeling cost to a simulated machine.

    Attributes
    ----------
    cores:
        Simulated number of CPU cores labeling in parallel.
    parallel_efficiency:
        Fraction of ideal speedup actually achieved (MIDAS-style workloads
        do not scale perfectly; the paper's Voigt-1440 is ~18x faster than
        Voigt-80 with 18x the hardware, i.e. near-linear, so the default is
        high).
    startup_seconds:
        Fixed scheduling/startup overhead added once per labeling job
        (job-launch latency on the cluster).
    """

    cores: int = 1
    parallel_efficiency: float = 0.9
    startup_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ConfigurationError("parallel_efficiency must be in (0, 1]")
        if self.startup_seconds < 0:
            raise ConfigurationError("startup_seconds must be non-negative")

    def wall_clock(self, serial_seconds: float) -> float:
        """Projected wall-clock for a job that takes ``serial_seconds`` on one core."""
        if serial_seconds < 0:
            raise ValidationError("serial_seconds must be non-negative")
        effective = max(1.0, self.cores * self.parallel_efficiency)
        return self.startup_seconds + serial_seconds / effective


#: Cost models matching the paper's two conventional-labeling configurations.
VOIGT_80 = CostModel(cores=80, parallel_efficiency=0.9, startup_seconds=2.0)
VOIGT_1440 = CostModel(cores=1440, parallel_efficiency=0.85, startup_seconds=10.0)


@dataclass
class LabelingReport:
    """Result of a labeling run."""

    labels: np.ndarray
    n_patches: int
    measured_seconds: float
    per_patch_seconds: float
    simulated_wall_clock: float
    cost_model: CostModel
    sample_fraction: float = 1.0

    def as_dict(self) -> dict:
        return {
            "n_patches": self.n_patches,
            "measured_seconds": self.measured_seconds,
            "per_patch_seconds": self.per_patch_seconds,
            "simulated_wall_clock": self.simulated_wall_clock,
            "cores": self.cost_model.cores,
            "sample_fraction": self.sample_fraction,
        }


class LabelingEngine:
    """Runs conventional pseudo-Voigt labeling under a :class:`CostModel`.

    Parameters
    ----------
    cost_model:
        Simulated machine (e.g. ``VOIGT_80``); defaults to a single local core.
    local_workers:
        Threads used for the *real* fits on this machine.
    sample_fraction:
        Fraction of patches actually fitted to estimate the per-patch cost;
        the remaining labels are still produced (all patches are fitted when
        ``sample_fraction >= 1``), otherwise the unfitted patches reuse the
        measured cost estimate but are labelled with the cheap centroid so the
        returned label array is complete.
    executor:
        Optional :class:`repro.compute.Executor` that the real fits fan out
        across (the patch stack is shipped once through session shared
        memory).  A process executor sidesteps the GIL that limits
        ``local_workers`` threads; when unset the thread path is used.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        local_workers: int = 1,
        sample_fraction: float = 1.0,
        executor: Optional["Executor"] = None,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ConfigurationError("sample_fraction must be in (0, 1]")
        if local_workers < 1:
            raise ConfigurationError("local_workers must be >= 1")
        self.cost_model = cost_model or CostModel()
        self.local_workers = int(local_workers)
        self.sample_fraction = float(sample_fraction)
        self.executor = executor

    def label(self, patches: np.ndarray) -> LabelingReport:
        """Label ``patches`` and report measured + simulated costs."""
        patches = np.asarray(patches, dtype=np.float64)
        if patches.ndim == 4 and patches.shape[1] == 1:
            patches = patches[:, 0]
        if patches.ndim != 3 or patches.shape[0] == 0:
            raise ValidationError("expected a non-empty (n, H, W) patch stack")
        n = patches.shape[0]
        n_fit = max(1, int(round(n * self.sample_fraction)))

        with Timer() as t:
            fitted = label_patches(
                patches[:n_fit], max_workers=self.local_workers, executor=self.executor
            )
        per_patch = t.elapsed / n_fit

        if n_fit < n:
            # Complete the label array cheaply for the un-fitted remainder.
            from repro.labeling.peak_fitting import intensity_centroid

            rest = np.array([intensity_centroid(p) for p in patches[n_fit:]])
            labels = np.vstack([fitted, rest])
        else:
            labels = fitted

        # per_patch already amortises whatever local parallelism did the fits,
        # so scale it back up to a one-core figure before extrapolating.
        if self.executor is not None and not self.executor.closed and self.executor.max_workers > 1:
            effective_workers = self.executor.max_workers
        else:
            effective_workers = self.local_workers
        serial_total = per_patch * n * max(1, effective_workers)
        simulated = self.cost_model.wall_clock(serial_total)
        return LabelingReport(
            labels=labels,
            n_patches=n,
            measured_seconds=t.elapsed,
            per_patch_seconds=per_patch,
            simulated_wall_clock=simulated,
            cost_model=self.cost_model,
            sample_fraction=self.sample_fraction,
        )
