"""Model Zoo: trained models indexed by their training-dataset distribution.

Every model that has ever been trained for an application is kept here
together with the cluster PDF of the dataset it was trained on.  That PDF is
the *index*: fairMS never has to run inference with a Zoo model to rank it —
it only compares distributions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.distribution import DatasetDistribution
from repro.nn.network import Sequential
from repro.storage.documentdb import Collection, DocumentDB
from repro.utils.errors import StorageError, ValidationError


@dataclass
class ModelRecord:
    """A Zoo entry: model identity + training-data distribution + metrics."""

    model_id: str
    name: str
    distribution: DatasetDistribution
    metrics: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)
    created_at: float = field(default_factory=time.time)


class ModelZoo:
    """Stores serialised models and their training-dataset distributions.

    Backed by a document collection so the Zoo shares the persistence,
    indexing, and concurrency behaviour of the rest of the data service.
    """

    def __init__(self, db: Optional[DocumentDB] = None, collection: str = "model_zoo"):
        self.db = db or DocumentDB()
        self.collection_name = collection

    @property
    def collection(self) -> Collection:
        return self.db.collection(self.collection_name)

    def __len__(self) -> int:
        return self.collection.count()

    # -- writes --------------------------------------------------------------------
    def add(
        self,
        model: Sequential,
        distribution: DatasetDistribution,
        name: Optional[str] = None,
        metrics: Optional[Dict[str, float]] = None,
        **metadata,
    ) -> ModelRecord:
        """Serialise ``model`` into the Zoo; returns its record."""
        if distribution.n_clusters < 1:
            raise ValidationError("distribution must have at least one cluster")
        doc_meta = {
            "name": name or model.name,
            "distribution": distribution.as_dict(),
            "metrics": dict(metrics or {}),
            "metadata": dict(metadata),
            "created_at": time.time(),
            "n_parameters": model.num_parameters(),
        }
        model_id = self.collection.insert_one(doc_meta, payload=model.to_bytes())
        return ModelRecord(
            model_id=model_id,
            name=doc_meta["name"],
            distribution=distribution,
            metrics=doc_meta["metrics"],
            metadata=doc_meta["metadata"],
            created_at=doc_meta["created_at"],
        )

    # -- reads -----------------------------------------------------------------------
    def record(self, model_id: str) -> ModelRecord:
        doc = self.collection.get(model_id)
        return ModelRecord(
            model_id=doc.id,
            name=doc["name"],
            distribution=DatasetDistribution.from_dict(doc["distribution"]),
            metrics=dict(doc.get("metrics", {})),
            metadata=dict(doc.get("metadata", {})),
            created_at=float(doc.get("created_at", 0.0)),
        )

    def records(self) -> List[ModelRecord]:
        return [self.record(doc_id) for doc_id in self.collection.ids()]

    def load_model(self, model_id: str) -> Sequential:
        """Deserialise a Zoo model ready for fine-tuning or inference."""
        doc = self.collection.get(model_id, decode_payload=True)
        if "payload" not in doc:
            raise StorageError(f"model {model_id!r} has no serialised payload")
        return Sequential.from_bytes(doc["payload"])

    def find(self, name_contains: Optional[str] = None, **metadata) -> List[ModelRecord]:
        """FAIR-style discovery: find Zoo models by name substring and/or metadata.

        ``metadata`` keys are matched against the ``metadata`` dict stored with
        each model (e.g. ``origin="bootstrap"``, ``scans=[0, 1]``).
        """
        matches: List[ModelRecord] = []
        for record in self.records():
            if name_contains is not None and name_contains not in record.name:
                continue
            if any(record.metadata.get(k) != v for k, v in metadata.items()):
                continue
            matches.append(record)
        return matches

    def model_bytes(self, model_id: str) -> int:
        """Serialised size of a model (used to charge the transfer service)."""
        doc = self.collection.get(model_id)
        return int(doc.get("payload_bytes", 0))

    def delete(self, model_id: str) -> bool:
        return self.collection.delete_many({"_id": model_id}) > 0
