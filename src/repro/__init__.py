"""repro — a from-scratch reproduction of *fairDMS: Rapid Model Training by
Data and Model Reuse* (CLUSTER 2022).

The top-level package re-exports the main user-facing entry points; see the
sub-packages for the full substrates:

* :mod:`repro.core` — fairDS, fairMS, fairDMS.
* :mod:`repro.embedding` / :mod:`repro.clustering` — representation learning
  and clustering services.
* :mod:`repro.storage` / :mod:`repro.dataio` — document store, file store and
  data loaders.
* :mod:`repro.models` / :mod:`repro.nn` — application models and the NumPy
  neural-network framework they are built on.
* :mod:`repro.datasets` / :mod:`repro.labeling` — synthetic scientific
  datasets and the conventional pseudo-Voigt labeling baseline.
* :mod:`repro.workflow` / :mod:`repro.monitoring` — orchestration and
  degradation monitoring.
"""

from repro.core import (
    DatasetDistribution,
    FairDMS,
    FairDS,
    FairMS,
    LookupResult,
    ModelRecord,
    ModelUpdateReport,
    ModelZoo,
    Recommendation,
    UpdatePolicy,
)

__version__ = "1.0.0"

__all__ = [
    "DatasetDistribution",
    "FairDS",
    "FairMS",
    "FairDMS",
    "LookupResult",
    "ModelRecord",
    "ModelUpdateReport",
    "ModelZoo",
    "Recommendation",
    "UpdatePolicy",
    "__version__",
]
