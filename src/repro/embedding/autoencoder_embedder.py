"""Autoencoder-based embedder (reconstruction bottleneck)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.embedding.base import Embedder, register_embedder
from repro.models.autoencoder import DenseAutoencoder
from repro.utils.errors import NotFittedError
from repro.utils.rng import SeedLike


@register_embedder
class AutoencoderEmbedder(Embedder):
    """Embeds samples with the bottleneck of a trained dense autoencoder.

    This is the embedding the paper used successfully for CookieBox data but
    found too pixel-sensitive for Bragg peaks (see the BYOL embedder for the
    fix).
    """

    name = "autoencoder"

    def __init__(
        self,
        embedding_dim: int = 16,
        hidden: int = 128,
        epochs: int = 20,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: SeedLike = 0,
    ):
        super().__init__(embedding_dim)
        self.hidden = int(hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.seed = seed
        self._model: Optional[DenseAutoencoder] = None

    def fit(self, x: np.ndarray, **kwargs) -> "AutoencoderEmbedder":
        flat = self.flatten(x)
        self._model = DenseAutoencoder(
            flat.shape[1], latent_dim=self.embedding_dim, hidden=self.hidden, seed=self.seed
        )
        self._model.fit(
            flat, epochs=self.epochs, batch_size=self.batch_size, lr=self.lr, seed=self.seed
        )
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise NotFittedError("AutoencoderEmbedder.transform() called before fit()")
        return self._model.encode(self.flatten(x))
