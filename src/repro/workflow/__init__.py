"""Orchestration substrate standing in for Globus Flows, funcX, and Globus Transfer.

The paper's end-to-end deployment uses Globus Flows to define the workflow,
funcX as a serverless function-execution fabric, and Globus Transfer to move
data and models between the experimental facility and the compute cluster.
Locally we reproduce the same structure:

* :class:`~repro.workflow.flows.Flow` — an ordered list of named steps with
  per-step timing, retries, and a result object the caller can inspect.
* :class:`~repro.workflow.funcx.FuncXExecutor` — register functions, submit
  invocations to a thread pool, await futures (optionally with a simulated
  cold-start latency per task).
* :class:`~repro.workflow.transfer.TransferService` — models a WAN link with
  latency + bandwidth and "transfers" byte payloads, recording the simulated
  durations that feed the end-to-end timing breakdown of Fig. 15.
"""

from repro.workflow.flows import Flow, FlowResult, FlowStep
from repro.workflow.funcx import FuncXExecutor, FunctionNotRegistered
from repro.workflow.transfer import TransferService, TransferRecord

__all__ = [
    "Flow",
    "FlowResult",
    "FlowStep",
    "FuncXExecutor",
    "FunctionNotRegistered",
    "TransferService",
    "TransferRecord",
]
