"""Autoencoder embedding models.

fairDS uses self-supervised models to compress raw detector images into
compact, semantically meaningful embeddings.  The autoencoder is the simplest
option: train a bottlenecked reconstruction network and use the bottleneck
activations as the embedding.  The paper reports that this worked well for
CookieBox data but poorly for Bragg peaks (too sensitive to pixel-wise
differences such as rotations); the BYOL learner in
:mod:`repro.models.byol` addresses that failure mode.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.dtype import ensure_float
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.losses import MSELoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.trainer import Trainer, TrainingConfig, TrainingHistory
from repro.utils.errors import NotFittedError, ValidationError
from repro.utils.rng import SeedLike, derive_seed


class DenseAutoencoder:
    """Fully connected autoencoder with a ``latent_dim`` bottleneck.

    The encoder and decoder are separate :class:`Sequential` models so the
    encoder can be used stand-alone after training (``encode``), which is what
    the fairDS embedding service needs.
    """

    def __init__(
        self,
        input_dim: int,
        latent_dim: int = 16,
        hidden: int = 128,
        sigmoid_output: bool = True,
        seed: SeedLike = 0,
    ):
        if input_dim < 1 or latent_dim < 1 or hidden < 1:
            raise ValidationError("input_dim, latent_dim and hidden must be positive")
        if latent_dim >= input_dim:
            raise ValidationError("latent_dim must be smaller than input_dim for a bottleneck")
        self.input_dim = int(input_dim)
        self.latent_dim = int(latent_dim)
        self.encoder = Sequential(
            [
                Dense(input_dim, hidden, seed=derive_seed(seed, 1), name="enc1"),
                ReLU(),
                Dense(hidden, latent_dim, seed=derive_seed(seed, 2), name="enc2"),
            ],
            name="ae-encoder",
        )
        decoder_layers = [
            Dense(latent_dim, hidden, seed=derive_seed(seed, 3), name="dec1"),
            ReLU(),
            Dense(hidden, input_dim, seed=derive_seed(seed, 4), name="dec2"),
        ]
        if sigmoid_output:
            decoder_layers.append(Sigmoid())
        self.decoder = Sequential(decoder_layers, name="ae-decoder")
        self._fitted = False

    # -- training --------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: SeedLike = 0,
    ) -> TrainingHistory:
        """Train encoder+decoder to reconstruct ``x`` (flattened samples)."""
        x = self._validate(x)
        full = Sequential(self.encoder.layers + self.decoder.layers, name="autoencoder")
        trainer = Trainer(full, loss=MSELoss())
        history = trainer.fit(
            (x, x),
            val=(x, x),
            config=TrainingConfig(epochs=epochs, batch_size=batch_size, lr=lr, seed=seed),
        )
        self._fitted = True
        return history

    # -- inference ----------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Return the bottleneck embedding for each sample."""
        if not self._fitted:
            raise NotFittedError("DenseAutoencoder.encode() called before fit()")
        return self.encoder.predict(self._validate(x), batch_size=256)

    def reconstruct(self, x: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("DenseAutoencoder.reconstruct() called before fit()")
        z = self.encode(x)
        return self.decoder.predict(z, batch_size=256)

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        """Per-sample mean squared reconstruction error."""
        x = self._validate(x)
        recon = self.reconstruct(x)
        return np.mean((x - recon) ** 2, axis=1)

    # -- helpers --------------------------------------------------------------------
    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = ensure_float(x)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValidationError(
                f"expected (n, {self.input_dim}) input, got shape {x.shape}"
            )
        return x


class ConvAutoencoder(DenseAutoencoder):
    """Autoencoder for square image patches.

    Convenience wrapper that accepts ``(n, H, W)`` or ``(n, 1, H, W)`` image
    stacks, flattens them, and otherwise behaves like
    :class:`DenseAutoencoder`.  (A truly convolutional decoder adds little for
    the small patches used here while costing considerably more CPU time.)
    """

    def __init__(
        self,
        image_shape: Tuple[int, int],
        latent_dim: int = 16,
        hidden: int = 128,
        seed: SeedLike = 0,
    ):
        h, w = image_shape
        super().__init__(h * w, latent_dim=latent_dim, hidden=hidden, seed=seed)
        self.image_shape = (int(h), int(w))

    def _validate(self, x: np.ndarray) -> np.ndarray:
        x = ensure_float(x)
        if x.ndim == 4 and x.shape[1] == 1:
            x = x[:, 0]
        if x.ndim == 3:
            if x.shape[1:] != self.image_shape:
                raise ValidationError(
                    f"expected images of shape {self.image_shape}, got {x.shape[1:]}"
                )
            x = x.reshape(x.shape[0], -1)
        return super()._validate(x)
