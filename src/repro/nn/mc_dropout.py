"""Monte-Carlo dropout uncertainty quantification.

Fig. 2 of the paper plots the 95 % confidence bound of a BraggNN model,
quantified with MC dropout [Gal & Ghahramani 2016], alongside the prediction
error while the experiment drifts.  These helpers implement the same
procedure: run ``n_samples`` stochastic forward passes with dropout active
and summarise the spread of the predictions.

The fast path exploits two structural facts:

1. Every layer *before the first Dropout* is deterministic, so the looped
   implementation recomputed an identical prefix (for BraggNN: the entire
   convolutional trunk and first dense layer) ``n_samples`` times.  The
   prefix now runs **once** per probe.
2. The stochastic suffix folds the ``n_samples`` passes into the batch
   dimension — one forward pass over ``(n_samples * batch, ...)`` rows
   instead of ``n_samples`` passes — keeping the BLAS kernels saturated.

Because every :class:`~repro.nn.layers.Dropout` owns an independent RNG and
consumes its float64 stream row-major, the folded suffix draws exactly the
same masks as the historical looped implementation, so results match it to
float rounding for a given RNG state (asserted by the test suite).  Models
containing BatchNorm fall back to the looped path, since folding would
change the batch statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Dropout, Layer
from repro.nn.network import Sequential
from repro.utils.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compute.executor import Executor

try:  # scipy is optional; a rational approximation covers its absence
    from scipy.stats import norm as _scipy_norm
except ImportError:  # pragma: no cover - exercised only on scipy-free installs
    _scipy_norm = None

#: Default cap on rows per folded forward pass; bounds workspace memory and
#: keeps the folded intermediates cache-resident.
DEFAULT_MAX_ROWS = 1024


def _split_at_first_dropout(model: Sequential) -> Tuple[List[Layer], List[Layer]]:
    """(deterministic prefix, stochastic suffix starting at the first Dropout)."""
    for i, layer in enumerate(model.layers):
        if isinstance(layer, Dropout):
            return model.layers[:i], model.layers[i:]
    return model.layers, []  # unreachable behind the has_dropout() guard


def _folded_draws(
    model: Sequential, x: np.ndarray, n_samples: int, max_rows: int
) -> np.ndarray:
    """Stack of ``n_samples`` stochastic predictions, prefix shared + folded."""
    prefix, suffix = _split_at_first_dropout(model)
    h = x
    for layer in prefix:  # deterministic: run once for all samples
        h = layer.forward(h, training=False)
    batch = h.shape[0]
    samples_per_chunk = max(1, min(n_samples, max_rows // max(1, batch)))
    chunks = []
    done = 0
    while done < n_samples:
        k = min(samples_per_chunk, n_samples - done)
        tiled = np.broadcast_to(h, (k,) + h.shape).reshape((k * batch,) + h.shape[1:])
        out = tiled
        for layer in suffix:
            out = layer.forward(out, training=True)
        chunks.append(out.reshape((k, batch) + out.shape[1:]))
        done += k
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)


def _looped_draws(model: Sequential, x: np.ndarray, n_samples: int) -> np.ndarray:
    return np.stack([model.forward(x, training=True) for _ in range(n_samples)], axis=0)


def mc_dropout_predict(
    model: Sequential,
    x: np.ndarray,
    n_samples: int = 20,
    max_rows: int = DEFAULT_MAX_ROWS,
    executor: Optional["Executor"] = None,
    seed: Any = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(mean, std)`` of ``n_samples`` stochastic forward passes.

    The model must contain at least one :class:`~repro.nn.layers.Dropout`
    layer, otherwise the passes would be deterministic and the reported
    uncertainty meaningless.  ``max_rows`` caps the rows per folded forward
    pass (memory/throughput trade-off); set it to ``0`` to force the looped
    path.

    With a parallel ``executor`` (``max_workers > 1``) and a BatchNorm-free
    model, the draws fan out across worker replicas whose Dropout layers are
    reseeded from ``seed`` + worker id (see
    :func:`repro.compute.dp.mc_dropout_predict_parallel`): results are
    reproducible for a fixed seed and worker count, statistically equivalent
    to — but not bitwise equal with — the in-process path, and the live
    model's own Dropout RNG state is left untouched.
    """
    if n_samples < 2:
        raise ConfigurationError("n_samples must be >= 2 for an uncertainty estimate")
    if not model.has_dropout():
        raise ConfigurationError(
            "MC dropout requires a model with at least one Dropout layer"
        )
    x = np.asarray(x)
    if (
        executor is not None
        and not executor.closed
        and executor.max_workers > 1
        and not model.has_batchnorm()
    ):
        from repro.compute.dp import mc_dropout_predict_parallel

        return mc_dropout_predict_parallel(model, x, n_samples, max_rows, executor, seed=seed)
    if max_rows and not model.has_batchnorm():
        draws = _folded_draws(model, x, n_samples, max_rows)
    else:
        draws = _looped_draws(model, x, n_samples)
    return draws.mean(axis=0), draws.std(axis=0)


# -- confidence intervals ---------------------------------------------------
def _norm_ppf(q: float) -> float:
    """Standard-normal quantile; Acklam's rational approximation when scipy
    is unavailable (max relative error ~1.15e-9, far below any use here)."""
    if _scipy_norm is not None:
        return float(_scipy_norm.ppf(q))
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if q < p_low:
        r = np.sqrt(-2.0 * np.log(q))
        return (((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) / (
            (((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0
        )
    if q <= p_high:
        r = q - 0.5
        s = r * r
        return (
            (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s + a[5]) * r
        ) / (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s + 1.0)
    r = np.sqrt(-2.0 * np.log(1.0 - q))
    return -(((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]) / (
        (((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1.0
    )


_Z_CACHE: Dict[float, float] = {}


def _z_value(confidence: float) -> float:
    """Cached two-sided z value for a confidence level (e.g. 0.95 -> 1.96)."""
    z = _Z_CACHE.get(confidence)
    if z is None:
        z = float(_norm_ppf(0.5 + confidence / 2.0))
        _Z_CACHE[confidence] = z
    return z


def prediction_interval_width(
    model: Sequential,
    x: np.ndarray,
    n_samples: int = 20,
    confidence: float = 0.95,
    max_rows: int = DEFAULT_MAX_ROWS,
) -> float:
    """Mean width of the symmetric ``confidence`` interval across outputs.

    For a Gaussian approximation the 95 % interval width is ``2 * 1.96 * std``;
    we report the mean over all samples and output dimensions, matching the
    scalar "uncertainty" series of Fig. 2.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    _, std = mc_dropout_predict(model, x, n_samples=n_samples, max_rows=max_rows)
    return float(np.mean(2.0 * _z_value(confidence) * std))
