"""Distribution statistics used by fairDS/fairMS.

The model-recommendation logic of the paper ranks Zoo models by the
Jensen-Shannon divergence (JSD) between the cluster probability distribution
of the new input dataset and that of each model's training dataset.  This
module provides the JSD implementation along with the histogram/percentile
helpers used by the evaluation harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

_EPS = 1e-12


def normalize_distribution(p: Sequence[float]) -> np.ndarray:
    """Return ``p`` normalised to sum to one.

    A zero-sum vector is mapped to the uniform distribution (this happens when
    an empty dataset is summarised).
    """
    arr = np.asarray(p, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot normalise an empty distribution")
    if np.any(arr < -1e-9):
        raise ValueError("distribution entries must be non-negative")
    arr = np.clip(arr, 0.0, None)
    total = arr.sum()
    if total <= 0:
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def kl_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """Kullback-Leibler divergence ``KL(p || q)`` in bits.

    Both inputs are normalised first; zero entries are handled with the usual
    convention ``0 * log(0/q) = 0``.
    """
    p_arr = normalize_distribution(p)
    q_arr = normalize_distribution(q)
    if p_arr.shape != q_arr.shape:
        raise ValueError(
            f"distributions must have the same length, got {p_arr.shape} vs {q_arr.shape}"
        )
    mask = p_arr > 0
    return float(np.sum(p_arr[mask] * np.log2(p_arr[mask] / (q_arr[mask] + _EPS))))


def jensen_shannon_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """Jensen-Shannon divergence between two discrete distributions.

    Bounded in ``[0, 1]`` when computed with base-2 logarithms: ``0`` means the
    distributions are identical, ``1`` means they have disjoint support.  This
    is the similarity measure used by the fairMS Model Manager.
    """
    p_arr = normalize_distribution(p)
    q_arr = normalize_distribution(q)
    if p_arr.shape != q_arr.shape:
        raise ValueError(
            f"distributions must have the same length, got {p_arr.shape} vs {q_arr.shape}"
        )
    m = 0.5 * (p_arr + q_arr)
    jsd = 0.5 * kl_divergence(p_arr, m) + 0.5 * kl_divergence(q_arr, m)
    # Numerical noise can push the value a hair outside [0, 1].
    return float(np.clip(jsd, 0.0, 1.0))


def jensen_shannon_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Square root of the JSD — a true metric on distributions."""
    return float(np.sqrt(jensen_shannon_divergence(p, q)))


def histogram_pdf(
    values: Sequence[float], bins: int = 32, range_: Tuple[float, float] | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(pdf, bin_edges)`` for ``values`` as a normalised histogram."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot histogram an empty array")
    counts, edges = np.histogram(arr, bins=bins, range=range_)
    return normalize_distribution(counts), edges


def percentile_summary(
    errors: Sequence[float], percentiles: Iterable[float] = (50, 75, 95)
) -> Dict[str, float]:
    """Return the percentile summary reported in Fig. 9 of the paper.

    Keys are formatted as ``"P50"``, ``"P75"``, ``"P95"`` etc.
    """
    arr = np.asarray(errors, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarise an empty error array")
    return {f"P{int(p)}": float(np.percentile(arr, p)) for p in percentiles}


def _percentile_key(p: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p99.9"``."""
    return f"p{int(p)}" if float(p).is_integer() else f"p{p}"


def latency_summary(
    latencies_s: Sequence[float], percentiles: Iterable[float] = (50, 95, 99)
) -> Dict[str, float]:
    """Tail-latency summary of a set of request latencies, in milliseconds.

    Returns ``{"count", "mean_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"}``
    (one ``pXX_ms`` key per requested percentile).  An empty input — e.g. a
    telemetry snapshot taken before any traffic arrived — yields all-zero
    values rather than raising, so monitoring endpoints can always report.
    """
    arr = np.asarray(list(latencies_s), dtype=np.float64).ravel() * 1e3
    percentiles = list(percentiles)  # may be a generator; it is consumed twice
    keys = [f"{_percentile_key(p)}_ms" for p in percentiles]
    if arr.size == 0:
        return {"count": 0, "mean_ms": 0.0, "max_ms": 0.0, **{k: 0.0 for k in keys}}
    summary: Dict[str, float] = {
        "count": int(arr.size),
        "mean_ms": float(arr.mean()),
        "max_ms": float(arr.max()),
    }
    for key, p in zip(keys, percentiles):
        summary[key] = float(np.percentile(arr, p))
    return summary


def running_mean(values: Sequence[float], window: int = 5) -> np.ndarray:
    """Simple centred running mean used for smoothing learning curves."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if window <= 0:
        raise ValueError("window must be positive")
    if window == 1 or arr.size == 0:
        return arr.copy()
    window = min(window, arr.size)
    kernel = np.ones(window) / window
    # 'same' keeps the output aligned with the input length.
    return np.convolve(arr, kernel, mode="same")


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised squared Euclidean distances between rows of ``a`` and ``b``.

    Uses the ``|a|^2 + |b|^2 - 2 a.b`` expansion so no Python-level loops are
    required (see the HPC guide on vectorising loops).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("inputs must be 2-D (n_samples, n_features)")
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"feature dimensions differ: {a.shape[1]} vs {b.shape[1]}")
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    d2 = a_sq + b_sq - 2.0 * (a @ b.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def normalized_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance between rows after per-feature standardisation.

    The paper's clustering module assigns samples with a *normalized* Euclidean
    distance; standardising by the pooled per-feature standard deviation makes
    features with large dynamic range not dominate the assignment.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    pooled = np.vstack([a, b])
    scale = pooled.std(axis=0)
    scale[scale == 0] = 1.0
    return np.sqrt(pairwise_squared_distances(a / scale, b / scale))


def correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (used to verify the error-vs-JSD trend)."""
    x_arr = np.asarray(x, dtype=np.float64).ravel()
    y_arr = np.asarray(y, dtype=np.float64).ravel()
    if x_arr.size != y_arr.size or x_arr.size < 2:
        raise ValueError("inputs must have the same length >= 2")
    if np.std(x_arr) == 0 or np.std(y_arr) == 0:
        return 0.0
    return float(np.corrcoef(x_arr, y_arr)[0, 1])
