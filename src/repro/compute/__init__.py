"""The parallel compute plane: executors, shared-memory handoff, DP drivers.

Pick a backend by registry name (``create_component("executor", "process",
max_workers=4)``) or declaratively via ``ExecutorSpec`` on ``SystemSpec``;
every hot plane (``Trainer.fit``, ``mc_dropout_predict``, ``label_patches``,
fairDS batched embedding) accepts an ``Executor`` and falls back to its
serial path when given none.
"""

from repro.compute.dp import (
    fit_data_parallel,
    mc_dropout_predict_parallel,
    supports_data_parallel,
)
from repro.compute.executor import (
    Executor,
    InlineExecutor,
    Session,
    ThreadExecutor,
    WorkerContext,
    chunk_items,
)
from repro.compute.process import ProcessExecutor
from repro.compute.shm import ArraySpec, ShmArena, arena_from_arrays, attach_array

__all__ = [
    "ArraySpec",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "Session",
    "ShmArena",
    "ThreadExecutor",
    "WorkerContext",
    "arena_from_arrays",
    "attach_array",
    "chunk_items",
    "fit_data_parallel",
    "mc_dropout_predict_parallel",
    "supports_data_parallel",
]
