"""Ablation — hierarchical (cluster-partitioned) lookup vs flat nearest-neighbour search.

The paper motivates the two-level search of fairDS (first find the cluster,
then search within it) by the cost of naive instance discrimination, which
"scales linearly with the size of the database".  This ablation measures query
latency of the flat exact index against the cluster-partitioned index as the
historical store grows, and verifies that both return the same nearest
neighbour when the partition is probed.

A second study measures the batched lookup engine: at 10k stored vectors and
a 256-query batch it compares the pre-refactor query path (per-vector Python
list storage, one ``np.vstack`` + distance computation per query) against the
contiguous ``query_batch`` path, and asserts the batched engine is at least
5x faster.  Index backends are constructed by name through the storage
registry, the way a deployment would select them from configuration.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans
from repro.storage.registry import create_index_backend
from repro.utils.rng import default_rng
from repro.utils.stats import pairwise_squared_distances

from common import print_table, write_bench_json

STORE_SIZES = (2_000, 8_000, 32_000)
DIM = 16
N_CLUSTERS = 32
N_QUERIES = 200

BATCH_STORE_SIZE = 10_000
BATCH_SIZE = 256


class OldEquivalentFlatIndex:
    """The seed implementation's query path, kept as the refactor baseline.

    Vectors live in a Python list of per-row arrays and every query pays an
    ``np.vstack`` of the whole store plus a single-row distance computation —
    exactly what ``VectorIndex`` did before the contiguous/batched rebuild.
    """

    def __init__(self, dim: int):
        self.dim = dim
        self._vectors: List[np.ndarray] = []
        self._keys: List[str] = []

    def add(self, keys: Sequence[str], vectors: np.ndarray) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self._keys.extend(str(k) for k in keys)
        self._vectors.extend(vectors)

    def query(self, vector: np.ndarray, k: int = 1) -> List[Tuple[str, float]]:
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        mat = np.vstack(self._vectors)
        d2 = pairwise_squared_distances(vector, mat)[0]
        k = min(k, d2.size)
        order = np.argpartition(d2, k - 1)[:k]
        order = order[np.argsort(d2[order])]
        return [(self._keys[i], float(np.sqrt(d2[i]))) for i in order]


def _timed_queries(index, queries) -> float:
    start = time.perf_counter()
    for q in queries:
        index.query(q, k=1)
    return (time.perf_counter() - start) / len(queries) * 1e3  # ms / query


def _clustered_store(rng, size: int, dim: int, n_clusters: int, blob_centers=None):
    """``(blob_centers, vectors, keys)`` drawn from a mixture of Gaussian blobs.

    Pass ``blob_centers`` to reuse one set of centres across several store
    sizes (as the scaling study does); omitted, fresh centres are drawn.
    """
    if blob_centers is None:
        blob_centers = rng.normal(scale=10.0, size=(n_clusters, dim))
    assignments = rng.integers(0, n_clusters, size=size)
    vectors = blob_centers[assignments] + rng.normal(size=(size, dim))
    keys = [f"k{i}" for i in range(size)]
    return blob_centers, vectors, keys


@pytest.mark.figure("ablation-lookup")
def test_ablation_lookup_scalability(benchmark, report_sink):
    rng = default_rng(0)
    # Clustered data: a mixture of Gaussian blobs, as produced by the embedding space.
    blob_centers = rng.normal(scale=10.0, size=(N_CLUSTERS, DIM))

    rows = []
    speedups = []
    for size in STORE_SIZES:
        _, vectors, keys = _clustered_store(rng, size, DIM, N_CLUSTERS, blob_centers=blob_centers)

        flat = create_index_backend("flat", dim=DIM)
        flat.add(keys, vectors)

        km = KMeans(n_clusters=N_CLUSTERS, n_init=1, max_iter=25, seed=0).fit(vectors[: min(size, 4000)])
        clustered = create_index_backend("clustered", centers=km.cluster_centers_, n_probe=2)
        clustered.add(keys, vectors, km.predict(vectors))

        queries = blob_centers[rng.integers(0, N_CLUSTERS, size=N_QUERIES)] + rng.normal(size=(N_QUERIES, DIM))
        flat_ms = _timed_queries(flat, queries)
        clustered_ms = _timed_queries(clustered, queries)
        rows.append((size, flat_ms, clustered_ms, flat_ms / max(clustered_ms, 1e-9)))
        speedups.append(flat_ms / max(clustered_ms, 1e-9))

        # Correctness spot-check: for a handful of queries both indexes agree on
        # the nearest neighbour (the probed partition contains it).
        agreements = 0
        for q in queries[:20]:
            if flat.query(q, k=1)[0][0] == clustered.query(q, k=1)[0][0]:
                agreements += 1
        assert agreements >= 18

    print_table(
        "Ablation — nearest-neighbour lookup latency [ms/query]: flat vs cluster-partitioned index",
        ["store_size", "flat_ms", "clustered_ms", "speedup"],
        rows, sink=report_sink,
    )

    # Shape checks: the hierarchical index wins, and its advantage grows with store size.
    assert all(s > 1.0 for s in speedups[1:])
    assert speedups[-1] >= speedups[0] * 0.8  # advantage does not collapse as the store grows

    # Benchmark target: one clustered query at the largest store size.
    last_query = blob_centers[0] + rng.normal(size=DIM)
    benchmark(lambda: clustered.query(last_query, k=1))


@pytest.mark.figure("ablation-lookup-batched")
def test_ablation_batched_lookup_throughput(benchmark, report_sink):
    """Old-equivalent per-vector path vs the contiguous batched engine."""
    rng = default_rng(1)
    blob_centers, vectors, keys = _clustered_store(rng, BATCH_STORE_SIZE, DIM, N_CLUSTERS)
    queries = blob_centers[rng.integers(0, N_CLUSTERS, size=BATCH_SIZE)] + rng.normal(size=(BATCH_SIZE, DIM))

    old = OldEquivalentFlatIndex(DIM)
    old.add(keys, vectors)
    flat = create_index_backend("flat", dim=DIM)
    flat.add(keys, vectors)

    km = KMeans(n_clusters=N_CLUSTERS, n_init=1, max_iter=25, seed=0).fit(vectors[:4000])
    clustered = create_index_backend("clustered", centers=km.cluster_centers_, n_probe=2)
    clustered.add(keys, vectors, km.predict(vectors))

    def throughput(fn, repeats=3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return BATCH_SIZE / best  # queries / s

    old_results = [old.query(q, k=1) for q in queries]
    old_qps = throughput(lambda: [old.query(q, k=1) for q in queries])
    loop_qps = throughput(lambda: [flat.query(q, k=1) for q in queries])
    batch_results = flat.query_batch(queries, k=1)
    batch_qps = throughput(lambda: flat.query_batch(queries, k=1))
    clustered_batch_qps = throughput(lambda: clustered.query_batch(queries, k=1))

    rows = [
        ("old per-vector (seed)", old_qps, 1.0),
        ("flat per-vector loop", loop_qps, loop_qps / old_qps),
        ("flat query_batch", batch_qps, batch_qps / old_qps),
        ("clustered query_batch", clustered_batch_qps, clustered_batch_qps / old_qps),
    ]
    print_table(
        f"Ablation — batched lookup throughput [queries/s] at {BATCH_STORE_SIZE} stored vectors, batch {BATCH_SIZE}",
        ["path", "queries_per_s", "speedup_vs_old"],
        rows, sink=report_sink,
    )

    # The batched path must return exactly what the pre-refactor path returned...
    assert [r[0][0] for r in batch_results] == [r[0][0] for r in old_results]
    # (distances agree to float32 storage precision; the old path stored float64)
    np.testing.assert_allclose(
        [r[0][1] for r in batch_results], [r[0][1] for r in old_results], rtol=1e-5, atol=1e-5
    )
    # ...and clear the acceptance bar: >= 5x throughput over the old-equivalent path.
    assert batch_qps >= 5.0 * old_qps

    write_bench_json(
        "ablation_lookup_scalability",
        metrics={
            "old_per_vector_qps": old_qps,
            "flat_loop_qps": loop_qps,
            "flat_batch_qps": batch_qps,
            "clustered_batch_qps": clustered_batch_qps,
            "batch_speedup_vs_old": batch_qps / old_qps,
        },
        params={"store_size": BATCH_STORE_SIZE, "batch_size": BATCH_SIZE, "dim": DIM,
                "n_clusters": N_CLUSTERS},
    )

    benchmark(lambda: flat.query_batch(queries, k=1))
