"""Nearest-neighbour indexes over embedding vectors.

fairDS looks up "the most similar historical sample" for a new embedding.  A
flat (exact) index scales linearly with the database — the cost the paper
calls out for naive instance discrimination — while the cluster-partitioned
index implements the paper's two-level hierarchical search: first find the
nearest cluster centre, then search only within that cluster.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.errors import NotFittedError, StorageError, ValidationError
from repro.utils.stats import pairwise_squared_distances


class VectorIndex:
    """Exact nearest-neighbour index with incremental adds."""

    def __init__(self, dim: int):
        if dim < 1:
            raise ValidationError("dim must be >= 1")
        self.dim = int(dim)
        self._vectors: List[np.ndarray] = []
        self._keys: List[str] = []

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, keys: Sequence[str], vectors: np.ndarray) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {vectors.shape[1]}")
        if len(keys) != vectors.shape[0]:
            raise ValidationError("keys and vectors must have the same length")
        self._keys.extend(str(k) for k in keys)
        self._vectors.extend(vectors)

    def _matrix(self) -> np.ndarray:
        if not self._vectors:
            raise StorageError("vector index is empty")
        return np.vstack(self._vectors)

    def query(self, vector: np.ndarray, k: int = 1) -> List[Tuple[str, float]]:
        """Return the ``k`` nearest ``(key, distance)`` pairs for ``vector``."""
        if k < 1:
            raise ValidationError("k must be >= 1")
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        if vector.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {vector.shape[1]}")
        mat = self._matrix()
        d2 = pairwise_squared_distances(vector, mat)[0]
        k = min(k, d2.size)
        order = np.argpartition(d2, k - 1)[:k]
        order = order[np.argsort(d2[order])]
        return [(self._keys[i], float(np.sqrt(d2[i]))) for i in order]

    def query_batch(self, vectors: np.ndarray, k: int = 1) -> List[List[Tuple[str, float]]]:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        return [self.query(v, k=k) for v in vectors]


class ClusteredVectorIndex:
    """Two-level (cluster -> sample) nearest-neighbour index.

    Built from cluster centres (from the fairDS clustering module) plus the
    per-sample embedding and cluster assignment.  A query first picks the
    ``n_probe`` nearest cluster centres and then searches only the members of
    those clusters — sub-linear lookup for large historical stores.
    """

    def __init__(self, centers: np.ndarray, n_probe: int = 1):
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        if centers.shape[0] < 1:
            raise ValidationError("need at least one cluster centre")
        if n_probe < 1:
            raise ValidationError("n_probe must be >= 1")
        self.centers = centers
        self.dim = centers.shape[1]
        self.n_probe = int(min(n_probe, centers.shape[0]))
        self._partitions: Dict[int, VectorIndex] = {}

    def add(self, keys: Sequence[str], vectors: np.ndarray, cluster_ids: Sequence[int]) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        cluster_ids = np.asarray(cluster_ids, dtype=int)
        if not (len(keys) == vectors.shape[0] == cluster_ids.shape[0]):
            raise ValidationError("keys, vectors and cluster_ids must have equal length")
        if np.any(cluster_ids < 0) or np.any(cluster_ids >= self.centers.shape[0]):
            raise ValidationError("cluster_ids out of range")
        for cid in np.unique(cluster_ids):
            mask = cluster_ids == cid
            part = self._partitions.setdefault(int(cid), VectorIndex(self.dim))
            part.add([keys[i] for i in np.nonzero(mask)[0]], vectors[mask])

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions.values())

    def query(self, vector: np.ndarray, k: int = 1) -> List[Tuple[str, float]]:
        if len(self) == 0:
            raise StorageError("clustered vector index is empty")
        vector = np.asarray(vector, dtype=np.float64).reshape(1, -1)
        if vector.shape[1] != self.dim:
            raise ValidationError(f"expected dim {self.dim}, got {vector.shape[1]}")
        d2 = pairwise_squared_distances(vector, self.centers)[0]
        probe_order = np.argsort(d2)
        candidates: List[Tuple[str, float]] = []
        probed = 0
        for cid in probe_order:
            part = self._partitions.get(int(cid))
            if part is None or len(part) == 0:
                continue
            candidates.extend(part.query(vector[0], k=min(k, len(part))))
            probed += 1
            if probed >= self.n_probe and len(candidates) >= k:
                break
        candidates.sort(key=lambda kv: kv[1])
        return candidates[:k]
