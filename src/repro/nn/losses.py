"""Loss functions.

Besides the regression/classification losses needed by BraggNN and
CookieNetAE, this module implements the two self-supervised objectives the
paper's embedding service relies on: the NT-Xent contrastive loss (SimCLR)
and the BYOL regression loss on L2-normalised projections.

All losses follow the compute-dtype policy: predictions arrive from the
model already in the compute dtype and pass through
:func:`repro.nn.dtype.ensure_float` without a copy (the historical
``np.asarray(..., dtype=np.float64)`` in every ``forward`` *and* ``backward``
copied both arrays twice per batch); integer targets are cast exactly once.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.dtype import ensure_float

_EPS = 1e-12


class Loss:
    """Base class: ``forward`` returns a scalar, ``backward`` the gradient wrt predictions."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


class MSELoss(Loss):
    """Mean squared error averaged over all elements."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        diff = ensure_float(pred) - ensure_float(target)
        return float(np.mean(np.square(diff, out=diff)))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred = ensure_float(pred)
        diff = pred - ensure_float(target)
        diff *= 2.0 / pred.size
        return diff


class MAELoss(Loss):
    """Mean absolute error averaged over all elements."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        return float(np.mean(np.abs(ensure_float(pred) - ensure_float(target))))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred = ensure_float(pred)
        diff = np.sign(pred - ensure_float(target))
        diff /= pred.size
        return diff


class BCELoss(Loss):
    """Binary cross entropy on probabilities in (0, 1)."""

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        p = np.clip(ensure_float(pred), _EPS, 1.0 - _EPS)
        t = ensure_float(target)
        return float(-np.mean(t * np.log(p) + (1 - t) * np.log(1 - p)))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        p = np.clip(ensure_float(pred), _EPS, 1.0 - _EPS)
        t = ensure_float(target)
        return (p - t) / (p * (1 - p)) / p.size


class SoftmaxCrossEntropy(Loss):
    """Cross entropy on logits with integrated softmax (numerically stable)."""

    def _softmax(self, logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        probs = self._softmax(ensure_float(pred))
        target = np.asarray(target)
        if target.ndim == 1:  # class indices
            n = probs.shape[0]
            return float(-np.mean(np.log(probs[np.arange(n), target.astype(int)] + _EPS)))
        return float(-np.mean(np.sum(ensure_float(target) * np.log(probs + _EPS), axis=-1)))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        probs = self._softmax(ensure_float(pred))
        target_arr = np.asarray(target)
        n = probs.shape[0]
        if target_arr.ndim == 1:
            onehot = np.zeros_like(probs)
            onehot[np.arange(n), target_arr.astype(int)] = 1.0
            target_arr = onehot
        return (probs - target_arr) / n


def _l2_normalize(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return row-normalised ``x`` and the norms used (for backward)."""
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms = np.maximum(norms, x.dtype.type(_EPS) if x.dtype.kind == "f" else _EPS)
    return x / norms, norms


class NTXentLoss(Loss):
    """Normalised temperature-scaled cross entropy (SimCLR).

    ``pred`` and ``target`` are the two augmented views' projections of shape
    ``(batch, dim)``; view ``i`` of ``pred`` is the positive of view ``i`` of
    ``target`` and every other sample is a negative.  The backward pass only
    returns the gradient with respect to ``pred``; the trainer computes the
    symmetric term by swapping the arguments.
    """

    def __init__(self, temperature: float = 0.5):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = float(temperature)

    def _logits(self, pred: np.ndarray, target: np.ndarray):
        za, norms = _l2_normalize(ensure_float(pred))
        zb, _ = _l2_normalize(ensure_float(target))
        logits = (za @ zb.T) / self.temperature
        return za, zb, norms, logits

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        _, _, _, logits = self._logits(pred, target)
        n = logits.shape[0]
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        return float(-np.mean(log_probs[np.arange(n), np.arange(n)]))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        za, zb, norms, logits = self._logits(pred, target)
        n = logits.shape[0]
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        grad_logits = probs
        grad_logits[np.arange(n), np.arange(n)] -= 1.0
        grad_logits /= n * self.temperature
        grad_za = grad_logits @ zb
        # Back-propagate through the L2 normalisation of ``pred``.
        dot = np.sum(grad_za * za, axis=1, keepdims=True)
        return (grad_za - za * dot) / norms


class BYOLLoss(Loss):
    """BYOL regression loss: ``2 - 2 <p, z> / (|p||z|)`` averaged over the batch.

    ``pred`` is the online network's prediction, ``target`` the (stop-gradient)
    target network projection — the backward pass therefore only differentiates
    with respect to ``pred``.
    """

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        p, _ = _l2_normalize(ensure_float(pred))
        z, _ = _l2_normalize(ensure_float(target))
        return float(np.mean(2.0 - 2.0 * np.sum(p * z, axis=1)))

    def backward(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        pred = ensure_float(pred)
        p, norms = _l2_normalize(pred)
        z, _ = _l2_normalize(ensure_float(target))
        n = pred.shape[0]
        grad_p = -2.0 * z / n
        dot = np.sum(grad_p * p, axis=1, keepdims=True)
        return (grad_p - p * dot) / norms
