"""Dynamic micro-batching: bounded admission queue + flush policy.

A :class:`MicroBatcher` is the front door of one serving operation.  Client
threads :meth:`~MicroBatcher.submit` single requests into a bounded FIFO
(admission control: a full queue raises
:class:`~repro.utils.errors.ServiceOverloadedError` immediately rather than
queueing unboundedly), and one consumer thread repeatedly calls
:meth:`~MicroBatcher.next_batch`, which blocks until a batch is *ready*:

* the queue holds ``max_batch_size`` requests, or
* ``max_wait_ms`` elapsed since the oldest queued request was admitted, or
* the batcher was closed (remaining requests flush immediately).

Under heavy traffic batches fill to ``max_batch_size`` back-to-back; under
light traffic a lone request waits at most ``max_wait_ms`` before being
served, which bounds the latency cost of batching.

With ``fair_tenancy=True`` the single FIFO becomes per-tenant FIFOs drained
round-robin: each batch interleaves one request per queued tenant in
rotation, and admission caps any one tenant at its fair share of
``max_queue_depth`` (``max_queue_depth // active tenants``) while others
have requests queued — one hot tenant can neither fill a batch nor the
queue when competing traffic is present.  A lone tenant still gets the
whole queue (work-conserving), and untenanted requests form their own
rotation class.  Flush semantics, close semantics, and the ``max_wait_ms``
deadline (measured from the globally oldest queued request) are unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.utils.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceOverloadedError,
)


@dataclass
class BatchingPolicy:
    """Knobs of the dynamic micro-batching scheduler.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many requests are queued; also the largest
        batch ever handed to a handler.
    max_wait_ms:
        Flush when the oldest queued request has waited this long, even if
        the batch is not full — the latency ceiling batching may add.
    max_queue_depth:
        Admission bound (per operation).  Submissions beyond this depth fail
        fast with :class:`ServiceOverloadedError` instead of growing the
        queue, so overload surfaces as rejections rather than latency
        collapse or deadlock.
    fair_tenancy:
        Drain per-tenant queues round-robin instead of one global FIFO, and
        cap each tenant's queued requests at its fair share of
        ``max_queue_depth`` while other tenants are queued (see the module
        docstring).  Off by default: untenanted workloads keep the exact
        single-FIFO behaviour.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue_depth: int = 1024
    fair_tenancy: bool = False

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ConfigurationError("max_wait_ms must be non-negative")
        if self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if not isinstance(self.fair_tenancy, bool):
            raise ConfigurationError("fair_tenancy must be a boolean")


@dataclass
class Request:
    """One admitted single-sample request travelling through the runtime."""

    op: str
    payload: Any
    #: Tenant the request belongs to; only consulted under ``fair_tenancy``.
    tenant: Optional[str] = None
    future: Future = field(default_factory=Future)
    seq: int = -1  # per-op admission sequence, assigned by the batcher
    admitted_at: float = 0.0  # time.monotonic() at admission
    #: Root span of this request's trace when it was sampled (a
    #: :class:`~repro.observability.tracing.Span`), else ``None``.
    trace: Optional[Any] = None


class MicroBatcher:
    """Bounded request FIFO plus the flush decision, for one operation.

    Thread-safety: any number of producers may call :meth:`submit`; exactly
    one consumer thread is expected to call :meth:`next_batch`.
    """

    def __init__(self, policy: Optional[BatchingPolicy] = None):
        self.policy = policy or BatchingPolicy()
        self._items: Deque[Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        # Requests with seq below this watermark flush without waiting out
        # max_wait_ms (see flush()); seq numbers start at 0, so 0 = no flush.
        self._flush_through = 0
        self._admitted = 0
        # Fair-tenancy state (unused on the default single-FIFO path).
        self._fair = self.policy.fair_tenancy
        self._queues: Dict[str, Deque[Request]] = {}
        self._ring: Deque[str] = deque()  # tenants with queued requests, rotation order
        self._n_queued = 0

    # -- producer side ---------------------------------------------------------
    def submit(self, request: Request) -> int:
        """Admit ``request``; returns the queue depth after admission.

        Assigns the request's admission sequence number and timestamp
        atomically with the capacity check, so sequence numbers are dense
        over *accepted* requests (rejections consume none).
        """
        if self._fair:
            return self._submit_fair(request)
        with self._cond:
            if self._closed:
                raise ServiceClosedError(f"operation {request.op!r} is no longer accepting requests")
            if len(self._items) >= self.policy.max_queue_depth:
                raise ServiceOverloadedError(
                    f"operation {request.op!r} queue is full "
                    f"(max_queue_depth={self.policy.max_queue_depth})"
                )
            request.seq = self._admitted
            self._admitted += 1
            request.admitted_at = time.monotonic()
            self._items.append(request)
            depth = len(self._items)
            # Wake the consumer only on the transitions it acts on: the queue
            # becoming non-empty, and a batch becoming full.  Intermediate
            # appends would otherwise wake it once per request while it sits
            # out the max_wait_ms deadline (a notify storm under load).
            if depth == 1 or depth >= self.policy.max_batch_size:
                self._cond.notify()
            return depth

    def _submit_fair(self, request: Request) -> int:
        tenant = request.tenant or ""
        with self._cond:
            if self._closed:
                raise ServiceClosedError(f"operation {request.op!r} is no longer accepting requests")
            queue = self._queues.setdefault(tenant, deque())
            # Tenants with requests queued right now, counting this one: a
            # lone tenant gets the whole queue (work-conserving); competing
            # tenants are each capped at an equal share.
            active = len(self._ring) + (0 if queue else 1)
            share = max(1, self.policy.max_queue_depth // max(1, active))
            if self._n_queued >= self.policy.max_queue_depth or len(queue) >= share:
                raise ServiceOverloadedError(
                    f"operation {request.op!r} queue is full for tenant {tenant!r} "
                    f"(fair share {share} of max_queue_depth="
                    f"{self.policy.max_queue_depth} across {active} active tenants)"
                )
            request.seq = self._admitted
            self._admitted += 1
            request.admitted_at = time.monotonic()
            if not queue:
                self._ring.append(tenant)
            queue.append(request)
            self._n_queued += 1
            depth = self._n_queued
            if depth == 1 or depth >= self.policy.max_batch_size:
                self._cond.notify()
            return depth

    # -- consumer side ---------------------------------------------------------
    def next_batch(self) -> Optional[List[Request]]:
        """Block until a batch is ready; ``None`` when closed and drained."""
        if self._fair:
            return self._next_batch_fair()
        policy = self.policy
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait()
            deadline = self._items[0].admitted_at + policy.max_wait_ms / 1e3
            while (
                self._items  # a second consumer may have drained the queue
                and len(self._items) < policy.max_batch_size
                and not self._closed
                and self._items[0].seq >= self._flush_through
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            n = min(len(self._items), policy.max_batch_size)
            return [self._items.popleft() for _ in range(n)]

    def _oldest_queued(self) -> Request:
        """The globally oldest queued request (min seq over tenant heads)."""
        return min((self._queues[t][0] for t in self._ring), key=lambda r: r.seq)

    def _next_batch_fair(self) -> Optional[List[Request]]:
        policy = self.policy
        with self._cond:
            while self._n_queued == 0:
                if self._closed:
                    return None
                self._cond.wait()
            deadline = self._oldest_queued().admitted_at + policy.max_wait_ms / 1e3
            while (
                self._n_queued  # a second consumer may have drained the queue
                and self._n_queued < policy.max_batch_size
                and not self._closed
                and self._oldest_queued().seq >= self._flush_through
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            # Compose the batch round-robin: one request per queued tenant in
            # rotation, repeating until the batch fills or the queues drain.
            # The rotation pointer persists across batches, so tenant A does
            # not lead every batch just because it leads the ring.
            batch: List[Request] = []
            n = min(self._n_queued, policy.max_batch_size)
            while len(batch) < n:
                tenant = self._ring[0]
                self._ring.rotate(-1)
                queue = self._queues[tenant]
                batch.append(queue.popleft())
                if not queue:
                    self._ring.remove(tenant)
            self._n_queued -= len(batch)
            return batch

    def flush(self) -> None:
        """Make everything already queued ready immediately.

        The consumer's ``next_batch`` stops waiting out ``max_wait_ms`` for
        every request admitted before this call — even when they span several
        ``max_batch_size`` batches (the flush is a seq watermark, not a
        one-shot flag).  Requests admitted *after* the call batch normally.
        A no-op when the queue is empty.  Used by the runtime to bound the
        latency of operations that must observe queued requests promptly
        (e.g. draining the old model's traffic around a hot-swap).
        """
        with self._cond:
            if self._items or self._n_queued:
                self._flush_through = self._admitted
                self._cond.notify_all()

    def close(self) -> None:
        """Stop accepting requests; queued ones flush on the next ``next_batch``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def depth(self) -> int:
        with self._cond:
            return self._n_queued if self._fair else len(self._items)

    @property
    def admitted(self) -> int:
        with self._cond:
            return self._admitted
