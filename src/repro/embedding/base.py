"""Embedder interface and registry."""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.nn.dtype import ensure_float
from repro.utils.errors import ConfigurationError


class Embedder:
    """Maps raw samples (images, flattened or not) to compact embedding vectors.

    Sub-classes implement :meth:`fit` and :meth:`transform`; ``fit_transform``
    and input flattening are provided here.  The fairDS system plane retrains
    the embedder whenever the uncertainty trigger fires, so ``fit`` must be
    callable repeatedly.
    """

    #: Registry name, overridden by subclasses.
    name: str = "base"

    def __init__(self, embedding_dim: int = 16):
        if embedding_dim < 1:
            raise ConfigurationError("embedding_dim must be >= 1")
        self.embedding_dim = int(embedding_dim)

    # -- protocol ---------------------------------------------------------------
    def fit(self, x: np.ndarray, **kwargs) -> "Embedder":
        raise NotImplementedError

    def transform(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, x: np.ndarray, **kwargs) -> np.ndarray:
        return self.fit(x, **kwargs).transform(x)

    # -- helpers ------------------------------------------------------------------
    @staticmethod
    def flatten(x: np.ndarray) -> np.ndarray:
        """Flatten per-sample dimensions: ``(n, ...) -> (n, features)``.

        Float inputs keep their dtype (no full-array cast copy); integer
        inputs are cast to the nn compute dtype.
        """
        x = ensure_float(x)
        if x.ndim == 1:
            return x.reshape(1, -1)
        return x.reshape(x.shape[0], -1)


_EMBEDDERS: Dict[str, Type[Embedder]] = {}


def register_embedder(cls: Type[Embedder]) -> Type[Embedder]:
    """Register an embedder class under its ``name`` (usable as a decorator).

    Also forwards the registration to the package-wide component registry
    (:mod:`repro.api.registry`, kind ``"embedder"``), so embedders registered
    here are constructible from :class:`~repro.api.spec.EmbedderSpec` configs.
    """
    if not getattr(cls, "name", None) or cls.name == "base":
        raise ConfigurationError("embedder classes must define a unique 'name'")
    _EMBEDDERS[cls.name] = cls
    from repro.api.registry import _register_direct  # lazy: avoids an import cycle

    _register_direct("embedder", cls.name, cls)
    return cls


def get_embedder(name: str, **kwargs) -> Embedder:
    """Instantiate a registered embedder by name.

    Available names: ``autoencoder``, ``contrastive``, ``byol``, ``pca`` plus
    any user-registered embedders.
    """
    try:
        cls = _EMBEDDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown embedder {name!r}; available: {sorted(_EMBEDDERS)}"
        ) from None
    return cls(**kwargs)
